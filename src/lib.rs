//! HPCToolkit-NUMA reproduction — umbrella crate.
//!
//! Re-exports the full stack so examples and downstream users can depend on a
//! single crate:
//!
//! * [`machine`] — the simulated NUMA machine (topology, pages, latency,
//!   contention).
//! * [`sim`] — the execution engine workloads run on.
//! * [`sampling`] — the six address-sampling mechanisms of the paper's §3.
//! * [`profiler`] — the online profiler: CCT, code-/data-/address-centric
//!   attribution, first-touch pinpointing, NUMA metrics.
//! * [`analysis`] — the offline analyzer and viewer.
//! * [`workloads`] — LULESH / AMG2006 / Blackscholes / UMT2013 mini-apps.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use numa_analysis as analysis;
pub use numa_machine as machine;
pub use numa_profiler as profiler;
pub use numa_sampling as sampling;
pub use numa_sim as sim;
pub use numa_workloads as workloads;
