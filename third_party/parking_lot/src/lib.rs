//! Offline drop-in subset of `parking_lot`: [`Mutex`] and [`RwLock`] with
//! parking_lot's non-poisoning API, backed by `std::sync`. A poisoned std
//! lock (a panic while held) just yields the inner guard — parking_lot
//! has no poisoning either, so callers see identical semantics.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn rwlock_try_paths() {
        let l = RwLock::new(7);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer blocked by reader");
        }
        {
            let _w = l.try_write().expect("uncontended try_write");
            assert!(l.try_read().is_none(), "reader blocked by writer");
        }
        assert_eq!(*l.try_read().unwrap(), 7);
    }
}
