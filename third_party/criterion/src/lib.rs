//! Offline drop-in subset of `criterion`.
//!
//! Keeps the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `black_box`, `Bencher::iter`) and
//! actually measures: each benchmark runs one warm-up call plus
//! `sample_size` timed calls, reporting min/mean/max wall-clock time and
//! optional throughput.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark's display id: function name plus optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`: plain strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Runs closures and collects wall-clock samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(" thrpt: {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(" thrpt: {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing sample-size/throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.criterion.sample_size = n;
        self
    }

    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&name, &b.samples, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&name, &b.samples, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point created by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&id.into_id(), &b.samples, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }
}
