//! Offline drop-in subset of `rayon`.
//!
//! Provides the slice-parallel surface this workspace uses — `par_iter()`
//! with `map`/`filter_map`/`reduce`/`collect`/`for_each` — implemented as
//! contiguous chunking over `std::thread::scope`, one thread per chunk.
//! Chunk results are combined left-to-right, so `reduce` only requires an
//! associative operation, exactly like real rayon.
//!
//! [`ThreadPoolBuilder`] + [`ThreadPool::install`] control the chunk
//! count via a thread-local override, which is what lets benches measure
//! 1→N thread scaling.

use std::cell::Cell;
use std::fmt;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    let ov = THREAD_OVERRIDE.with(Cell::get);
    if ov > 0 {
        ov
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this stub,
/// but part of the signature).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                self.num_threads
            },
        })
    }
}

/// A virtual pool: parallel calls made inside [`ThreadPool::install`] use
/// this pool's thread count.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        let out = f();
        THREAD_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

// ---------------------------------------------------------------------------
// Parallel iteration over slices
// ---------------------------------------------------------------------------

/// `.par_iter()` entry point, implemented for slices and `Vec`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Run `fold` over `nt`-way contiguous chunks of `items` on scoped
/// threads, then combine the per-chunk accumulators left-to-right.
fn chunked<'a, T, A, FOLD, COMB>(
    items: &'a [T],
    identity: impl Fn() -> A + Sync,
    fold: FOLD,
    comb: COMB,
) -> A
where
    T: Sync,
    A: Send,
    FOLD: Fn(A, &'a T) -> A + Sync,
    COMB: Fn(A, A) -> A,
{
    let nt = current_num_threads().max(1).min(items.len().max(1));
    if nt <= 1 {
        return items.iter().fold(identity(), fold);
    }
    let chunk = items.len().div_ceil(nt);
    let mut partials: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|| c.iter().fold(identity(), &fold)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stub worker panicked"))
            .collect()
    });
    let mut acc = partials.remove(0);
    for p in partials {
        acc = comb(acc, p);
    }
    acc
}

/// The adaptor surface shared by [`ParIter`]-family types.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Consume the iterator, producing every item into a `Vec` in order.
    fn collect_vec(self) -> Vec<Self::Item>;

    fn reduce(
        self,
        identity: impl Fn() -> Self::Item + Sync,
        op: impl Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    ) -> Self::Item;

    fn collect<C: FromParVec<Self::Item>>(self) -> C {
        C::from_par_vec(self.collect_vec())
    }

    fn for_each(self, f: impl Fn(Self::Item) + Sync) {
        self.collect_vec().into_iter().for_each(f);
    }

    fn count(self) -> usize {
        self.collect_vec().len()
    }

    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.collect_vec().into_iter().sum()
    }
}

/// Target of [`ParallelIterator::collect`].
pub trait FromParVec<T> {
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParVec<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T, E> FromParVec<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_vec(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

impl<'a, T: Sync + 'a> ParIter<'a, T> {
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn filter_map<R: Send, F: Fn(&'a T) -> Option<R> + Sync>(
        self,
        f: F,
    ) -> ParFilterMap<'a, T, F> {
        ParFilterMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync + 'a,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn collect_vec(self) -> Vec<R> {
        let f = &self.f;
        chunked(
            self.items,
            Vec::new,
            |mut acc: Vec<R>, t| {
                acc.push(f(t));
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    fn reduce(self, identity: impl Fn() -> R + Sync, op: impl Fn(R, R) -> R + Sync) -> R {
        let f = &self.f;
        chunked(self.items, &identity, |acc: R, t| op(acc, f(t)), &op)
    }
}

impl<'a, T, R, F> ParallelIterator for ParFilterMap<'a, T, F>
where
    T: Sync + 'a,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    type Item = R;

    fn collect_vec(self) -> Vec<R> {
        let f = &self.f;
        chunked(
            self.items,
            Vec::new,
            |mut acc: Vec<R>, t| {
                acc.extend(f(t));
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    fn reduce(self, identity: impl Fn() -> R + Sync, op: impl Fn(R, R) -> R + Sync) -> R {
        self.collect_vec().into_iter().fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let data: Vec<u64> = (0..10_000).collect();
        let total = data.par_iter().map(|&x| x * 2).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, data.iter().map(|&x| x * 2).sum::<u64>());
    }

    #[test]
    fn collect_preserves_order() {
        let data: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, data.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn filter_map_drops_nones() {
        let data: Vec<u32> = (0..100).collect();
        let evens: Vec<u32> = data
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 50);
    }
}
