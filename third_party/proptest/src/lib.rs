//! Offline drop-in subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple strategies, `any::<T>()`,
//! `prop::option::of`, `prop::sample::select`, `prop::collection::vec`,
//! `.prop_map(...)`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the raw assertion message) and a fixed per-test deterministic
//! seed derived from the test's name, so failures reproduce exactly.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $gen:ident),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy of [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Cases per property (real proptest defaults to 256; 64 keeps the
    /// simulation-heavy properties fast while still exploring widely).
    pub const CASES: u64 = 64;

    /// SplitMix64: tiny, uniform, and deterministic.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed derived from the test name so every run of a given test
        /// explores the same inputs.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prop {
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        pub struct OptionOf<S>(S);

        impl<S: Strategy> Strategy for OptionOf<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // Bias toward Some like real proptest (which defaults to
                // a high Some probability).
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
            OptionOf(inner)
        }
    }

    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.0.is_empty(), "select() needs at least one option");
                self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
            }
        }

        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select(options)
        }
    }

    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.len.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// `any::<T>()`: the full value space of `T` (implemented for the types
/// the workspace asks for).
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn maps_and_selects_compose(
            v in prop::sample::select(vec![1u32, 2, 3]).prop_map(|x| x * 10),
            o in prop::option::of(0u32..5),
        ) {
            prop_assert!(v == 10 || v == 20 || v == 30);
            if let Some(inner) = o {
                prop_assert!(inner < 5);
            }
        }
    }
}
