//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde subset — no `syn`/`quote`, just a small token-walker.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields, honouring `#[serde(default)]` and
//!   `#[serde(skip)]` field attributes;
//! * tuple structs (1-field newtypes serialize transparently, wider ones
//!   as arrays);
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's JSON default);
//! * type-level generics limited to lifetimes (e.g. `Foo<'a>`).
//!
//! Generated code only calls `::serde::{Serialize, Deserialize, Value,
//! Error, __get}` and `Default::default()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derive(Serialize) generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derive(Deserialize) generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Full generics (with bounds) for the `impl<...>` position.
    generics_full: String,
    /// Parameter names only for the `Type<...>` position.
    generics_names: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// Skip `#[...]` attributes, returning whether any carried the given
/// serde helper word (`default` / `skip`).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut default = false;
    let mut skip = false;
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if matches!(&inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if let TokenTree::Ident(id) = t {
                                match id.to_string().as_str() {
                                    "default" => default = true,
                                    "skip" => skip = true,
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, default, skip)
}

fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a token slice on top-level commas (commas inside `<...>` don't
/// count; bracketed/parenthesized commas are hidden inside groups).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, default, skip) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected ':' after field `{name}`"
        );
        i += 1;
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    let mut generics: Vec<TokenTree> = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        loop {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            generics.push(tokens[i].clone());
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }
    let generics_full = tokens_to_string(&generics);
    let generics_names = if generics.is_empty() {
        String::new()
    } else {
        let inner = &generics[1..generics.len() - 1];
        let names: Vec<String> = split_commas(inner)
            .into_iter()
            .map(|param| {
                let upto_colon: Vec<TokenTree> = param
                    .into_iter()
                    .take_while(|t| !matches!(t, TokenTree::Punct(p) if p.as_char() == ':'))
                    .collect();
                tokens_to_string(&upto_colon)
            })
            .collect();
        format!("<{}>", names.join(", "))
    };

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::TupleStruct(split_commas(&inner).len())
            }
            _ => Body::UnitStruct,
        }
    } else if kind == "enum" {
        let g = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("expected enum body, found {other}"),
        };
        let body_tokens: Vec<TokenTree> = g.stream().into_iter().collect();
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body_tokens.len() {
            let (nj, _, _) = skip_attrs(&body_tokens, j);
            j = nj;
            if j >= body_tokens.len() {
                break;
            }
            let vname = match &body_tokens[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            j += 1;
            let vkind = match body_tokens.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    j += 1;
                    VariantKind::Tuple(split_commas(&inner).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    j += 1;
                    VariantKind::Struct(fields)
                }
                _ => VariantKind::Unit,
            };
            if matches!(&body_tokens.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                j += 1;
            }
            variants.push(Variant {
                name: vname,
                kind: vkind,
            });
        }
        Body::Enum(variants)
    } else {
        panic!("derive only supports structs and enums, found `{kind}`");
    };

    Item {
        name,
        generics_full,
        generics_names,
        body,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    format!(
        "impl{} ::serde::{} for {}{} ",
        item.generics_full, trait_name, item.name, item.generics_names
    )
}

fn named_fields_to_object(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut s = String::from("{ let mut __o: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        s.push_str(&format!(
            "__o.push((String::from(\"{n}\"), ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = accessor(&f.name)
        ));
    }
    s.push_str("::serde::Value::Object(__o) }");
    s
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::NamedStruct(fields) => named_fields_to_object(fields, |n| format!("&self.{n}")),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &item.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{ty}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{ty}::{vn}(__f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({binds}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{vals}]))]),\n",
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let obj = named_fields_to_object(fields, |n| n.to_string());
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {obj})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn named_fields_from_object(type_path: &str, fields: &[Field], map_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: Default::default(),\n", f.name));
        } else if f.default {
            inits.push_str(&format!(
                "{n}: match ::serde::__get({m}, \"{n}\") {{ Some(__f) => ::serde::Deserialize::from_value(__f)?, None => Default::default() }},\n",
                n = f.name,
                m = map_expr
            ));
        } else {
            inits.push_str(&format!(
                "{n}: match ::serde::__get({m}, \"{n}\") {{ Some(__f) => ::serde::Deserialize::from_value(__f)?, None => return Err(::serde::Error::new(\"missing field `{n}` in `{t}`\")) }},\n",
                n = f.name,
                m = map_expr,
                t = type_path
            ));
        }
    }
    format!("{type_path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let ctor = named_fields_from_object(name, fields, "__m");
            format!(
                "let __m = __v.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for `{name}`\"))?;\nOk({ctor})"
            )
        }
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let args: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for `{name}`\"))?;\nif __a.len() != {n} {{ return Err(::serde::Error::new(\"length mismatch for `{name}`\")); }}\nOk({name}({args}))",
                args = args.join(", ")
            )
        }
        Body::UnitStruct => format!("let _ = __v;\nOk({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let args: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __a = __payload.as_array().ok_or_else(|| ::serde::Error::new(\"expected array payload for `{name}::{vn}`\"))?; if __a.len() != {n} {{ return Err(::serde::Error::new(\"length mismatch for `{name}::{vn}`\")); }} return Ok({name}::{vn}({args})); }}\n",
                            args = args.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor = named_fields_from_object(
                            &format!("{name}::{vn}"),
                            fields,
                            "__m",
                        );
                        // A struct-variant path isn't a valid constructor
                        // expression prefix in all positions, but
                        // `Enum::Variant { .. }` literals are fine.
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __m = __payload.as_object().ok_or_else(|| ::serde::Error::new(\"expected object payload for `{name}::{vn}`\"))?; return Ok({ctor}); }}\n"
                        ));
                    }
                }
            }
            let mut s = String::new();
            if !unit_arms.is_empty() {
                s.push_str(&format!(
                    "if let Some(__s) = __v.as_str() {{ match __s {{ {unit_arms} _ => {{}} }} }}\n"
                ));
            }
            if !data_arms.is_empty() {
                s.push_str(&format!(
                    "if let Some(__o) = __v.as_object() {{ if __o.len() == 1 {{ let (__k, __payload) = &__o[0]; match __k.as_str() {{ {data_arms} _ => {{ let _ = __payload; }} }} }} }}\n"
                ));
            }
            s.push_str(&format!(
                "Err(::serde::Error::new(\"unrecognized variant for `{name}`\"))"
            ));
            s
        }
    };
    format!(
        "{}{{ fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}
