//! Offline drop-in subset of `serde`.
//!
//! The build environment has no network and no vendored registry, so the
//! workspace provides the small slice of serde it actually uses: a JSON
//! value model ([`Value`]), [`Serialize`]/[`Deserialize`] traits that
//! convert to and from that model, and derive macros (re-exported from
//! `serde_derive`) supporting named structs, tuple structs, and enums with
//! unit/tuple/struct variants, plus the `#[serde(default)]` and
//! `#[serde(skip)]` field attributes.
//!
//! Representation choices mirror real serde's JSON behaviour so on-disk
//! profiles look the same: newtype structs serialize as their inner value,
//! unit enum variants as strings, data-carrying variants as single-key
//! objects. Objects preserve insertion order (fields serialize in
//! declaration order), which keeps profile JSON byte-deterministic.
//!
//! One documented divergence: non-finite floats serialize as `null` and
//! `null` deserializes to `f64::NAN`, so round-trips are total.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON number, preserving integer fidelity (addresses are full u64s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) if n >= 0 => Some(n as u64),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            _ => None,
        }
    }
}

/// The JSON data model every [`Serialize`]/[`Deserialize`] impl goes
/// through. Objects are ordered key/value vectors so serialization is
/// deterministic in field-declaration order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup that never panics (missing keys yield `Null`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the JSON data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the JSON data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::new(concat!(stringify!($t), " overflow")))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::new(concat!(stringify!($t), " overflow")))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null (see module docs).
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::new("expected array"))?;
        if arr.len() != N {
            return Err(Error::new("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                const LEN: usize = [$($idx),+].len();
                if arr.len() != LEN {
                    return Err(Error::new("tuple length mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // String-keyed maps become objects; other key types become sorted
        // [k, v] pair arrays (real serde_json errors on non-string keys —
        // this subset keeps maps total and round-trippable instead).
        // Either way entries are sorted for deterministic output, since
        // HashMap iteration order is randomized.
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::String(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Array(
                pairs
                    .into_iter()
                    .map(|(k, v)| Value::Array(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| {
                    Ok((
                        K::from_value(&Value::String(k.clone()))?,
                        V::from_value(val)?,
                    ))
                })
                .collect(),
            Value::Array(pairs) => pairs
                .iter()
                .map(|pair| {
                    let kv = pair
                        .as_array()
                        .ok_or_else(|| Error::new("expected [k, v] pair"))?;
                    if kv.len() != 2 {
                        return Err(Error::new("expected [k, v] pair"));
                    }
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            _ => Err(Error::new("expected map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Ordered-object key lookup used by derive-generated code.
#[doc(hidden)]
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_is_total() {
        let v = Value::Object(vec![(
            "advice".to_string(),
            Value::Array(vec![Value::Object(vec![(
                "name".to_string(),
                Value::String("z".to_string()),
            )])]),
        )]);
        assert_eq!(v["advice"][0]["name"], "z");
        assert!(v["missing"][3]["nope"].is_null());
    }

    #[test]
    fn number_fidelity() {
        assert_eq!(Number::U64(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Number::I64(-1).as_u64(), None);
        assert_eq!(Number::F64(2.5).as_u64(), None);
    }
}
