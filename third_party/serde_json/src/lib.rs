//! Offline drop-in subset of `serde_json`: JSON text ⇄ the serde stub's
//! [`Value`] model, plus the generic [`to_string`] / [`from_str`] entry
//! points the workspace uses.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialize any [`Serialize`] value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize any [`Serialize`] value to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U64(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Number(Number::I64(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Number(Number::F64(n)) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that reparses
                // exactly, and always keeps a ".0" on integral floats.
                let _ = write!(out, "{n:?}");
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // printer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        let num = if is_float {
            Number::F64(text.parse::<f64>().map_err(|_| Error::new("bad float"))?)
        } else if text.starts_with('-') {
            Number::I64(text.parse::<i64>().map_err(|_| Error::new("bad integer"))?)
        } else {
            Number::U64(text.parse::<u64>().map_err(|_| Error::new("bad integer"))?)
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":"x\"y\n","c":{"d":18446744073709551615}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert!(v["a"][3].is_null());
        assert_eq!(v["b"], "x\"y\n");
        assert_eq!(v["c"]["d"].as_u64(), Some(u64::MAX));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn corrupted_inputs_error() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "\"abc", "12x", "{}tail"] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pretty_print_reparses() {
        let v: Value = from_str(r#"{"k":[1,2],"m":{"n":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formatting_keeps_type() {
        let v = Value::Number(Number::F64(1.0));
        assert_eq!(to_string(&v).unwrap(), "1.0");
        assert_eq!(
            to_string(&Value::Number(Number::F64(f64::NAN))).unwrap(),
            "null"
        );
    }
}
