//! End-to-end contract of the multi-profile store: batched ingestion
//! dedups by content, pooled queries see every run, and the memo
//! cache's hit/miss/eviction counters track exactly what was computed.

use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_store::{ProfileStore, Query};
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant};

/// One small profiled run; the option count varies content across runs.
fn run(options: u64) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let w = Blackscholes::new(options, 4, BlackscholesVariant::Baseline);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
    let (_, _, profile) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
    profile
}

fn corpus(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| (format!("run-{i}"), run(64 + 16 * i as u64).to_json()))
        .collect()
}

#[test]
fn batched_ingestion_dedups_and_pools() {
    let store = ProfileStore::new();
    let inputs = corpus(4);
    let report = store.ingest_batch(&inputs);
    assert_eq!(report.added.len(), 4);
    assert_eq!(report.deduplicated, 0);
    assert!(report.rejected.is_empty());

    // Re-ingesting the same corpus adds nothing.
    let again = store.ingest_batch(&inputs);
    assert!(again.added.is_empty());
    assert_eq!(again.deduplicated, 4);
    assert_eq!(store.len(), 4);

    let artifact = store.aggregate().expect("aggregate over 4 runs");
    let agg = artifact.as_aggregate().unwrap();
    assert_eq!(agg.runs, 4);
    assert!(agg.vars.iter().any(|v| v.runs_seen == 4));
}

#[test]
fn cache_counters_track_cold_and_warm_queries() {
    let store = ProfileStore::new();
    for (label, json) in corpus(2) {
        store.ingest_bytes(&label, &json).unwrap();
    }
    let ids = store.ids();

    // Cold: every distinct query is a miss + insertion.
    store.query(Query::TextReport(ids[0])).unwrap();
    store.query(Query::TextReport(ids[1])).unwrap();
    store.query(Query::Aggregate).unwrap();
    let s = store.cache_stats();
    assert_eq!(s.hits, 0, "cold pass must not hit: {s:?}");
    assert_eq!(s.misses, 3);
    assert_eq!(s.insertions, 3);

    // Warm: the same queries are pure hits — no recomputation.
    store.query(Query::TextReport(ids[0])).unwrap();
    store.query(Query::TextReport(ids[1])).unwrap();
    store.query(Query::Aggregate).unwrap();
    let s = store.cache_stats();
    assert_eq!(s.hits, 3, "warm pass must hit: {s:?}");
    assert_eq!(s.misses, 3, "warm pass must not miss: {s:?}");
    assert_eq!(s.insertions, 3);
}

#[test]
fn tiny_cache_evicts_under_pressure() {
    let store = ProfileStore::with_cache_capacity(1);
    for (label, json) in corpus(2) {
        store.ingest_bytes(&label, &json).unwrap();
    }
    let ids = store.ids();
    // Far more distinct queries than the cache can hold.
    for n in 1..=8 {
        store.query(Query::TopVariables(n)).unwrap();
        for &id in &ids {
            store
                .query(Query::CodeView {
                    profile: id,
                    min_share_permille: n as u16,
                })
                .unwrap();
        }
    }
    let s = store.cache_stats();
    assert!(s.evictions > 0, "expected evictions: {s:?}");
    assert!(store.stats().cached_artifacts <= 8, "cache kept growing");
}
