//! End-to-end integration: workload → engine → profiler → analyzer →
//! report, across all six sampling mechanisms.

use hpctoolkit_numa::analysis::{analyze, Analyzer};
use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program};
use std::sync::Arc;

const SIZE: u64 = 8 << 20;
const THREADS: usize = 8;

/// The canonical first-touch bottleneck, profiled with `kind`.
fn run(kind: MechanismKind, period: u64) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(kind, period));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(machine, THREADS, ExecMode::Sequential, profiler.clone());
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("hot", SIZE, PlacementPolicy::FirstTouch);
        ctx.store_range(base, SIZE / 64, 64);
    });
    for _ in 0..2 {
        p.parallel("work._omp", |tid, ctx| {
            let chunk = SIZE / THREADS as u64;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
            ctx.compute(4000);
        });
    }
    finish_profile(p, profiler)
}

#[test]
fn every_mechanism_identifies_the_hot_variable() {
    // §8: "HPCToolkit-NUMA can provide similar analysis results using any
    // sampling method."
    for kind in MechanismKind::ALL {
        let profile = run(kind, 8);
        let a = Analyzer::new(profile);
        let hot = a.hot_variables();
        assert_eq!(hot.len(), 1, "{kind:?}");
        assert_eq!(hot[0].name, "hot", "{kind:?}");
        assert!(
            hot[0].metrics.m_remote > hot[0].metrics.m_local,
            "{kind:?}: M_r must dominate for remote-homed data"
        );
    }
}

#[test]
fn latency_capability_gates_lpi() {
    for kind in MechanismKind::ALL {
        let profile = run(kind, 16);
        let caps = profile.capabilities;
        let a = Analyzer::new(profile);
        let program = a.program();
        match kind {
            MechanismKind::Ibs | MechanismKind::PebsLl => {
                assert!(caps.latency);
                assert!(program.lpi_numa.is_some(), "{kind:?} computes lpi_NUMA");
            }
            _ => {
                assert!(!caps.latency);
                assert_eq!(program.lpi_numa, None, "{kind:?} has no latency");
            }
        }
    }
}

#[test]
fn reports_are_renderable_and_serializable_for_all_mechanisms() {
    for kind in MechanismKind::ALL {
        let profile = run(kind, 32);
        let a = Analyzer::new(profile);
        let report = analyze(&a);
        let text = report.render();
        assert!(text.contains("hot [heap]"), "{kind:?}: {text}");
        let json = report.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["advice"][0]["name"], "hot", "{kind:?}");
    }
}

#[test]
fn profile_json_roundtrip_preserves_analysis() {
    let profile = run(MechanismKind::Ibs, 16);
    let a1 = Analyzer::new(profile.clone());
    let back = NumaProfile::from_json(&profile.to_json()).unwrap();
    let a2 = Analyzer::new(back);
    assert_eq!(a1.totals().samples_mem, a2.totals().samples_mem);
    assert_eq!(a1.totals().m_remote, a2.totals().m_remote);
    assert_eq!(a1.program().remote_fraction, a2.program().remote_fraction);
}

#[test]
fn first_touch_pinpointing_works_under_every_mechanism() {
    // First-touch trapping is page-protection based (§6) and independent
    // of the sampling mechanism.
    for kind in MechanismKind::ALL {
        let profile = run(kind, 64);
        assert_eq!(profile.first_touches.len(), 1, "{kind:?}");
        let ft = &profile.first_touches[0];
        assert_eq!(ft.tid, 0);
    }
}

#[test]
fn instruction_counts_are_mechanism_independent() {
    // The monitored program does the same work regardless of who watches.
    let counts: Vec<u64> = MechanismKind::ALL
        .iter()
        .map(|&k| run(k, 16).total_instructions())
        .collect();
    for w in counts.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn parallel_mode_agrees_with_sequential_on_structure() {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::SoftIbs, 4));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(machine, THREADS, ExecMode::Parallel, profiler.clone());
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("hot", SIZE, PlacementPolicy::FirstTouch);
        ctx.store_range(base, SIZE / 64, 64);
    });
    p.parallel("work._omp", |tid, ctx| {
        let chunk = SIZE / THREADS as u64;
        ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
    });
    let profile = finish_profile(p, profiler);
    let a = Analyzer::new(profile);
    let hot = a.hot_variables();
    assert_eq!(hot[0].name, "hot");
    // Workers (threads outside domain 0) still see all requests homed in
    // domain 0, even under real concurrency.
    assert!(a.totals().per_domain[0] > 0);
    assert_eq!(a.totals().per_domain[1..].iter().sum::<u64>(), 0);
}
