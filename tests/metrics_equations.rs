//! Focused tests for the paper's derived-metric equations (§4.2).

use hpctoolkit_numa::analysis::Analyzer;
use hpctoolkit_numa::machine::{DomainId, Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{finish_profile, NumaProfiler, ProfilerConfig};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program};
use std::sync::Arc;

const SIZE: u64 = 16 << 20;
const THREADS: usize = 8;

fn run(config: ProfilerConfig) -> (Analyzer, u64) {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(machine, THREADS, ExecMode::Sequential, profiler.clone());
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("hot", SIZE, PlacementPolicy::Bind(DomainId(0)));
    });
    p.parallel("work._omp", |tid, ctx| {
        let chunk = SIZE / THREADS as u64;
        // One access per line: every access is a cold DRAM access, remote
        // for 7 of 8 threads.
        for off in (0..chunk).step_by(64) {
            ctx.load(base + tid as u64 * chunk + off, 8);
        }
        ctx.compute(chunk / 64 * 3);
    });
    let instructions = p.stats().instructions;
    (Analyzer::new(finish_profile(p, profiler)), instructions)
}

/// Eq. 2: `lpi ≈ l^s_NUMA / I^s` must track the ground-truth remote
/// latency per instruction, independent of the sampling period.
#[test]
fn eq2_estimate_is_period_independent() {
    let lpis: Vec<f64> = [4u64, 16, 64]
        .iter()
        .map(|&period| {
            let cfg = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, period));
            run(cfg).0.program().lpi_numa.unwrap()
        })
        .collect();
    for w in lpis.windows(2) {
        let rel = (w[0] - w[1]).abs() / w[0];
        assert!(
            rel < 0.15,
            "Eq. 2 estimates should agree across periods: {lpis:?}"
        );
    }
}

/// Eq. 3 (PEBS-LL): avg remote latency per sampled event × E_NUMA / I.
/// With a sparse event sample and hardware counters, the estimate must
/// land near the IBS (Eq. 2) estimate for the same workload.
#[test]
fn eq3_agrees_with_eq2() {
    let ibs = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let (a_ibs, _) = run(ibs);
    let lpi2 = a_ibs.program().lpi_numa.unwrap();

    let mut pebs_ll = MechanismConfig::for_tests(MechanismKind::PebsLl, 16);
    pebs_ll.latency_threshold = 32;
    let (a_ll, _) = run(ProfilerConfig::new(pebs_ll));
    let lpi3 = a_ll.program().lpi_numa.unwrap();

    let rel = (lpi2 - lpi3).abs() / lpi2;
    assert!(
        rel < 0.30,
        "Eq. 3 ({lpi3:.3}) should approximate Eq. 2 ({lpi2:.3})"
    );
}

/// The E_NUMA hardware counter counts *all* eligible events, not just the
/// sampled ones.
#[test]
fn event_counter_exceeds_sample_count() {
    let mut cfg = MechanismConfig::for_tests(MechanismKind::PebsLl, 32);
    cfg.latency_threshold = 32;
    let (a, _) = run(ProfilerConfig::new(cfg));
    let events: u64 = a.profile().threads.iter().map(|t| t.numa_events).sum();
    let samples = a.totals().samples_mem;
    assert!(
        events > samples * 16,
        "E_NUMA {events} vs samples {samples}"
    );
}

/// Ground truth cross-check: the true remote DRAM latency per instruction
/// is computable analytically for this kernel; Eq. 2 must be in its
/// neighbourhood.
#[test]
fn eq2_tracks_ground_truth() {
    let cfg = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let (a, instructions) = run(cfg);
    let lpi = a.program().lpi_numa.unwrap();
    // Ground truth: remote sampled latency scaled by period over sampled
    // instructions approximates total remote latency over instructions.
    // Reconstruct total remote latency from the profile itself:
    let sampled_remote: u64 = a.totals().latency_remote;
    let sampled_instr: u64 = a.profile().total_instruction_samples();
    let scale = instructions as f64 / sampled_instr as f64;
    let reconstructed = sampled_remote as f64 * scale / instructions as f64;
    assert!(
        (lpi - reconstructed).abs() / lpi < 1e-9,
        "Eq. 2 is exactly the sampled ratio"
    );
    assert!(lpi > 1.0, "this kernel is severely remote-bound: {lpi}");
}
