//! Property-based tests (proptest) over the core invariants.

use hpctoolkit_numa::machine::{
    AccessLevel, DomainId, LatencyModel, Machine, MachinePreset, PageMap, PlacementPolicy,
    PAGE_SIZE,
};
use hpctoolkit_numa::profiler::{
    finish_profile, MetricSet, NumaProfiler, ProfilerConfig, VarRecord,
};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind, Sample};
use hpctoolkit_numa::sim::{ExecMode, Program, VarKind};
use numa_machine::CpuId;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_sample() -> impl Strategy<Value = Sample> {
    (
        0usize..8,
        0u8..8,
        any::<u64>(),
        prop::option::of(0u32..1000),
        prop::option::of(prop::sample::select(vec![
            AccessLevel::L1,
            AccessLevel::L2,
            AccessLevel::L3Local,
            AccessLevel::L3Remote,
            AccessLevel::MemLocal,
            AccessLevel::MemRemote,
        ])),
        any::<bool>(),
    )
        .prop_map(|(tid, dom, addr, latency, level, is_store)| Sample {
            tid,
            cpu: CpuId(tid as u16),
            thread_domain: DomainId(dom),
            addr: Some(addr),
            size: Some(8),
            is_store: Some(is_store),
            latency,
            level,
            line: 0,
            precise_ip: true,
        })
}

proptest! {
    /// M_l + M_r always equals the number of samples with a resolved home
    /// domain, and per-domain counts sum to the same.
    #[test]
    fn metricset_counting_invariants(
        samples in prop::collection::vec((arb_sample(), prop::option::of(0u8..8)), 0..200)
    ) {
        let mut m = MetricSet::new(8);
        let mut resolved = 0u64;
        for (s, home) in &samples {
            m.add_sample(s, home.map(DomainId), false);
            if home.is_some() {
                resolved += 1;
            }
        }
        prop_assert_eq!(m.m_local + m.m_remote, resolved);
        prop_assert_eq!(m.per_domain.iter().sum::<u64>(), resolved);
        prop_assert_eq!(m.samples_mem as usize, samples.len());
        prop_assert!(m.latency_remote <= m.latency_total);
        prop_assert_eq!(m.loads + m.stores, samples.len() as u64);
    }

    /// Merging metric sets is associative and commutative in its totals.
    #[test]
    fn metricset_merge_is_order_independent(
        samples in prop::collection::vec((arb_sample(), prop::option::of(0u8..8)), 1..100),
        split in 1usize..99
    ) {
        let split = split.min(samples.len());
        let mut all = MetricSet::new(8);
        for (s, home) in &samples {
            all.add_sample(s, home.map(DomainId), false);
        }
        let mut left = MetricSet::new(8);
        let mut right = MetricSet::new(8);
        for (s, home) in &samples[..split] {
            left.add_sample(s, home.map(DomainId), false);
        }
        for (s, home) in &samples[split..] {
            right.add_sample(s, home.map(DomainId), false);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(&lr, &all);
        prop_assert_eq!(&rl, &all);
    }

    /// Every placement policy sends every page of a region to a valid
    /// domain, and block-wise covers each listed domain for large regions.
    #[test]
    fn placement_policies_stay_in_range(
        pages in 1u64..512,
        domains in 1usize..8
    ) {
        for policy in [
            PlacementPolicy::interleave_all(domains),
            PlacementPolicy::blockwise_all(domains),
        ] {
            for p in 0..pages {
                let d = policy.domain_for_page(p, pages).unwrap();
                prop_assert!((d.0 as usize) < domains);
            }
        }
        if pages >= domains as u64 {
            let policy = PlacementPolicy::blockwise_all(domains);
            let mut seen = vec![false; domains];
            for p in 0..pages {
                seen[policy.domain_for_page(p, pages).unwrap().0 as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "block-wise covers all domains");
        }
    }

    /// First touch on a page map binds each page exactly once, to the
    /// policy's choice (or the toucher for FirstTouch), and the binding is
    /// stable.
    #[test]
    fn page_binding_is_stable(
        touches in prop::collection::vec((0u64..64, 0u8..8), 1..200)
    ) {
        let map = PageMap::new(8);
        let base = 0x100_0000u64;
        map.register_region(base, 64 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        let mut first: std::collections::HashMap<u64, DomainId> = Default::default();
        for (page, toucher) in touches {
            let q = map.touch(base + page * PAGE_SIZE + 8, DomainId(toucher));
            match first.entry(page) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    prop_assert!(q.bound_now);
                    prop_assert_eq!(q.domain, DomainId(toucher));
                    e.insert(q.domain);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    prop_assert!(!q.bound_now);
                    prop_assert_eq!(q.domain, *e.get());
                }
            }
        }
    }

    /// Bin geometry: every address maps to exactly the bin whose range
    /// contains it, for arbitrary variable sizes and bin counts.
    #[test]
    fn bins_partition_variables(
        bytes in 1u64..10_000_000,
        bins in 1u16..64,
        probe in 0u64..10_000_000
    ) {
        let rec = VarRecord {
            id: hpctoolkit_numa::profiler::VarId(0),
            name: "v".into(),
            addr: 0x4000,
            bytes,
            kind: VarKind::Heap,
            alloc_tid: 0,
            alloc_path: Vec::new(),
            bins,
            freed: false,
        };
        let addr = rec.addr + probe % bytes;
        let b = rec.bin_of(addr);
        let (lo, hi) = rec.bin_range(b);
        prop_assert!(addr >= lo && addr < hi, "addr {addr:#x} not in bin {b} [{lo:#x},{hi:#x})");
        // Ranges tile the extent.
        let mut expect = rec.addr;
        for i in 0..rec.bins.max(1) {
            let (lo, hi) = rec.bin_range(i);
            prop_assert_eq!(lo, expect);
            expect = hi;
        }
        prop_assert_eq!(expect, rec.addr + bytes);
    }

    /// Contention multipliers stay within [1, max] for arbitrary loads and
    /// are monotone in the load.
    #[test]
    fn contention_multiplier_bounds(load_a in 0.0f64..100.0, load_b in 0.0f64..100.0) {
        let lat = LatencyModel::default_for(&MachinePreset::AmdMagnyCours.topology());
        let ma = lat.contention_multiplier_load(load_a);
        let mb = lat.contention_multiplier_load(load_b);
        prop_assert!((1.0..=lat.contention_max).contains(&ma));
        if load_a <= load_b {
            prop_assert!(ma <= mb);
        }
    }

    /// Simulated programs conserve work: instructions ≥ memory accesses,
    /// and total sampled accesses never exceed real accesses.
    #[test]
    fn sampling_never_invents_accesses(period in 1u64..64, threads in 1usize..8) {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(
            MechanismConfig::for_tests(MechanismKind::SoftIbs, period)
        );
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, threads));
        let mut p = Program::new(machine, threads, ExecMode::Sequential, profiler.clone());
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("v", 1 << 16, PlacementPolicy::FirstTouch);
            ctx.store_range(base, 64, 64);
        });
        p.parallel("w", |tid, ctx| {
            ctx.load_range(base + (tid as u64 % 4) * 1024, 128, 8);
        });
        let stats = p.stats();
        let profile = finish_profile(p, profiler);
        let sampled: u64 = profile.threads.iter().map(|t| t.totals.samples_mem).sum();
        prop_assert!(sampled <= stats.mem_accesses);
        prop_assert!(stats.instructions >= stats.mem_accesses);
        // With period 1 every access is sampled.
        if period == 1 {
            prop_assert_eq!(sampled, stats.mem_accesses);
        }
    }
}
