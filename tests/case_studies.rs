//! Compressed versions of the paper's four case-study claims (§8), run at
//! test scale. The full-size regenerators live in `crates/bench/src/bin`.

use hpctoolkit_numa::analysis::{analyze, classify, AccessPattern, Analyzer, Recommendation};
use hpctoolkit_numa::machine::{Machine, MachinePreset};
use hpctoolkit_numa::profiler::{ProfilerConfig, RangeScope};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, FuncId};
use hpctoolkit_numa::workloads::{
    run_profiled, run_unmonitored, Amg2006, AmgVariant, Blackscholes, BlackscholesVariant, Lulesh,
    LuleshVariant, Umt2013, UmtVariant, Workload,
};

fn amd() -> Machine {
    Machine::from_preset(MachinePreset::AmdMagnyCours)
}

fn power7() -> Machine {
    Machine::from_preset(MachinePreset::IbmPower7)
}

fn analyzer_of(
    w: &dyn Workload,
    machine: Machine,
    threads: usize,
    kind: MechanismKind,
) -> Analyzer {
    let cfg = ProfilerConfig::new(MechanismConfig::for_tests(kind, 8)).with_bins(32);
    let (_, _, profile) = run_profiled(w, machine, threads, ExecMode::Sequential, cfg);
    Analyzer::new(profile)
}

#[test]
fn lulesh_tool_guides_blockwise_and_it_wins() {
    // §8.1 in one test: the profiler flags LULESH, classifies z as a
    // blocked staircase, recommends block-wise distribution, and the fix
    // beats both the baseline and the prior interleave strategy on the
    // solve phase.
    let a = analyzer_of(
        &Lulesh::new(20, 3, LuleshVariant::Baseline),
        amd(),
        8,
        MechanismKind::Ibs,
    );
    let report = analyze(&a);
    assert!(report.program.warrants_optimization());
    let z = report
        .advice
        .iter()
        .find(|v| v.name == "z")
        .expect("z is hot");
    assert_eq!(z.recommendation, Recommendation::BlockWise);

    let solve = |variant| {
        let (_, out) =
            run_unmonitored(&Lulesh::new(20, 3, variant), amd(), 8, ExecMode::Sequential);
        out.phase("solve").unwrap()
    };
    let base = solve(LuleshVariant::Baseline);
    let inter = solve(LuleshVariant::Interleaved);
    let block = solve(LuleshVariant::BlockWise);
    assert!(block < base, "block-wise beats baseline: {block} vs {base}");
    assert!(
        block < inter,
        "block-wise beats interleave: {block} vs {inter}"
    );
}

#[test]
fn amg_region_drilldown_finds_the_hidden_pattern() {
    // §8.2: the whole-program view of RAP_diag_data has no usable pattern,
    // but the dominant relax region shows a clean blocked staircase.
    let a = analyzer_of(
        &Amg2006::new(128 * 1024, 1, AmgVariant::Baseline),
        amd(),
        8,
        MechanismKind::Ibs,
    );
    let var = a.profile().var_by_name("RAP_diag_data").unwrap().id;
    let relax = a
        .profile()
        .func_names
        .iter()
        .position(|n| n == "hypre_boomerAMGRelax._omp")
        .map(|i| FuncId(i as u32))
        .unwrap();
    let region_pattern = classify(&a.thread_ranges(var, RangeScope::Region(relax)));
    assert_eq!(region_pattern, AccessPattern::Blocked);
    // The relax region dominates the variable's NUMA cost, so the report's
    // final recommendation is block-wise despite the messy aggregate view.
    let report = analyze(&a);
    let advice = report
        .advice
        .iter()
        .find(|v| v.name == "RAP_diag_data")
        .expect("RAP_diag_data is hot");
    assert_eq!(advice.recommendation, Recommendation::BlockWise);
}

#[test]
fn blackscholes_severity_metric_prevents_wasted_work() {
    // §8.3: M_r looks terrible but lpi_NUMA is far below the threshold,
    // and indeed the "fix" barely moves the pricing phase.
    let a = analyzer_of(
        &Blackscholes::new(256, 12, BlackscholesVariant::Baseline),
        amd(),
        8,
        MechanismKind::Ibs,
    );
    let buffer = a.profile().var_by_name("buffer").unwrap().id;
    let m = a.var_metrics(buffer);
    assert!(m.m_remote > m.m_local, "looks like a severe NUMA problem");

    let price = |variant| {
        let (_, out) = run_unmonitored(
            &Blackscholes::new(256, 12, variant),
            amd(),
            8,
            ExecMode::Sequential,
        );
        out.phase("price").unwrap()
    };
    let base = price(BlackscholesVariant::Baseline);
    let opt = price(BlackscholesVariant::Regrouped);
    let gain = (base as f64 - opt as f64).abs() / base as f64;
    assert!(
        gain < 0.06,
        "fix changes pricing by {:.1}% only",
        gain * 100.0
    );
}

#[test]
fn umt_parallel_first_touch_removes_stime_remote_accesses() {
    // §8.4: parallelizing STime's initialization eliminates most remote
    // accesses to it and speeds up the sweep.
    let stime_remote = |variant| {
        let a = analyzer_of(
            &Umt2013::new(16, 64, 64, 2, variant),
            power7(),
            32,
            MechanismKind::Mrk,
        );
        let id = a.profile().var_by_name("STime").unwrap().id;
        a.var_metrics(id).m_remote
    };
    let before = stime_remote(UmtVariant::Baseline);
    let after = stime_remote(UmtVariant::ParallelFirstTouch);
    assert!(before > 0);
    assert!(
        (after as f64) < before as f64 * 0.2,
        "remote accesses to STime: {before} → {after}"
    );

    let sweep = |variant| {
        let (_, out) = run_unmonitored(
            &Umt2013::new(16, 64, 64, 2, variant),
            power7(),
            32,
            ExecMode::Sequential,
        );
        out.phase("sweep").unwrap()
    };
    assert!(sweep(UmtVariant::ParallelFirstTouch) < sweep(UmtVariant::Baseline));
}
