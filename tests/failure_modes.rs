//! Failure-injection and misuse tests: the engine and profiler must fail
//! loudly on programming errors and degrade gracefully on bad inputs.

use hpctoolkit_numa::machine::{DomainId, Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::NumaProfile;
use hpctoolkit_numa::sim::{ExecMode, Program};

fn machine() -> Machine {
    Machine::from_preset(MachinePreset::AmdMagnyCours)
}

#[test]
#[should_panic(expected = "unmapped")]
fn wild_access_panics_loudly() {
    let mut p = Program::unmonitored(machine(), 1, ExecMode::Sequential);
    p.serial("main", |ctx| {
        ctx.load(0xdead_beef, 8);
    });
}

#[test]
#[should_panic(expected = "hosts one Program")]
fn reusing_a_machine_for_two_programs_is_rejected() {
    let m = machine();
    {
        let mut p = Program::unmonitored(m.clone(), 1, ExecMode::Sequential);
        p.serial("main", |ctx| {
            ctx.alloc("x", 4096, PlacementPolicy::FirstTouch);
        });
        p.finish();
    }
    // The page map still holds the first program's regions.
    let _second = Program::unmonitored(m, 1, ExecMode::Sequential);
}

#[test]
#[should_panic(expected = "at least one thread")]
fn zero_thread_program_is_rejected() {
    Program::with_binding(
        machine(),
        Vec::new(),
        ExecMode::Sequential,
        std::sync::Arc::new(hpctoolkit_numa::sim::NullMonitor),
    );
}

#[test]
#[should_panic(expected = "cannot bind")]
fn too_many_threads_rejected() {
    // The AMD machine has 48 hardware threads.
    Program::unmonitored(machine(), 49, ExecMode::Sequential);
}

#[test]
fn freeing_twice_is_harmless() {
    let mut p = Program::unmonitored(machine(), 1, ExecMode::Sequential);
    p.serial("main", |ctx| {
        let a = ctx.alloc("x", 4096, PlacementPolicy::FirstTouch);
        ctx.store(a, 8);
        ctx.free(a);
        ctx.free(a); // second free: no region left, no panic
    });
    p.finish();
}

#[test]
#[should_panic(expected = "unmapped")]
fn use_after_free_is_a_wild_access() {
    let mut p = Program::unmonitored(machine(), 1, ExecMode::Sequential);
    p.serial("main", |ctx| {
        let a = ctx.alloc("x", 4096, PlacementPolicy::FirstTouch);
        ctx.free(a);
        ctx.load(a, 8);
    });
}

#[test]
fn unbalanced_exits_surface_on_the_profile_not_as_a_panic() {
    use hpctoolkit_numa::profiler::{finish_profile, NumaProfiler, ProfilerConfig};
    use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
    let m = machine();
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = std::sync::Arc::new(NumaProfiler::new(m.clone(), config, 2));
    let mut p = Program::new(m, 2, ExecMode::Sequential, profiler.clone());
    p.parallel("work._omp", |tid, ctx| {
        // Thread 1 replays a malformed trace whose exits outnumber its
        // enters; the engine absorbs each underflow as a counted no-op.
        if tid == 1 {
            ctx.exit_frame();
            ctx.exit_frame();
        }
        ctx.compute(100);
    });
    let profile = finish_profile(p, profiler);
    assert_eq!(profile.threads[0].stack_underflows, 0);
    // Thread 1's first extra pop closes the region frame, its second
    // underflows, and the region scope's own closing pop underflows too.
    assert_eq!(profile.threads[1].stack_underflows, 2);
    assert_eq!(profile.total_stack_underflows(), 2);
    // The malformed thread still profiled its compute work.
    assert!(profile.threads[1].instructions >= 100);
    // And the count survives the on-disk round trip.
    let round = NumaProfile::from_json(&profile.to_json()).expect("round trip");
    assert_eq!(round.total_stack_underflows(), 2);
}

#[test]
fn corrupt_profiles_are_rejected_not_panicked() {
    assert!(NumaProfile::from_json("not json").is_err());
    assert!(NumaProfile::from_json("{}").is_err());
    assert!(NumaProfile::from_json("{\"mechanism\":\"Ibs\"}").is_err());
}

#[test]
#[should_panic(expected = "bind domain out of range")]
fn binding_to_a_nonexistent_domain_is_rejected() {
    let mut p = Program::unmonitored(machine(), 1, ExecMode::Sequential);
    p.serial("main", |ctx| {
        ctx.alloc("x", 4096, PlacementPolicy::Bind(DomainId(200)));
    });
}

#[test]
fn thread_aligned_blockwise_matches_spread_binding() {
    // blockwise_for_threads must send thread t's block to thread t's
    // domain under the engine's spread binding.
    let m = machine();
    let threads = 16;
    let policy = m.blockwise_for_threads(threads);
    let mut p = Program::unmonitored(m.clone(), threads, ExecMode::Sequential);
    let bytes = threads as u64 * 4096 * 4;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("arr", bytes, policy);
    });
    // Every thread touches only its own block; every touch must be local.
    use hpctoolkit_numa::sim::{MemoryEvent, Monitor};
    struct AllLocal(std::sync::atomic::AtomicU64);
    impl Monitor for AllLocal {
        fn on_access(&self, ev: &MemoryEvent, _s: &[hpctoolkit_numa::sim::Frame]) -> u64 {
            if ev.is_remote_homed() {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            0
        }
    }
    // (Need a monitored program; rebuild on a fresh machine.)
    let m2 = machine();
    let policy2 = m2.blockwise_for_threads(threads);
    let monitor = std::sync::Arc::new(AllLocal(std::sync::atomic::AtomicU64::new(0)));
    let mut p2 = Program::new(m2, threads, ExecMode::Sequential, monitor.clone());
    let mut base2 = 0;
    p2.serial("main", |ctx| {
        base2 = ctx.alloc("arr", bytes, policy2);
    });
    p2.parallel("touch", |tid, ctx| {
        let chunk = bytes / threads as u64;
        for off in (0..chunk).step_by(4096) {
            ctx.store(base2 + tid as u64 * chunk + off, 8);
        }
    });
    p2.finish();
    assert_eq!(
        monitor.0.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "every block-wise touch is local"
    );
    let _ = (p, base);
}
