//! Integration tests for the viewer extensions: the merged code-centric
//! CCT pane and trace-based (time-varying) measurements — the paper's
//! future-work items #3 and #4.

use hpctoolkit_numa::analysis::{render_cct, render_trace_timelines, Analyzer};
use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{finish_profile, NodeKey, NumaProfiler, ProfilerConfig};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program};
use std::sync::Arc;

const SIZE: u64 = 8 << 20;
const THREADS: usize = 8;

fn run(config: ProfilerConfig) -> Analyzer {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(machine, THREADS, ExecMode::Sequential, profiler.clone());
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("data", SIZE, PlacementPolicy::FirstTouch);
        ctx.call("initialize", |ctx| {
            ctx.store_range(base, SIZE / 64, 64);
        });
    });
    p.parallel("solve._omp", |tid, ctx| {
        let chunk = SIZE / THREADS as u64;
        ctx.call("kernel", |ctx| {
            ctx.at_line(1502);
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
            ctx.at_line(0);
        });
    });
    Analyzer::new(finish_profile(p, profiler))
}

fn default_config() -> ProfilerConfig {
    ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8))
}

#[test]
fn merged_cct_accumulates_across_threads() {
    let a = run(default_config());
    let cct = a.merged_cct();
    // The merged tree contains the solve region once, with all workers'
    // samples accumulated under it.
    let total_merged: u64 = cct.nodes().iter().map(|n| n.metrics.samples_mem).sum();
    let total_threads: u64 = a
        .profile()
        .threads
        .iter()
        .map(|t| t.totals.samples_mem)
        .sum();
    assert_eq!(total_merged, total_threads, "no samples lost or duplicated");
}

#[test]
fn statement_level_attribution_survives_merging() {
    // The at_line(1502) marker must appear as a Line node carrying the
    // kernel's samples (HPCToolkit's statement scopes).
    let a = run(default_config());
    let cct = a.merged_cct();
    let line_samples: u64 = cct
        .nodes()
        .iter()
        .filter(|n| n.key == NodeKey::Line(1502))
        .map(|n| n.metrics.samples_mem)
        .sum();
    assert!(line_samples > 0, "line 1502 received samples");
}

#[test]
fn rendered_cct_shows_hot_path_with_shares() {
    let a = run(default_config());
    let text = render_cct(&a, 0.01);
    assert!(text.contains("<program>"), "{text}");
    assert!(text.contains("solve._omp"), "{text}");
    assert!(text.contains("kernel"), "{text}");
    assert!(text.contains("line 1502"), "{text}");
    assert!(
        text.contains("100.0%"),
        "root carries the whole program: {text}"
    );
}

#[test]
fn cct_view_elides_cold_subtrees() {
    let a = run(default_config());
    let verbose = render_cct(&a, 0.0);
    let pruned = render_cct(&a, 0.5);
    assert!(verbose.lines().count() > pruned.lines().count());
    // The serial initialization is local-only, so it disappears under a
    // remote-cost threshold.
    assert!(verbose.contains("initialize"));
    assert!(!pruned.contains("initialize"));
}

#[test]
fn traces_capture_phase_transition() {
    // With tracing on, worker threads' remote fraction is high during the
    // solve phase (all data homed in domain 0).
    let a = run(default_config().with_trace(5_000));
    let worker = &a.profile().threads[1];
    assert!(
        worker.trace.len() >= 2,
        "trace recorded points: {}",
        worker.trace.len()
    );
    let series = worker.trace.remote_fraction_series();
    let avg: f64 = series.iter().map(|(_, f)| f).sum::<f64>() / series.len() as f64;
    assert!(avg > 0.9, "worker 1 is remote almost always: {avg:.2}");
    let text = render_trace_timelines(&a, 32);
    assert!(text.contains("t1"), "{text}");
}

#[test]
fn tracing_disabled_by_default() {
    let a = run(default_config());
    assert!(a.profile().threads.iter().all(|t| t.trace.is_empty()));
    let text = render_trace_timelines(&a, 32);
    assert!(text.contains("no trace data"));
}

#[test]
fn traces_roundtrip_through_json() {
    let a = run(default_config().with_trace(10_000));
    let json = a.profile().to_json();
    let back = hpctoolkit_numa::profiler::NumaProfile::from_json(&json).unwrap();
    assert_eq!(
        back.threads[1].trace.len(),
        a.profile().threads[1].trace.len()
    );
}
