//! Reproducibility guarantees of the engine.

use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::sim::{ExecMode, Program, ProgramStats};
use hpctoolkit_numa::workloads::{run_unmonitored, Lulesh, LuleshVariant};

fn machine() -> Machine {
    Machine::from_preset(MachinePreset::AmdMagnyCours)
}

fn run_once(mode: ExecMode) -> ProgramStats {
    run_unmonitored(
        &Lulesh::new(12, 2, LuleshVariant::Baseline),
        machine(),
        8,
        mode,
    )
    .0
}

#[test]
fn sequential_unmonitored_runs_are_bit_identical() {
    let a = run_once(ExecMode::Sequential);
    let b = run_once(ExecMode::Sequential);
    assert_eq!(a, b);
}

#[test]
fn parallel_mode_preserves_work_counts() {
    let seq = run_once(ExecMode::Sequential);
    let par = run_once(ExecMode::Parallel);
    assert_eq!(seq.instructions, par.instructions);
    assert_eq!(seq.mem_accesses, par.mem_accesses);
}

#[test]
fn parallel_elapsed_is_close_to_sequential() {
    // Timing differs only through shared-L3 interleaving effects; the
    // fork-join contention charge is computed from region aggregates and
    // is mode-independent, so elapsed cycles should agree within a few
    // percent.
    let seq = run_once(ExecMode::Sequential);
    let par = run_once(ExecMode::Parallel);
    let ratio = par.elapsed_cycles as f64 / seq.elapsed_cycles as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "parallel/sequential elapsed ratio {ratio:.3}"
    );
}

#[test]
fn placement_policies_are_deterministic_across_modes() {
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        let m = machine();
        let mut p = Program::unmonitored(m.clone(), 8, mode);
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("arr", 64 * 4096, PlacementPolicy::interleave_all(8));
        });
        p.parallel("touch", |tid, ctx| {
            let chunk = 64 * 4096 / 8u64;
            for page in 0..chunk / 4096 {
                ctx.store(base + tid as u64 * chunk + page * 4096, 8);
            }
        });
        // Interleaving binds page i to domain i%8 regardless of who touched
        // it or when.
        let hist = m.page_map().binding_histogram(base).unwrap();
        assert_eq!(hist, vec![8; 8], "{mode:?}");
    }
}
