//! Profile serialization round-trips: `from_json(to_json(p))` must
//! preserve every analysis-relevant field — metric totals, per-variable
//! metrics, address ranges, and CCT paths — and corrupted input must
//! fail with an error, never a panic.

use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant, Lulesh, LuleshVariant};

fn profile(mechanism: MechanismKind) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let w = Blackscholes::new(128, 4, BlackscholesVariant::Baseline);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(mechanism, 16));
    let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
    p
}

#[test]
fn round_trip_is_byte_identical() {
    for mechanism in [
        MechanismKind::Ibs,
        MechanismKind::Mrk,
        MechanismKind::PebsLl,
    ] {
        let p = profile(mechanism);
        let json = p.to_json();
        let q = NumaProfile::from_json(&json).expect("round-trip parses");
        assert_eq!(
            q.to_json(),
            json,
            "canonical serialization must be stable under a round-trip ({mechanism:?})"
        );
    }
}

#[test]
fn round_trip_preserves_analysis_inputs() {
    let p = profile(MechanismKind::Ibs);
    let q = NumaProfile::from_json(&p.to_json()).unwrap();

    // Metric totals.
    assert_eq!(q.threads.len(), p.threads.len());
    for (a, b) in p.threads.iter().zip(&q.threads) {
        assert_eq!(a.totals.m_local, b.totals.m_local);
        assert_eq!(a.totals.m_remote, b.totals.m_remote);
        assert_eq!(a.totals.latency_total, b.totals.latency_total);
        assert_eq!(a.totals.latency_samples, b.totals.latency_samples);
        assert_eq!(a.totals.per_domain, b.totals.per_domain);
        // Per-variable metrics.
        assert_eq!(a.var_metrics.len(), b.var_metrics.len());
        for ((va, ma), (vb, mb)) in a.var_metrics.iter().zip(&b.var_metrics) {
            assert_eq!(va, vb);
            assert_eq!(ma.m_remote, mb.m_remote);
            assert_eq!(ma.latency_remote, mb.latency_remote);
        }
        // Address ranges ([min,max] per variable/bin/scope).
        assert_eq!(a.ranges.len(), b.ranges.len());
        for ((ka, sa), (kb, sb)) in a.ranges.iter().zip(&b.ranges) {
            assert_eq!(ka, kb);
            assert_eq!(
                (sa.min_addr, sa.max_addr, sa.count),
                (sb.min_addr, sb.max_addr, sb.count)
            );
        }
    }

    // Variable table and first touches.
    assert_eq!(q.vars.len(), p.vars.len());
    for (a, b) in p.vars.iter().zip(&q.vars) {
        assert_eq!(
            (a.id, &a.name, a.addr, a.bytes),
            (b.id, &b.name, b.addr, b.bytes)
        );
    }
    assert_eq!(q.first_touches.len(), p.first_touches.len());

    // CCT paths resolve identically (the index is rebuilt on load).
    for (a, b) in p.threads.iter().zip(&q.threads) {
        assert_eq!(a.cct.len(), b.cct.len());
        for id in 0..a.cct.len() as u32 {
            assert_eq!(a.cct.path_to(id), b.cct.path_to(id));
            assert_eq!(a.cct.node(id).key, b.cct.node(id).key);
        }
    }
}

#[test]
fn round_trip_survives_the_analyzer() {
    // A profile that went to disk and back must analyze identically.
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let w = Lulesh::new(10, 2, LuleshVariant::Baseline);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
    let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
    let q = NumaProfile::from_json(&p.to_json()).unwrap();
    let ra = numa_analysis::analyze(&numa_analysis::Analyzer::new(p)).to_json();
    let rb = numa_analysis::analyze(&numa_analysis::Analyzer::new(q)).to_json();
    assert_eq!(ra, rb);
}

#[test]
fn corrupted_input_errors_instead_of_panicking() {
    let good = profile(MechanismKind::Ibs).to_json();
    let half = &good[..good.len() / 2];
    let cases: Vec<String> = vec![
        String::new(),
        "not json at all".to_string(),
        half.to_string(),
        "{}".to_string(),
        good.replacen("\"machine_name\"", "\"machine_nope\"", 1),
        good.replacen("\"domains\":", "\"domains\":\"eight\",\"x\":", 1),
        format!("{good}garbage"),
    ];
    for (i, bad) in cases.iter().enumerate() {
        assert!(
            NumaProfile::from_json(bad).is_err(),
            "corrupted case #{i} unexpectedly parsed"
        );
    }
}
