//! Trace-based (time-varying) NUMA measurement — the paper's future-work
//! item #3 — on a program with three distinct phases.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```
//!
//! Phase 1: master initializes (local stores only, workers idle).
//! Phase 2: workers read remote data homed in domain 0 (remote plateau).
//! Phase 3: data is re-distributed block-wise; workers turn local again.
//! The per-thread timeline makes the phase structure visible at a glance —
//! something an aggregate profile cannot show.

use hpctoolkit_numa::analysis::{render_trace_timelines, Analyzer};
use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{finish_profile, NumaProfiler, ProfilerConfig};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program};
use std::sync::Arc;

const SIZE: u64 = 16 << 20;
const THREADS: usize = 8;

fn main() {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config =
        ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8)).with_trace(50_000);
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(
        machine.clone(),
        THREADS,
        ExecMode::Sequential,
        profiler.clone(),
    );

    // Phase 1: the classic bug — master first-touches everything.
    let mut a = 0;
    p.serial("main", |ctx| {
        a = ctx.alloc("data", SIZE, PlacementPolicy::FirstTouch);
        ctx.call("init", |ctx| ctx.store_range(a, SIZE / 64, 64));
    });

    // Phase 2: workers process their blocks — all remote to domain 0.
    let mut b = 0;
    p.parallel("process_v1._omp", |tid, ctx| {
        let chunk = SIZE / THREADS as u64;
        for off in (0..chunk).step_by(64) {
            ctx.load(a + tid as u64 * chunk + off, 8);
        }
        let _ = tid;
    });

    // Phase 3: the fixed version — a block-wise re-allocation (as the
    // optimized code would do), workers now local.
    p.serial("main", |ctx| {
        b = ctx.alloc("data_fixed", SIZE, machine.blockwise_for_threads(THREADS));
        let _ = b;
    });
    p.parallel("process_v2._omp", |tid, ctx| {
        let chunk = SIZE / THREADS as u64;
        for off in (0..chunk).step_by(64) {
            ctx.load(b + tid as u64 * chunk + off, 8);
        }
    });

    let analyzer = Analyzer::new(finish_profile(p, profiler));
    print!("{}", render_trace_timelines(&analyzer, 72));
    println!(
        "\nEach row is one thread's run, left to right in time. Workers go from a\n\
         remote plateau (processing master-initialized data) to local (block-wise\n\
         redistribution) — the time-varying pattern the paper's future work asks for."
    );
}
