//! The three data distributions of the paper's Figure 1, measured.
//!
//! ```text
//! cargo run --release --example data_distributions
//! ```
//!
//! One array, three placements — all in one domain / interleaved /
//! co-located block-wise — swept by 48 threads. Prints elapsed cycles and
//! the per-domain DRAM request histogram for each.

use hpctoolkit_numa::machine::{DomainId, Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::sim::{ExecMode, Program};

const ARRAY: u64 = 128 << 20;
const THREADS: usize = 48;

fn run(label: &str, make_policy: impl Fn(&Machine) -> PlacementPolicy) {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let policy = make_policy(&machine);
    let mut p = Program::unmonitored(machine.clone(), THREADS, ExecMode::Sequential);
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("data", ARRAY, policy);
    });
    p.parallel("sweep._omp", |tid, ctx| {
        let chunk = ARRAY / THREADS as u64;
        for off in (0..chunk).step_by(64) {
            ctx.load(base + tid as u64 * chunk + off, 8);
        }
    });
    let stats = p.finish();
    let hist = machine.controllers().lifetime_histogram();
    println!(
        "{label:<26} {:>12} cycles   DRAM requests/domain: {hist:?}",
        stats.elapsed_cycles
    );
}

fn main() {
    println!("Figure 1's three distributions ({THREADS} threads, 8 NUMA domains):\n");
    run("1: all in domain 0", |_| PlacementPolicy::Bind(DomainId(0)));
    run("2: interleaved", |_| PlacementPolicy::interleave_all(8));
    run("3: co-located block-wise", |m| {
        m.blockwise_for_threads(THREADS)
    });
    println!(
        "\nCo-location wins: local latency AND balanced controllers.\n\
         Interleaving only fixes the balance; the single-domain layout has\n\
         both the latency and the bandwidth problem (§2)."
    );
}
