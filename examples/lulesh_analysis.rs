//! End-to-end LULESH optimization loop: profile → read the guidance →
//! apply it → re-profile and verify, like the paper's §8.1 case study.
//!
//! ```text
//! cargo run --release --example lulesh_analysis
//! ```

use hpctoolkit_numa::analysis::{analyze, Analyzer, Recommendation};
use hpctoolkit_numa::machine::{Machine, MachinePreset};
use hpctoolkit_numa::profiler::ProfilerConfig;
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::ExecMode;
use hpctoolkit_numa::workloads::{run_profiled, run_unmonitored, Lulesh, LuleshVariant};

const THREADS: usize = 48;

fn profile(variant: LuleshVariant) -> Analyzer {
    let app = Lulesh::new(40, 2, variant);
    let (_, _, profile) = run_profiled(
        &app,
        Machine::from_preset(MachinePreset::AmdMagnyCours),
        THREADS,
        ExecMode::Sequential,
        ProfilerConfig::new(MechanismConfig::scaled(MechanismKind::Ibs, 64)).with_bins(64),
    );
    Analyzer::new(profile)
}

fn solve_cycles(variant: LuleshVariant) -> u64 {
    let app = Lulesh::new(40, 2, variant);
    let (_, out) = run_unmonitored(
        &app,
        Machine::from_preset(MachinePreset::AmdMagnyCours),
        THREADS,
        ExecMode::Sequential,
    );
    out.phase("solve").unwrap()
}

fn main() {
    println!("profiling baseline LULESH (48 threads, IBS)…");
    let analyzer = profile(LuleshVariant::Baseline);
    let report = analyze(&analyzer);

    println!(
        "verdict: lpi_NUMA = {:.3} → {}",
        report.program.lpi_numa.unwrap_or(0.0),
        if report.program.warrants_optimization() {
            "optimize"
        } else {
            "leave it alone"
        }
    );

    // What does the tool tell us to do?
    let mut blockwise_vars = Vec::new();
    for advice in &report.advice {
        println!(
            "  {}: {:.0}% of remote cost, pattern {:?} → {:?}",
            advice.name,
            advice.summary.remote_share * 100.0,
            advice.pattern,
            advice.recommendation
        );
        if advice.recommendation == Recommendation::BlockWise {
            blockwise_vars.push(advice.name.clone());
        }
        for (tid, domain, path) in &advice.first_touch_sites {
            println!("      first touch: thread {tid} ({domain}) at {path}");
        }
    }

    // Apply the fix the tool recommends: block-wise distribution by
    // parallelizing first touch (LuleshVariant::BlockWise edits exactly
    // the init loop the first-touch records point at).
    println!("\napplying block-wise first touch to {blockwise_vars:?}…");
    let base = solve_cycles(LuleshVariant::Baseline);
    let opt = solve_cycles(LuleshVariant::BlockWise);
    println!(
        "solve phase: {base} → {opt} cycles ({:+.1}%)",
        (base as f64 - opt as f64) / base as f64 * 100.0
    );

    // Verify with a re-profile: the remote fraction collapses.
    let after = profile(LuleshVariant::BlockWise);
    println!(
        "remote-access fraction: {:.1}% → {:.1}%",
        analyzer.program().remote_fraction * 100.0,
        after.program().remote_fraction * 100.0
    );
}
