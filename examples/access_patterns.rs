//! The four canonical access patterns of the case studies, rendered as
//! address-centric views and auto-classified.
//!
//! ```text
//! cargo run --release --example access_patterns
//! ```
//!
//! * blocked staircase — LULESH's `z` → block-wise distribution;
//! * staggered overlapping — Blackscholes' `buffer` → regroup + parallel
//!   first touch;
//! * full-range — AMG's `u` in matvec → interleave;
//! * irregular — no whole-program structure → drill into regions.

use hpctoolkit_numa::analysis::{classify, recommend, render_ranges, Analyzer};
use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{finish_profile, NumaProfiler, ProfilerConfig, RangeScope};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program, ThreadCtx};
use std::sync::Arc;

const SIZE: u64 = 8 << 20;
const THREADS: usize = 16;

/// One synthetic kernel per pattern: `body(tid, ctx, base)` issues the
/// accesses.
fn demo(name: &str, body: impl Fn(usize, &mut ThreadCtx<'_>, u64) + Sync) {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config =
        ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8)).with_bins(64);
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(machine, THREADS, ExecMode::Sequential, profiler.clone());
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("var", SIZE, PlacementPolicy::interleave_all(8));
    });
    p.parallel("kernel._omp", |tid, ctx| body(tid, ctx, base));
    let analyzer = Analyzer::new(finish_profile(p, profiler));
    let var = analyzer.profile().var_by_name("var").unwrap().id;
    let ranges = analyzer.thread_ranges(var, RangeScope::Program);
    print!("{}", render_ranges(&ranges, name));
    let pattern = classify(&ranges);
    println!(
        "classified: {}  ⇒  {}\n",
        pattern.name(),
        recommend(pattern).describe()
    );
}

fn main() {
    let chunk = SIZE / THREADS as u64;

    demo("blocked staircase", |tid, ctx, base| {
        let lo = base + tid as u64 * chunk;
        for off in (0..chunk).step_by(256) {
            ctx.load(lo + off, 8);
        }
    });

    demo("staggered overlapping windows", |tid, ctx, base| {
        // Each thread's window starts a little later but spans 60% of the
        // variable (Blackscholes' five-section layout collapses to this).
        let start = (tid as u64 * SIZE / (THREADS as u64 * 8)).min(SIZE * 2 / 5);
        let len = SIZE * 3 / 5;
        for off in (0..len).step_by(512) {
            ctx.load(base + start + off, 8);
        }
    });

    demo("full range per thread", |tid, ctx, base| {
        // Every thread sweeps everything, phase-shifted.
        let phase = (tid as u64 * 64) % 4096;
        for off in (phase..SIZE).step_by(4096) {
            ctx.load(base + off, 8);
        }
    });

    demo("irregular", |tid, ctx, base| {
        // Pseudo-random windows, uncorrelated with thread id.
        let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(tid as u64 + 17);
        for _ in 0..3 {
            x ^= x >> 31;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            let start = x % (SIZE - chunk);
            for off in (0..chunk / 2).step_by(256) {
                ctx.load(base + start + off, 8);
            }
        }
    });
}
