//! First-touch pinpointing (§6), demonstrated.
//!
//! ```text
//! cargo run --release --example first_touch_demo
//! ```
//!
//! The profiler protects each monitored variable's pages at allocation;
//! the first access raises a (simulated) SIGSEGV whose handler records the
//! faulting call path and data address. Three variables with three
//! different initializers show up with three different first-touch
//! contexts — including a concurrent parallel initialization where many
//! threads each record their own touch.

use hpctoolkit_numa::analysis::Analyzer;
use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{
    finish_profile, FirstTouchGranularity, NumaProfiler, ProfilerConfig,
};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program};
use std::sync::Arc;

const SIZE: u64 = 4 << 20;
const THREADS: usize = 8;

fn main() {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    // Page granularity records a fault per page, so a parallel
    // initialization shows one first-touch context per participating
    // thread (§6's concurrent-handler case). The paper's default —
    // Variable granularity — records only the first initializer.
    let config = ProfilerConfig::new(MechanismConfig::scaled(MechanismKind::Ibs, 64))
        .with_first_touch_granularity(FirstTouchGranularity::Page);
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));
    let mut p = Program::new(
        machine.clone(),
        THREADS,
        ExecMode::Sequential,
        profiler.clone(),
    );

    let mut a = 0;
    let mut b = 0;
    let mut c = 0;
    p.serial("main", |ctx| {
        a = ctx.alloc("master_inited", SIZE, PlacementPolicy::FirstTouch);
        b = ctx.alloc("worker_inited", SIZE, PlacementPolicy::FirstTouch);
        c = ctx.alloc("lazily_touched", SIZE, PlacementPolicy::FirstTouch);
        // Variable a: classic serial initialization by the master.
        ctx.call("read_input", |ctx| ctx.store_range(a, SIZE / 64, 64));
    });
    // Variable b: parallel initialization — every thread first-touches its
    // own block, so multiple threads enter the handler (§6 notes this
    // explicitly) and each records a first touch.
    p.parallel("init_b._omp", |tid, ctx| {
        let chunk = SIZE / THREADS as u64;
        ctx.call("fill_block", |ctx| {
            ctx.store_range(b + tid as u64 * chunk, chunk / 64, 64);
        });
    });
    // Variable c: first touched deep inside the compute phase — the fault
    // context pinpoints the surprise initializer.
    p.parallel("compute._omp", |tid, ctx| {
        if tid == 3 {
            ctx.call("lazy_cache_fill", |ctx| ctx.store_range(c, 64, 64));
        }
        ctx.compute(100);
    });

    let profile = finish_profile(p, profiler);
    let analyzer = Analyzer::new(profile);
    println!("first-touch records (page granularity):\n");
    for var_name in ["master_inited", "worker_inited", "lazily_touched"] {
        let id = analyzer.profile().var_by_name(var_name).unwrap().id;
        let sites = analyzer.first_touch_sites(id);
        println!("{var_name}: {} page faults", sites.len());
        // Merge per (thread, call path) — the postmortem merge of §6.
        let mut merged: Vec<(usize, String, String, usize)> = Vec::new();
        for (tid, domain, path) in sites {
            match merged
                .iter_mut()
                .find(|(t, _, p, _)| *t == tid && *p == path)
            {
                Some(entry) => entry.3 += 1,
                None => merged.push((tid, domain.to_string(), path, 1)),
            }
        }
        for (tid, domain, path, pages) in merged {
            println!("    thread {tid} ({domain}) at {path} [{pages} pages]");
        }
        // Where did the pages actually land? (`move_pages` ground truth.)
        if let Some(rec) = analyzer.profile().var(id) {
            println!(
                "    pages per domain: {:?}\n",
                machine.page_map().binding_histogram(rec.addr).unwrap()
            );
        }
    }
    println!(
        "Note: 'worker_inited' shows one record per initializing thread — the\n\
         concurrent-handler case of §6 — and its pages are spread across domains,\n\
         while the master-initialized variables sit entirely in domain 0."
    );
}
