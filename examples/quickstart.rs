//! Quickstart: profile a small multithreaded program on a simulated NUMA
//! machine and print the full NUMA analysis report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program below has the classic first-touch bug: the master thread
//! initializes a large array (binding every page to NUMA domain 0), then
//! all threads process disjoint blocks of it. The profiler pinpoints the
//! bug, quantifies it with the paper's metrics, and recommends the fix.

use hpctoolkit_numa::analysis::{analyze, full_text_report, Analyzer};
use hpctoolkit_numa::machine::{Machine, MachinePreset, PlacementPolicy};
use hpctoolkit_numa::profiler::{finish_profile, NumaProfiler, ProfilerConfig};
use hpctoolkit_numa::sampling::{MechanismConfig, MechanismKind};
use hpctoolkit_numa::sim::{ExecMode, Program};
use std::sync::Arc;

const ARRAY: u64 = 32 << 20;
const THREADS: usize = 8;

fn main() {
    // 1. A simulated 48-core, 8-domain AMD machine (Table 1's IBS system).
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);

    // 2. The profiler, configured for IBS address sampling (period scaled
    //    for a short run).
    let config = ProfilerConfig::new(MechanismConfig::scaled(MechanismKind::Ibs, 64));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, THREADS));

    // 3. The monitored program: allocate, master-init, parallel process.
    let mut program = Program::new(machine, THREADS, ExecMode::Sequential, profiler.clone());
    let mut data = 0;
    program.serial("main", |ctx| {
        data = ctx.alloc("data", ARRAY, PlacementPolicy::FirstTouch);
        // First touch by the master: every page lands in domain 0.
        ctx.call("init_data", |ctx| {
            ctx.store_range(data, ARRAY / 64, 64);
        });
    });
    for _ in 0..2 {
        program.parallel("process._omp", |tid, ctx| {
            let chunk = ARRAY / THREADS as u64;
            let base = data + tid as u64 * chunk;
            // Each thread streams its own block.
            for off in (0..chunk).step_by(64) {
                ctx.load(base + off, 8);
                ctx.compute(12);
            }
        });
    }

    // 4. Offline analysis: merge thread profiles, compute derived metrics,
    //    classify access patterns, emit guidance.
    let profile = finish_profile(program, profiler);
    let analyzer = Analyzer::new(profile);
    println!("{}", full_text_report(&analyzer));

    // Programmatic access to the same answers:
    let report = analyze(&analyzer);
    let advice = &report.advice[0];
    println!(
        "summary: '{}' causes {:.0}% of remote cost; pattern {:?}; fix: {}",
        advice.name,
        advice.summary.remote_share * 100.0,
        advice.pattern,
        advice.recommendation.describe()
    );
}
