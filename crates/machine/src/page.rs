//! The page map: virtual page → NUMA domain binding plus page-protection
//! bits.
//!
//! Two paper mechanisms live here:
//!
//! * **Placement** — pages are bound lazily: on the first touch, the owning
//!   region's [`PlacementPolicy`] decides the domain, falling back to the
//!   toucher's domain for `FirstTouch` (the Linux default, §2).
//! * **Protection** — the profiler's first-touch pinpointing (§6) revokes
//!   access to the pages of a freshly allocated variable; the first access to
//!   each protected page raises a synchronous fault that the execution engine
//!   delivers to the profiler, which attributes it and restores access.
//!
//! The map is organized as a sorted list of *regions* (one per allocation),
//! each holding per-page atomic state, so the per-access fast path is a read
//! lock + binary search + two relaxed atomic loads.

use crate::ids::{pages_spanned, DomainId, PageNum, PAGE_SHIFT, PAGE_SIZE};
use crate::policy::PlacementPolicy;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU8, Ordering};

/// Sentinel for "page not yet bound to any domain".
const UNBOUND: u8 = u8::MAX;

/// Per-page protection state (see [`PageMap::protect_extent`]).
const PROT_NONE: u8 = 0;
const PROT_TRAP: u8 = 1;

/// What a page-access resolution reported.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageQuery {
    /// Domain now backing the page.
    pub domain: DomainId,
    /// True if this access performed the binding (i.e. it was the page's
    /// first touch since allocation).
    pub bound_now: bool,
    /// Raised fault, if the page was protected. The engine must deliver this
    /// to the monitor before completing the access.
    pub fault: Option<FaultKind>,
}

/// Kind of synchronous fault raised by an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Access hit a protected page (the simulated SIGSEGV of §6). The page
    /// has already been unprotected; the faulting access then proceeds.
    FirstTouchTrap,
}

struct Region {
    start: u64,
    bytes: u64,
    policy: PlacementPolicy,
    /// Domain per page, `UNBOUND` until first touch.
    domains: Vec<AtomicU8>,
    /// Protection flag per page.
    prot: Vec<AtomicU8>,
}

impl Region {
    fn pages(&self) -> u64 {
        pages_spanned(self.start, self.bytes)
    }

    fn end(&self) -> u64 {
        self.start + self.bytes
    }

    fn page_index(&self, addr: u64) -> usize {
        ((addr >> PAGE_SHIFT) - (self.start >> PAGE_SHIFT)) as usize
    }
}

/// Concurrent page map for one machine.
pub struct PageMap {
    num_domains: usize,
    regions: RwLock<Vec<Region>>,
}

impl PageMap {
    pub fn new(num_domains: usize) -> Self {
        assert!(num_domains >= 1 && num_domains < UNBOUND as usize);
        PageMap {
            num_domains,
            regions: RwLock::new(Vec::new()),
        }
    }

    pub fn num_domains(&self) -> usize {
        self.num_domains
    }

    /// Register an allocation region `[start, start+bytes)` with a placement
    /// policy. Regions must not overlap.
    ///
    /// # Panics
    /// Panics on overlap with an existing region or zero-size region.
    pub fn register_region(&self, start: u64, bytes: u64, policy: PlacementPolicy) {
        assert!(bytes > 0, "empty region");
        if let PlacementPolicy::Bind(d) = &policy {
            assert!(d.index() < self.num_domains, "bind domain out of range");
        }
        let pages = pages_spanned(start, bytes) as usize;
        let region = Region {
            start,
            bytes,
            policy,
            domains: (0..pages).map(|_| AtomicU8::new(UNBOUND)).collect(),
            prot: (0..pages).map(|_| AtomicU8::new(PROT_NONE)).collect(),
        };
        let mut regions = self.regions.write();
        let pos = regions.partition_point(|r| r.start < start);
        if pos > 0 {
            let prev = &regions[pos - 1];
            assert!(prev.end() <= start, "region overlaps predecessor");
        }
        if pos < regions.len() {
            let next = &regions[pos];
            assert!(region.end() <= next.start, "region overlaps successor");
        }
        regions.insert(pos, region);
    }

    /// Remove the region starting at `start` (e.g. on `free`). Returns true
    /// if a region was removed.
    pub fn remove_region(&self, start: u64) -> bool {
        let mut regions = self.regions.write();
        if let Ok(idx) = regions.binary_search_by_key(&start, |r| r.start) {
            regions.remove(idx);
            true
        } else {
            false
        }
    }

    /// Resolve an access to `addr` by a thread running in `toucher`'s
    /// domain: binds the page if this is its first touch and reports any
    /// protection fault (clearing the protection so the access can retry).
    ///
    /// # Panics
    /// Panics if `addr` does not fall in any registered region ("wild"
    /// accesses are workload bugs).
    pub fn touch(&self, addr: u64, toucher: DomainId) -> PageQuery {
        let regions = self.regions.read();
        let r = Self::find(&regions, addr)
            .unwrap_or_else(|| panic!("access to unmapped address {addr:#x}"));
        let idx = r.page_index(addr);

        // Protection check first: the fault conceptually precedes the access.
        let fault = if r.prot[idx]
            .compare_exchange(PROT_TRAP, PROT_NONE, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            Some(FaultKind::FirstTouchTrap)
        } else {
            None
        };

        let cell = &r.domains[idx];
        let current = cell.load(Ordering::Acquire);
        if current != UNBOUND {
            return PageQuery {
                domain: DomainId(current),
                bound_now: false,
                fault,
            };
        }
        let target = r
            .policy
            .domain_for_page(idx as u64, r.pages())
            .unwrap_or(toucher);
        debug_assert!(target.index() < self.num_domains);
        match cell.compare_exchange(UNBOUND, target.0, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => PageQuery {
                domain: target,
                bound_now: true,
                fault,
            },
            // Another thread bound it first; its choice wins (as on Linux).
            Err(won) => PageQuery {
                domain: DomainId(won),
                bound_now: false,
                fault,
            },
        }
    }

    /// The domain backing `addr`, or `None` if unmapped or not yet touched.
    /// This is the `move_pages` query the profiler issues per sample.
    pub fn domain_of_addr(&self, addr: u64) -> Option<DomainId> {
        let regions = self.regions.read();
        let r = Self::find(&regions, addr)?;
        let d = r.domains[r.page_index(addr)].load(Ordering::Acquire);
        (d != UNBOUND).then_some(DomainId(d))
    }

    /// Protect the pages of the variable extent `[start, start+bytes)` for
    /// first-touch trapping. Following §6, only pages *fully contained* in
    /// the extent ("between the first and last page boundaries within the
    /// variable's extent") are protected, so accesses to neighbouring
    /// variables sharing a boundary page never fault spuriously.
    ///
    /// Returns the number of pages protected.
    pub fn protect_extent(&self, start: u64, bytes: u64) -> u64 {
        let first_full = start.div_ceil(PAGE_SIZE);
        let end_full = (start + bytes) >> PAGE_SHIFT; // exclusive page number
        if end_full <= first_full {
            return 0;
        }
        let regions = self.regions.read();
        let mut protected = 0;
        for pn in first_full..end_full {
            let addr = PageNum(pn).base_addr();
            if let Some(r) = Self::find(&regions, addr) {
                r.prot[r.page_index(addr)].store(PROT_TRAP, Ordering::Release);
                protected += 1;
            }
        }
        protected
    }

    /// Clear protection on every page of `[start, start+bytes)`.
    pub fn unprotect_extent(&self, start: u64, bytes: u64) {
        let regions = self.regions.read();
        let first = start >> PAGE_SHIFT;
        let last = (start + bytes.max(1) - 1) >> PAGE_SHIFT;
        for pn in first..=last {
            let addr = PageNum(pn).base_addr().max(start);
            if let Some(r) = Self::find(&regions, addr) {
                r.prot[r.page_index(addr)].store(PROT_NONE, Ordering::Release);
            }
        }
    }

    /// Is the page holding `addr` currently protected?
    pub fn is_protected(&self, addr: u64) -> bool {
        let regions = self.regions.read();
        Self::find(&regions, addr)
            .map(|r| r.prot[r.page_index(addr)].load(Ordering::Acquire) == PROT_TRAP)
            .unwrap_or(false)
    }

    /// Pages of region `start` bound to each domain (index = domain id).
    /// Useful for verifying distributions in tests and reports.
    pub fn binding_histogram(&self, start: u64) -> Option<Vec<u64>> {
        let regions = self.regions.read();
        let idx = regions.binary_search_by_key(&start, |r| r.start).ok()?;
        let r = &regions[idx];
        let mut hist = vec![0u64; self.num_domains];
        for cell in &r.domains {
            let d = cell.load(Ordering::Acquire);
            if d != UNBOUND {
                hist[d as usize] += 1;
            }
        }
        Some(hist)
    }

    /// Total number of registered regions (diagnostics / footprint).
    pub fn region_count(&self) -> usize {
        self.regions.read().len()
    }

    /// Approximate resident bytes of the map itself (for the paper's <40 MB
    /// footprint check).
    pub fn footprint_bytes(&self) -> usize {
        let regions = self.regions.read();
        regions
            .iter()
            .map(|r| std::mem::size_of::<Region>() + r.domains.len() * 2)
            .sum()
    }

    fn find(regions: &[Region], addr: u64) -> Option<&Region> {
        let pos = regions.partition_point(|r| r.start <= addr);
        if pos == 0 {
            return None;
        }
        let r = &regions[pos - 1];
        (addr < r.end()).then_some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PageMap {
        PageMap::new(8)
    }

    const BASE: u64 = 0x10_0000;

    #[test]
    fn first_touch_binds_to_toucher() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        let q = m.touch(BASE + 10, DomainId(3));
        assert_eq!(q.domain, DomainId(3));
        assert!(q.bound_now);
        // Second touch from elsewhere does not rebind.
        let q2 = m.touch(BASE + 20, DomainId(5));
        assert_eq!(q2.domain, DomainId(3));
        assert!(!q2.bound_now);
        assert_eq!(m.domain_of_addr(BASE), Some(DomainId(3)));
    }

    #[test]
    fn untouched_page_has_no_domain() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        assert_eq!(m.domain_of_addr(BASE + 2 * PAGE_SIZE), None);
    }

    #[test]
    fn interleave_ignores_toucher() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::interleave_all(4));
        for p in 0..4u64 {
            let q = m.touch(BASE + p * PAGE_SIZE, DomainId(7));
            assert_eq!(q.domain, DomainId((p % 4) as u8));
        }
    }

    #[test]
    fn blockwise_distribution_binds_blocks() {
        let m = map();
        m.register_region(BASE, 8 * PAGE_SIZE, PlacementPolicy::blockwise_all(4));
        for p in 0..8u64 {
            m.touch(BASE + p * PAGE_SIZE, DomainId(0));
        }
        let hist = m.binding_histogram(BASE).unwrap();
        assert_eq!(hist, vec![2, 2, 2, 2, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn wild_access_panics() {
        map().touch(0xdead_0000, DomainId(0));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_rejected() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        m.register_region(BASE + PAGE_SIZE, PAGE_SIZE, PlacementPolicy::FirstTouch);
    }

    #[test]
    fn adjacent_regions_allowed() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        m.register_region(
            BASE + 4 * PAGE_SIZE,
            PAGE_SIZE,
            PlacementPolicy::Bind(DomainId(1)),
        );
        let q = m.touch(BASE + 4 * PAGE_SIZE, DomainId(0));
        assert_eq!(q.domain, DomainId(1));
    }

    #[test]
    fn remove_region_unmaps() {
        let m = map();
        m.register_region(BASE, PAGE_SIZE, PlacementPolicy::FirstTouch);
        assert!(m.remove_region(BASE));
        assert!(!m.remove_region(BASE));
        assert_eq!(m.domain_of_addr(BASE), None);
    }

    #[test]
    fn protection_faults_once_per_page() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        assert_eq!(m.protect_extent(BASE, 4 * PAGE_SIZE), 4);
        assert!(m.is_protected(BASE));
        let q = m.touch(BASE + 100, DomainId(0));
        assert_eq!(q.fault, Some(FaultKind::FirstTouchTrap));
        // Fault already consumed; subsequent touches of the same page are clean.
        let q2 = m.touch(BASE + 200, DomainId(0));
        assert_eq!(q2.fault, None);
        // Other pages still protected.
        let q3 = m.touch(BASE + PAGE_SIZE, DomainId(0));
        assert_eq!(q3.fault, Some(FaultKind::FirstTouchTrap));
    }

    #[test]
    fn protect_extent_skips_partial_boundary_pages() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        // Extent starts mid-page and ends mid-page: only the two fully
        // contained pages are protected (§6).
        let protected = m.protect_extent(BASE + 100, 3 * PAGE_SIZE);
        assert_eq!(protected, 2);
        assert!(!m.is_protected(BASE + 100));
        assert!(m.is_protected(BASE + PAGE_SIZE));
        assert!(m.is_protected(BASE + 2 * PAGE_SIZE));
        assert!(!m.is_protected(BASE + 3 * PAGE_SIZE + 100));
    }

    #[test]
    fn protect_extent_smaller_than_page_protects_nothing() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        assert_eq!(m.protect_extent(BASE + 8, 64), 0);
    }

    #[test]
    fn unprotect_extent_clears_flags() {
        let m = map();
        m.register_region(BASE, 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        m.protect_extent(BASE, 4 * PAGE_SIZE);
        m.unprotect_extent(BASE, 4 * PAGE_SIZE);
        for p in 0..4u64 {
            assert!(!m.is_protected(BASE + p * PAGE_SIZE));
        }
    }

    #[test]
    fn concurrent_first_touch_single_winner() {
        use std::sync::Arc;
        let m = Arc::new(map());
        m.register_region(BASE, PAGE_SIZE, PlacementPolicy::FirstTouch);
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || m.touch(BASE, DomainId(t))));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let winners = results.iter().filter(|q| q.bound_now).count();
        assert_eq!(winners, 1, "exactly one thread performs the binding");
        let domain = results[0].domain;
        assert!(results.iter().all(|q| q.domain == domain));
    }

    #[test]
    fn footprint_scales_with_pages() {
        let m = map();
        m.register_region(BASE, 1024 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        assert!(m.footprint_bytes() >= 2048);
        assert!(m.footprint_bytes() < 64 * 1024);
    }
}
