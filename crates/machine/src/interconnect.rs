//! Inter-domain interconnect: hop distances between NUMA domains.
//!
//! The model distinguishes three distances: same domain (0 hops), a sibling
//! domain on the same socket (1 hop — e.g. the two dies of a Magny-Cours
//! package linked on-package), and a domain on another socket (2 hops).
//! This is enough structure to make "how far" matter without simulating a
//! full HyperTransport/QPI routing table.

use crate::ids::DomainId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Symmetric hop-distance matrix between NUMA domains.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Interconnect {
    domains: usize,
    /// Row-major `domains × domains` hop counts.
    hops: Vec<u32>,
}

impl Interconnect {
    /// Derive distances from a topology: 0 within a domain, 1 between
    /// domains sharing a socket, 2 across sockets.
    pub fn for_topology(t: &Topology) -> Self {
        let n = t.domains();
        let mut hops = vec![0u32; n * n];
        for a in 0..n {
            for b in 0..n {
                let da = DomainId(a as u8);
                let db = DomainId(b as u8);
                hops[a * n + b] = if a == b {
                    0
                } else if t.socket_of_domain(da) == t.socket_of_domain(db) {
                    1
                } else {
                    2
                };
            }
        }
        Interconnect { domains: n, hops }
    }

    /// Build from an explicit matrix (must be square, symmetric, and zero on
    /// the diagonal).
    pub fn from_matrix(hops: Vec<Vec<u32>>) -> Self {
        let n = hops.len();
        let mut flat = Vec::with_capacity(n * n);
        for (i, row) in hops.iter().enumerate() {
            assert_eq!(row.len(), n, "hop matrix must be square");
            assert_eq!(row[i], 0, "diagonal must be zero");
            flat.extend_from_slice(row);
        }
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    flat[a * n + b],
                    flat[b * n + a],
                    "hop matrix must be symmetric"
                );
            }
        }
        Interconnect {
            domains: n,
            hops: flat,
        }
    }

    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Hop count between two domains.
    pub fn hops(&self, a: DomainId, b: DomainId) -> u32 {
        assert!(a.index() < self.domains && b.index() < self.domains);
        self.hops[a.index() * self.domains + b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::MachinePreset;

    #[test]
    fn magny_cours_distances() {
        let t = MachinePreset::AmdMagnyCours.topology();
        let ic = Interconnect::for_topology(&t);
        // Same domain.
        assert_eq!(ic.hops(DomainId(0), DomainId(0)), 0);
        // Two dies of socket 0.
        assert_eq!(ic.hops(DomainId(0), DomainId(1)), 1);
        // Across sockets.
        assert_eq!(ic.hops(DomainId(0), DomainId(2)), 2);
        assert_eq!(ic.hops(DomainId(1), DomainId(7)), 2);
    }

    #[test]
    fn distances_are_symmetric() {
        let t = MachinePreset::AmdMagnyCours.topology();
        let ic = Interconnect::for_topology(&t);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(
                    ic.hops(DomainId(a), DomainId(b)),
                    ic.hops(DomainId(b), DomainId(a))
                );
            }
        }
    }

    #[test]
    fn explicit_matrix_roundtrips() {
        let ic = Interconnect::from_matrix(vec![vec![0, 3], vec![3, 0]]);
        assert_eq!(ic.hops(DomainId(0), DomainId(1)), 3);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        Interconnect::from_matrix(vec![vec![0, 1], vec![2, 0]]);
    }
}
