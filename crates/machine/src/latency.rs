//! Access latency model.
//!
//! Latencies are in CPU cycles. The defaults encode the two facts the paper
//! leans on (§2): remote DRAM accesses cost noticeably more than local ones
//! (>30%, here ~65% before hop costs), and bandwidth contention can inflate
//! access latency by up to ~5×.

use crate::ids::DomainId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Where a memory access was satisfied. This doubles as the "data source"
/// field that IBS and PEBS-LL samples report.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessLevel {
    /// Private level-1 cache hit.
    L1,
    /// Private level-2 cache hit.
    L2,
    /// Hit in the shared last-level cache of the accessing core's own domain.
    L3Local,
    /// Hit in the last-level cache of a remote domain.
    L3Remote,
    /// Served by the memory controller of the accessing core's own domain.
    MemLocal,
    /// Served by the memory controller of a remote domain.
    MemRemote,
}

impl AccessLevel {
    /// True if the data was served from outside the accessing core's NUMA
    /// domain (remote cache or remote memory). These accesses accumulate
    /// into the paper's `l_NUMA` remote-latency total.
    pub fn is_remote(self) -> bool {
        matches!(self, AccessLevel::L3Remote | AccessLevel::MemRemote)
    }

    /// True if the access missed all caches and reached DRAM.
    pub fn is_memory(self) -> bool {
        matches!(self, AccessLevel::MemLocal | AccessLevel::MemRemote)
    }

    /// True if the access missed the private cache hierarchy and left the
    /// core (shared L3 or beyond). MRK's `PM_MRK_FROM_L3MISS` event fires on
    /// `L3Remote`/`MemLocal`/`MemRemote`; we expose the broader predicate so
    /// mechanisms can build their own event filters.
    pub fn leaves_core(self) -> bool {
        !matches!(self, AccessLevel::L1 | AccessLevel::L2)
    }

    pub fn name(self) -> &'static str {
        match self {
            AccessLevel::L1 => "L1",
            AccessLevel::L2 => "L2",
            AccessLevel::L3Local => "L3-local",
            AccessLevel::L3Remote => "L3-remote",
            AccessLevel::MemLocal => "mem-local",
            AccessLevel::MemRemote => "mem-remote",
        }
    }
}

/// Per-level base latencies plus scaling knobs, in cycles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyModel {
    pub l1_hit: u32,
    pub l2_hit: u32,
    pub l3_local_hit: u32,
    /// Base cost of hitting a *remote* domain's L3 (before hop costs).
    pub l3_remote_hit: u32,
    pub mem_local: u32,
    /// Base cost of a remote DRAM access (before hop costs).
    pub mem_remote: u32,
    /// Additional cycles per interconnect hop beyond the first for remote
    /// accesses.
    pub per_hop: u32,
    /// Ceiling on the contention multiplier applied by memory controllers.
    pub contention_max: f64,
    /// How aggressively excess load translates into latency inflation;
    /// 1.0 means a domain receiving `k×` its fair share of traffic serves at
    /// roughly `1 + (k-1)` times base latency (clamped to `contention_max`).
    pub contention_slope: f64,
    /// Memory-level parallelism: out-of-order cores overlap several
    /// outstanding misses, so only `latency / stall_divisor` cycles stall
    /// the pipeline. Sampled (PMU-visible) latency stays the full value;
    /// the divisor only affects the virtual clock.
    pub stall_divisor: f64,
}

impl LatencyModel {
    /// A generic model suitable for any topology. Individual presets could
    /// specialize; for reproducing the paper's analyses the shared shape is
    /// sufficient.
    pub fn default_for(_t: &Topology) -> Self {
        LatencyModel {
            l1_hit: 4,
            l2_hit: 12,
            l3_local_hit: 40,
            l3_remote_hit: 110,
            mem_local: 150,
            mem_remote: 250,
            per_hop: 30,
            contention_max: 5.0,
            contention_slope: 0.6,
            stall_divisor: 4.0,
        }
    }

    /// Pipeline stall cycles the core actually pays for an access of the
    /// given (full) latency, after memory-level-parallelism overlap.
    pub fn stall_cycles(&self, latency: u32) -> u64 {
        (latency as f64 / self.stall_divisor).ceil() as u64
    }

    /// Uncontended latency of an access served at `level`, travelling
    /// `hops` interconnect hops (0 for local levels).
    pub fn base_latency(&self, level: AccessLevel, hops: u32) -> u32 {
        let base = match level {
            AccessLevel::L1 => self.l1_hit,
            AccessLevel::L2 => self.l2_hit,
            AccessLevel::L3Local => self.l3_local_hit,
            AccessLevel::L3Remote => self.l3_remote_hit,
            AccessLevel::MemLocal => self.mem_local,
            AccessLevel::MemRemote => self.mem_remote,
        };
        let extra_hops = hops.saturating_sub(1);
        if level.is_remote() {
            base + extra_hops * self.per_hop
        } else {
            base
        }
    }

    /// Full latency of an access: base latency scaled by the serving memory
    /// controller's contention multiplier (only DRAM accesses contend for
    /// controller bandwidth in this model).
    pub fn latency(&self, level: AccessLevel, hops: u32, contention_multiplier: f64) -> u32 {
        let base = self.base_latency(level, hops);
        if level.is_memory() {
            let m = contention_multiplier.clamp(1.0, self.contention_max);
            (base as f64 * m).round() as u32
        } else {
            base
        }
    }

    /// Contention multiplier for a domain receiving `share` of total DRAM
    /// traffic on a machine with `domains` domains. `share * domains == 1`
    /// is a perfectly balanced load and yields 1.0.
    pub fn contention_multiplier(&self, share: f64, domains: usize) -> f64 {
        let fair = 1.0 / domains.max(1) as f64;
        self.contention_multiplier_load(share / fair)
    }

    /// Contention multiplier for an absolute overload factor: `load == 1`
    /// means the domain's controller serves about as many concurrent
    /// request streams as it has local hardware threads (its design point);
    /// each unit of overload inflates latency by `contention_slope` until
    /// `contention_max`. A machine-wide fork-join region with `T` active
    /// threads and per-domain traffic share `s_d` has
    /// `load_d = s_d × T / cpus_per_domain`.
    pub fn contention_multiplier_load(&self, load: f64) -> f64 {
        (1.0 + self.contention_slope * (load - 1.0).max(0.0)).clamp(1.0, self.contention_max)
    }
}

/// Helper carried by events: whether `home` is remote relative to `local`,
/// expressed as an [`AccessLevel`] adjustment for DRAM accesses.
pub fn dram_level(local: DomainId, home: DomainId) -> AccessLevel {
    if local == home {
        AccessLevel::MemLocal
    } else {
        AccessLevel::MemRemote
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::MachinePreset;

    fn model() -> LatencyModel {
        LatencyModel::default_for(&MachinePreset::AmdMagnyCours.topology())
    }

    #[test]
    fn remote_memory_is_at_least_30_percent_slower() {
        let m = model();
        let local = m.base_latency(AccessLevel::MemLocal, 0);
        let remote = m.base_latency(AccessLevel::MemRemote, 1);
        assert!(
            remote as f64 >= local as f64 * 1.3,
            "paper §2: remote accesses have >30% higher latency ({remote} vs {local})"
        );
    }

    #[test]
    fn hop_costs_only_apply_to_remote_levels() {
        let m = model();
        assert_eq!(
            m.base_latency(AccessLevel::MemLocal, 0),
            m.base_latency(AccessLevel::MemLocal, 3)
        );
        assert!(
            m.base_latency(AccessLevel::MemRemote, 3) > m.base_latency(AccessLevel::MemRemote, 1)
        );
    }

    #[test]
    fn contention_multiplier_is_one_when_balanced() {
        let m = model();
        let mult = m.contention_multiplier(1.0 / 8.0, 8);
        assert!((mult - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contention_multiplier_caps_at_max() {
        let m = model();
        // All traffic to a single domain of eight.
        let mult = m.contention_multiplier(1.0, 8);
        assert!((mult - m.contention_max).abs() < 1e-9, "got {mult}");
    }

    #[test]
    fn contention_never_discounts_cold_domains() {
        let m = model();
        let mult = m.contention_multiplier(0.0, 8);
        assert!((mult - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_ignore_contention() {
        let m = model();
        assert_eq!(
            m.latency(AccessLevel::L3Remote, 1, 5.0),
            m.base_latency(AccessLevel::L3Remote, 1)
        );
        assert!(
            m.latency(AccessLevel::MemRemote, 1, 5.0) > m.base_latency(AccessLevel::MemRemote, 1)
        );
    }

    #[test]
    fn level_predicates() {
        assert!(AccessLevel::L3Remote.is_remote());
        assert!(AccessLevel::MemRemote.is_remote());
        assert!(!AccessLevel::MemLocal.is_remote());
        assert!(AccessLevel::MemLocal.is_memory());
        assert!(!AccessLevel::L3Local.is_memory());
        assert!(AccessLevel::L3Local.leaves_core());
        assert!(!AccessLevel::L2.leaves_core());
    }
}
