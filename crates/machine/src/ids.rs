//! Small typed identifiers shared across the machine model.

use serde::{Deserialize, Serialize};

/// Size of a simulated virtual-memory page in bytes (4 KiB, as on Linux).
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Identifier of a NUMA domain (a set of cores with uniform access latency to
/// a set of memory banks, per the paper's §1 definition).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DomainId(pub u8);

impl DomainId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Identifier of a hardware thread (what the OS calls a CPU).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CpuId(pub u16);

impl CpuId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A virtual page number (`addr >> PAGE_SHIFT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PageNum(pub u64);

impl PageNum {
    /// Page containing `addr`.
    pub fn of_addr(addr: u64) -> Self {
        PageNum(addr >> PAGE_SHIFT)
    }

    /// First byte address of this page.
    pub fn base_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }
}

/// Number of pages needed to cover `bytes` starting at `addr` (inclusive of
/// partial first/last pages).
pub fn pages_spanned(addr: u64, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let first = addr >> PAGE_SHIFT;
    let last = (addr + bytes - 1) >> PAGE_SHIFT;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_num_roundtrip() {
        assert_eq!(PageNum::of_addr(0), PageNum(0));
        assert_eq!(PageNum::of_addr(PAGE_SIZE - 1), PageNum(0));
        assert_eq!(PageNum::of_addr(PAGE_SIZE), PageNum(1));
        assert_eq!(PageNum(7).base_addr(), 7 * PAGE_SIZE);
    }

    #[test]
    fn pages_spanned_handles_partial_pages() {
        assert_eq!(pages_spanned(0, 0), 0);
        assert_eq!(pages_spanned(0, 1), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE + 1), 2);
        assert_eq!(pages_spanned(PAGE_SIZE - 1, 2), 2);
        assert_eq!(pages_spanned(100, PAGE_SIZE), 2);
    }
}
