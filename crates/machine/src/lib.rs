//! Simulated NUMA machine model.
//!
//! This crate is the hardware substrate for the HPCToolkit-NUMA reproduction.
//! It models everything the profiler's measurement layer observes about a
//! machine with multiple NUMA domains:
//!
//! * [`Topology`] — NUMA domains, sockets, cores, and SMT hardware threads,
//!   with the CPU↔domain mapping that the paper queries through libnuma's
//!   `numa_node_of_cpu`.
//! * [`PageMap`] — the virtual-to-domain page binding, including the Linux
//!   *first touch* policy as well as interleaved, block-wise, and explicit
//!   bindings (the placement strategies of §2 and Figure 1), plus page
//!   protection bits used for first-touch trapping (§6). The address→domain
//!   query mirrors libnuma's `move_pages`.
//! * [`LatencyModel`] and [`Interconnect`] — per-level access latencies with
//!   the remote-access penalty (>30% per §2) and hop distances between
//!   domains.
//! * [`MemoryControllers`] — epoch-based bandwidth-contention estimation: a
//!   domain receiving far more than its fair share of traffic serves requests
//!   with latency inflated by up to ~5× (§2 cites a 5× inflation under
//!   contention).
//!
//! The model is intentionally first-order: the profiler built on top of it
//! consumes *events* (address, latency, serving domain), so only the ordering
//! and rough magnitude of those quantities matter for reproducing the paper's
//! analyses.

pub mod controller;
pub mod ids;
pub mod interconnect;
pub mod latency;
pub mod page;
pub mod policy;
pub mod presets;
pub mod topology;

pub use controller::MemoryControllers;
pub use ids::{CpuId, DomainId, PageNum, PAGE_SHIFT, PAGE_SIZE};
pub use interconnect::Interconnect;
pub use latency::{AccessLevel, LatencyModel};
pub use page::{FaultKind, PageMap, PageQuery};
pub use policy::PlacementPolicy;
pub use presets::MachinePreset;
pub use topology::Topology;

use std::sync::Arc;

/// A complete simulated NUMA machine: topology, page map, latency model,
/// interconnect, and memory controllers.
///
/// `Machine` is cheap to share across threads (everything inside is either
/// immutable or internally synchronized) and is the single object workloads
/// and the profiler agree on.
#[derive(Clone)]
pub struct Machine {
    inner: Arc<MachineInner>,
}

struct MachineInner {
    topology: Topology,
    page_map: PageMap,
    latency: LatencyModel,
    interconnect: Interconnect,
    controllers: MemoryControllers,
}

impl Machine {
    /// Build a machine from a topology using that topology's default latency
    /// model and interconnect.
    pub fn new(topology: Topology) -> Self {
        let latency = LatencyModel::default_for(&topology);
        Self::with_latency(topology, latency)
    }

    /// Build a machine with an explicit latency model.
    pub fn with_latency(topology: Topology, latency: LatencyModel) -> Self {
        let interconnect = Interconnect::for_topology(&topology);
        let controllers = MemoryControllers::new(topology.domains());
        let page_map = PageMap::new(topology.domains());
        Machine {
            inner: Arc::new(MachineInner {
                topology,
                page_map,
                latency,
                interconnect,
                controllers,
            }),
        }
    }

    /// Build a machine from a named preset (the five systems of Table 1),
    /// with that machine's tuned latency model.
    pub fn from_preset(preset: MachinePreset) -> Self {
        Machine::with_latency(preset.topology(), preset.latency_model())
    }

    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    pub fn page_map(&self) -> &PageMap {
        &self.inner.page_map
    }

    pub fn latency_model(&self) -> &LatencyModel {
        &self.inner.latency
    }

    pub fn interconnect(&self) -> &Interconnect {
        &self.inner.interconnect
    }

    pub fn controllers(&self) -> &MemoryControllers {
        &self.inner.controllers
    }

    /// The NUMA domain of a CPU — the simulated `numa_node_of_cpu`.
    pub fn domain_of_cpu(&self, cpu: CpuId) -> DomainId {
        self.inner.topology.domain_of_cpu(cpu)
    }

    /// The NUMA domain holding an address, if the backing page has been
    /// bound — the simulated `move_pages` query used to compute `M_l`/`M_r`.
    pub fn domain_of_addr(&self, addr: u64) -> Option<DomainId> {
        self.inner.page_map.domain_of_addr(addr)
    }

    /// A block-wise placement policy aligned with the standard spread
    /// binding of `threads` software threads: block `t` of a region goes to
    /// the domain thread `t` runs in, so a contiguous per-thread partition
    /// is co-located. (A naive `blockwise_all` maps block `i` → domain `i`,
    /// which misaligns with round-robin thread binding.)
    pub fn blockwise_for_threads(&self, threads: usize) -> PlacementPolicy {
        let t = self.topology();
        PlacementPolicy::BlockWise {
            domains: t
                .spread_binding(threads)
                .iter()
                .map(|&c| t.domain_of_cpu(c))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("topology", &self.inner.topology.name())
            .field("domains", &self.inner.topology.domains())
            .field("cpus", &self.inner.topology.total_cpus())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_shares_state_across_clones() {
        let m = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let m2 = m.clone();
        m.page_map()
            .register_region(0x1000, 0x4000, PlacementPolicy::Bind(DomainId(3)));
        m.page_map().touch(0x1000, DomainId(0));
        assert_eq!(m2.domain_of_addr(0x1000), Some(DomainId(3)));
    }

    #[test]
    fn cpu_domain_query_matches_topology() {
        let m = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let t = m.topology();
        for cpu in 0..t.total_cpus() {
            let cpu = CpuId(cpu as u16);
            assert_eq!(m.domain_of_cpu(cpu), t.domain_of_cpu(cpu));
        }
    }
}
