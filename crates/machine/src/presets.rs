//! The five evaluation systems of the paper (Table 1) as machine presets.

use crate::latency::LatencyModel;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

const GIB: u64 = 1 << 30;

/// The machines used in the paper's experiments (§8, Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MachinePreset {
    /// Four 12-core AMD Magny-Cours packages. Each package holds two 6-core
    /// dies, each die a NUMA domain: 8 domains, 48 cores, 128 GiB evenly
    /// divided across the domains. Used for IBS and Soft-IBS experiments.
    AmdMagnyCours,
    /// Four 8-core POWER7 processors with 4-way SMT: 128 hardware threads,
    /// 64 GiB. The paper treats each socket as one NUMA domain. Used for MRK.
    IbmPower7,
    /// Intel Xeon Harpertown, 8 cores. Two front-side-bus sockets; modeled as
    /// two domains of four cores. Used for PEBS.
    IntelHarpertown,
    /// Intel Itanium 2, 8 threads across two domains. Used for DEAR.
    IntelItanium2,
    /// Intel Ivy Bridge, 8 threads across two domains. Used for PEBS-LL.
    IntelIvyBridge,
}

impl MachinePreset {
    /// All presets, in Table 1 order.
    pub const ALL: [MachinePreset; 5] = [
        MachinePreset::AmdMagnyCours,
        MachinePreset::IbmPower7,
        MachinePreset::IntelHarpertown,
        MachinePreset::IntelItanium2,
        MachinePreset::IntelIvyBridge,
    ];

    pub fn topology(self) -> Topology {
        match self {
            MachinePreset::AmdMagnyCours => Topology::new("AMD Magny-Cours", 8, 2, 6, 1, 16 * GIB),
            MachinePreset::IbmPower7 => Topology::new("IBM POWER7", 4, 1, 8, 4, 16 * GIB),
            MachinePreset::IntelHarpertown => {
                Topology::new("Intel Xeon Harpertown", 2, 1, 4, 1, 8 * GIB)
            }
            MachinePreset::IntelItanium2 => Topology::new("Intel Itanium 2", 2, 1, 4, 1, 8 * GIB),
            MachinePreset::IntelIvyBridge => {
                Topology::new("Intel Ivy Bridge", 2, 1, 4, 1, 16 * GIB)
            }
        }
    }

    /// Marketing name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            MachinePreset::AmdMagnyCours => "AMD Magny-Cours",
            MachinePreset::IbmPower7 => "IBM POWER 7",
            MachinePreset::IntelHarpertown => "Intel Xeon Harpertown",
            MachinePreset::IntelItanium2 => "Intel Itanium 2",
            MachinePreset::IntelIvyBridge => "Intel Ivy Bridge",
        }
    }

    /// Hardware-thread count as reported in Table 1's "Threads" column.
    pub fn table1_threads(self) -> usize {
        self.topology().total_cpus()
    }

    /// A latency model tuned per machine: the remote/local DRAM ratio and
    /// hop costs differ across the five systems (e.g. POWER7's on-package
    /// links are faster relative to its local latency, Harpertown's two
    /// front-side-bus domains are nearly uniform).
    pub fn latency_model(self) -> LatencyModel {
        let mut m = LatencyModel::default_for(&self.topology());
        match self {
            MachinePreset::AmdMagnyCours => {
                // HyperTransport mesh: visible hop costs, 8 small domains.
                m.mem_local = 150;
                m.mem_remote = 250;
                m.per_hop = 30;
            }
            MachinePreset::IbmPower7 => {
                // Big sockets, fast fabric: lower remote ratio, pricier
                // per-hop.
                m.mem_local = 140;
                m.mem_remote = 210;
                m.per_hop = 40;
                m.l3_local_hit = 34;
            }
            MachinePreset::IntelHarpertown => {
                // Front-side bus: nearly uniform memory, slow overall.
                m.mem_local = 190;
                m.mem_remote = 220;
                m.per_hop = 10;
            }
            MachinePreset::IntelItanium2 => {
                m.mem_local = 200;
                m.mem_remote = 300;
                m.per_hop = 30;
            }
            MachinePreset::IntelIvyBridge => {
                // Modern two-socket QPI part: fast local, ~1.6× remote.
                m.mem_local = 120;
                m.mem_remote = 195;
                m.per_hop = 25;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_thread_counts_match_paper() {
        assert_eq!(MachinePreset::AmdMagnyCours.table1_threads(), 48);
        assert_eq!(MachinePreset::IbmPower7.table1_threads(), 128);
        assert_eq!(MachinePreset::IntelHarpertown.table1_threads(), 8);
        assert_eq!(MachinePreset::IntelItanium2.table1_threads(), 8);
        assert_eq!(MachinePreset::IntelIvyBridge.table1_threads(), 8);
    }

    #[test]
    fn magny_cours_has_eight_domains() {
        let t = MachinePreset::AmdMagnyCours.topology();
        assert_eq!(t.domains(), 8);
        assert_eq!(t.sockets(), 4);
        // 128 GiB evenly divided into eight NUMA domains (§8).
        assert_eq!(t.mem_per_domain() * 8, 128 * GIB);
    }

    #[test]
    fn preset_latency_models_keep_remote_penalty() {
        // §2: remote accesses have more than 30% higher latency — true on
        // every modeled machine except the near-uniform FSB Harpertown
        // (whose two "domains" share a bus).
        for p in MachinePreset::ALL {
            let m = p.latency_model();
            let ratio = m.mem_remote as f64 / m.mem_local as f64;
            if p == MachinePreset::IntelHarpertown {
                assert!(ratio > 1.0 && ratio < 1.3, "{p:?}: {ratio}");
            } else {
                assert!(ratio >= 1.3, "{p:?}: {ratio}");
            }
        }
    }

    #[test]
    fn power7_socket_is_one_domain() {
        let t = MachinePreset::IbmPower7.topology();
        assert_eq!(t.domains(), 4);
        assert_eq!(t.smt(), 4);
        assert_eq!(t.mem_per_domain() * 4, 64 * GIB);
    }
}
