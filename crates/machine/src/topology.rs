//! NUMA topology: domains, sockets, cores, and SMT hardware threads.

use crate::ids::{CpuId, DomainId};
use serde::{Deserialize, Serialize};

/// Static description of a machine's NUMA organization.
///
/// CPUs are numbered densely: CPU `i` belongs to domain
/// `i / (cores_per_domain * smt)`. This matches the common Linux enumeration
/// where hardware threads of one socket are contiguous.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    domains: usize,
    /// Domains per physical socket (e.g. 2 for AMD Magny-Cours, whose two
    /// dies per package are distinct NUMA domains).
    domains_per_socket: usize,
    cores_per_domain: usize,
    /// Hardware threads per core (SMT width).
    smt: usize,
    /// Bytes of memory attached to each domain.
    mem_per_domain: u64,
}

impl Topology {
    pub fn new(
        name: impl Into<String>,
        domains: usize,
        domains_per_socket: usize,
        cores_per_domain: usize,
        smt: usize,
        mem_per_domain: u64,
    ) -> Self {
        assert!(domains >= 1, "a machine has at least one NUMA domain");
        assert!(domains <= 255, "DomainId is a u8");
        assert!(domains_per_socket >= 1 && domains_per_socket <= domains);
        assert_eq!(
            domains % domains_per_socket,
            0,
            "domains must fill whole sockets"
        );
        assert!(cores_per_domain >= 1);
        assert!(smt >= 1);
        let total = domains * cores_per_domain * smt;
        assert!(total <= u16::MAX as usize, "CpuId is a u16");
        Topology {
            name: name.into(),
            domains,
            domains_per_socket,
            cores_per_domain,
            smt,
            mem_per_domain,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn domains(&self) -> usize {
        self.domains
    }

    pub fn sockets(&self) -> usize {
        self.domains / self.domains_per_socket
    }

    pub fn cores_per_domain(&self) -> usize {
        self.cores_per_domain
    }

    pub fn smt(&self) -> usize {
        self.smt
    }

    pub fn mem_per_domain(&self) -> u64 {
        self.mem_per_domain
    }

    /// Total hardware threads (schedulable CPUs) in the machine.
    pub fn total_cpus(&self) -> usize {
        self.domains * self.cores_per_domain * self.smt
    }

    /// Hardware threads per NUMA domain.
    pub fn cpus_per_domain(&self) -> usize {
        self.cores_per_domain * self.smt
    }

    /// The NUMA domain containing a CPU (simulated `numa_node_of_cpu`).
    ///
    /// # Panics
    /// Panics if `cpu` is out of range for this topology.
    pub fn domain_of_cpu(&self, cpu: CpuId) -> DomainId {
        let idx = cpu.index();
        assert!(
            idx < self.total_cpus(),
            "cpu {idx} out of range for {} ({} cpus)",
            self.name,
            self.total_cpus()
        );
        DomainId((idx / self.cpus_per_domain()) as u8)
    }

    /// The socket containing a domain.
    pub fn socket_of_domain(&self, d: DomainId) -> usize {
        assert!(d.index() < self.domains);
        d.index() / self.domains_per_socket
    }

    /// All CPUs belonging to a domain, in id order.
    pub fn cpus_of_domain(&self, d: DomainId) -> impl Iterator<Item = CpuId> + '_ {
        let per = self.cpus_per_domain();
        let start = d.index() * per;
        (start..start + per).map(|i| CpuId(i as u16))
    }

    /// A compact round-robin binding of `n` software threads to CPUs that
    /// spreads threads across domains first and fills SMT last — the binding
    /// used by the paper's experiments ("we bind each thread to a core").
    ///
    /// Thread `t` is bound to domain `t % domains`, core slot `t / domains`.
    pub fn spread_binding(&self, n: usize) -> Vec<CpuId> {
        assert!(
            n <= self.total_cpus(),
            "cannot bind {n} threads to {} cpus",
            self.total_cpus()
        );
        (0..n)
            .map(|t| {
                let domain = t % self.domains;
                let slot = t / self.domains;
                CpuId((domain * self.cpus_per_domain() + slot) as u16)
            })
            .collect()
    }

    /// A compact binding that fills one domain completely before moving to
    /// the next. Thread `t` is bound to CPU `t`.
    pub fn compact_binding(&self, n: usize) -> Vec<CpuId> {
        assert!(n <= self.total_cpus());
        (0..n).map(|t| CpuId(t as u16)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Topology {
        Topology::new("toy", 4, 2, 3, 2, 1 << 30)
    }

    #[test]
    fn cpu_counts() {
        let t = toy();
        assert_eq!(t.total_cpus(), 24);
        assert_eq!(t.cpus_per_domain(), 6);
        assert_eq!(t.sockets(), 2);
    }

    #[test]
    fn domain_of_cpu_is_dense() {
        let t = toy();
        assert_eq!(t.domain_of_cpu(CpuId(0)), DomainId(0));
        assert_eq!(t.domain_of_cpu(CpuId(5)), DomainId(0));
        assert_eq!(t.domain_of_cpu(CpuId(6)), DomainId(1));
        assert_eq!(t.domain_of_cpu(CpuId(23)), DomainId(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn domain_of_cpu_panics_out_of_range() {
        toy().domain_of_cpu(CpuId(24));
    }

    #[test]
    fn socket_of_domain_groups_pairs() {
        let t = toy();
        assert_eq!(t.socket_of_domain(DomainId(0)), 0);
        assert_eq!(t.socket_of_domain(DomainId(1)), 0);
        assert_eq!(t.socket_of_domain(DomainId(2)), 1);
        assert_eq!(t.socket_of_domain(DomainId(3)), 1);
    }

    #[test]
    fn cpus_of_domain_enumerates_contiguous_block() {
        let t = toy();
        let cpus: Vec<_> = t.cpus_of_domain(DomainId(1)).collect();
        assert_eq!(cpus, (6..12).map(|i| CpuId(i as u16)).collect::<Vec<_>>());
    }

    #[test]
    fn spread_binding_round_robins_domains() {
        let t = toy();
        let b = t.spread_binding(8);
        let domains: Vec<_> = b.iter().map(|&c| t.domain_of_cpu(c).0).collect();
        assert_eq!(domains, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // No CPU is used twice.
        let mut sorted = b.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), b.len());
    }

    #[test]
    fn compact_binding_fills_domain_zero_first() {
        let t = toy();
        let b = t.compact_binding(7);
        let domains: Vec<_> = b.iter().map(|&c| t.domain_of_cpu(c).0).collect();
        assert_eq!(domains, vec![0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn full_spread_binding_uses_every_cpu_once() {
        let t = toy();
        let mut b = t.spread_binding(t.total_cpus());
        b.sort();
        let all: Vec<_> = (0..t.total_cpus()).map(|i| CpuId(i as u16)).collect();
        assert_eq!(b, all);
    }
}
