//! Per-domain memory controllers with windowed bandwidth-contention
//! estimation.
//!
//! The paper (§2) motivates *contention reduction*: when memory requests are
//! unevenly distributed — e.g. a large array bound entirely to one domain —
//! the interconnect and that domain's memory controller saturate, inflating
//! access latency by as much as 5×. We model this with a sliding window over
//! DRAM requests: each controller's *share* of the previous window's traffic
//! drives a latency multiplier (computed by
//! [`LatencyModel::contention_multiplier`](crate::latency::LatencyModel::contention_multiplier)).
//!
//! Only DRAM accesses are recorded; cache hits do not consume controller
//! bandwidth in this model.

use crate::ids::DomainId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-line padded counter to avoid false sharing between domains.
#[repr(align(64))]
struct Padded(AtomicU64);

impl Padded {
    fn new() -> Self {
        Padded(AtomicU64::new(0))
    }
}

/// Default window length in DRAM requests. Short enough to track program
/// phases, long enough to smooth noise; the `ablation_contention` bench
/// sweeps this.
pub const DEFAULT_WINDOW: u64 = 1 << 16;

/// Windowed per-domain DRAM request accounting.
pub struct MemoryControllers {
    domains: usize,
    window: u64,
    /// Requests per domain in the current window.
    current: Vec<Padded>,
    /// Snapshot of the completed previous window.
    prev: Vec<AtomicU64>,
    prev_total: AtomicU64,
    /// Total DRAM requests ever (also drives window rollover).
    total: AtomicU64,
    /// Lifetime per-domain totals, for reports.
    lifetime: Vec<Padded>,
}

impl MemoryControllers {
    pub fn new(domains: usize) -> Self {
        Self::with_window(domains, DEFAULT_WINDOW)
    }

    pub fn with_window(domains: usize, window: u64) -> Self {
        assert!(domains >= 1);
        assert!(window >= 1);
        MemoryControllers {
            domains,
            window,
            current: (0..domains).map(|_| Padded::new()).collect(),
            prev: (0..domains).map(|_| AtomicU64::new(0)).collect(),
            prev_total: AtomicU64::new(0),
            total: AtomicU64::new(0),
            lifetime: (0..domains).map(|_| Padded::new()).collect(),
        }
    }

    pub fn domains(&self) -> usize {
        self.domains
    }

    pub fn window(&self) -> u64 {
        self.window
    }

    /// Record one DRAM request served by `domain`. On window rollover the
    /// crossing thread publishes the window's per-domain counts as the new
    /// contention baseline. Counting is relaxed: under parallel execution the
    /// snapshot is approximate, which is acceptable for a contention
    /// *estimate*; under sequential execution it is exact and deterministic.
    pub fn record(&self, domain: DomainId) {
        debug_assert!(domain.index() < self.domains);
        self.current[domain.index()]
            .0
            .fetch_add(1, Ordering::Relaxed);
        self.lifetime[domain.index()]
            .0
            .fetch_add(1, Ordering::Relaxed);
        let n = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.window) {
            self.rollover();
        }
    }

    fn rollover(&self) {
        let mut total = 0;
        for d in 0..self.domains {
            let v = self.current[d].0.swap(0, Ordering::Relaxed);
            self.prev[d].store(v, Ordering::Relaxed);
            total += v;
        }
        self.prev_total.store(total, Ordering::Relaxed);
    }

    /// Share of the previous window's DRAM traffic served by `domain`, in
    /// `[0, 1]`. Before the first rollover (cold start) this is the balanced
    /// share `1/domains`, i.e. no contention is assumed.
    pub fn share(&self, domain: DomainId) -> f64 {
        let total = self.prev_total.load(Ordering::Relaxed);
        if total == 0 {
            return 1.0 / self.domains as f64;
        }
        self.prev[domain.index()].load(Ordering::Relaxed) as f64 / total as f64
    }

    /// Total DRAM requests recorded so far.
    pub fn total_requests(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Lifetime DRAM requests per domain.
    pub fn lifetime_histogram(&self) -> Vec<u64> {
        self.lifetime
            .iter()
            .map(|p| p.0.load(Ordering::Relaxed))
            .collect()
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        for d in 0..self.domains {
            self.current[d].0.store(0, Ordering::Relaxed);
            self.prev[d].store(0, Ordering::Relaxed);
            self.lifetime[d].0.store(0, Ordering::Relaxed);
        }
        self.prev_total.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_assumes_balance() {
        let c = MemoryControllers::with_window(8, 16);
        assert!((c.share(DomainId(0)) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn single_domain_traffic_yields_full_share_after_rollover() {
        let c = MemoryControllers::with_window(4, 8);
        for _ in 0..8 {
            c.record(DomainId(2));
        }
        assert!((c.share(DomainId(2)) - 1.0).abs() < 1e-12);
        assert!((c.share(DomainId(0)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_traffic_yields_fair_shares() {
        let c = MemoryControllers::with_window(4, 8);
        for i in 0..16u64 {
            c.record(DomainId((i % 4) as u8));
        }
        for d in 0..4 {
            assert!((c.share(DomainId(d)) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn share_tracks_most_recent_window_only() {
        let c = MemoryControllers::with_window(2, 4);
        // Window 1: all to domain 0.
        for _ in 0..4 {
            c.record(DomainId(0));
        }
        assert!((c.share(DomainId(0)) - 1.0).abs() < 1e-12);
        // Window 2: all to domain 1 — after rollover the baseline flips.
        for _ in 0..4 {
            c.record(DomainId(1));
        }
        assert!((c.share(DomainId(1)) - 1.0).abs() < 1e-12);
        assert!((c.share(DomainId(0)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn lifetime_histogram_accumulates() {
        let c = MemoryControllers::with_window(2, 1024);
        for _ in 0..3 {
            c.record(DomainId(0));
        }
        c.record(DomainId(1));
        assert_eq!(c.lifetime_histogram(), vec![3, 1]);
        assert_eq!(c.total_requests(), 4);
    }

    #[test]
    fn reset_clears_everything() {
        let c = MemoryControllers::with_window(2, 2);
        for _ in 0..4 {
            c.record(DomainId(1));
        }
        c.reset();
        assert_eq!(c.total_requests(), 0);
        assert!((c.share(DomainId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_is_safe_and_totals_add_up() {
        use std::sync::Arc;
        let c = Arc::new(MemoryControllers::with_window(4, 64));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.record(DomainId(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total_requests(), 40_000);
        assert_eq!(c.lifetime_histogram(), vec![10_000; 4]);
    }
}
