//! Page placement policies (§2, Figure 1).
//!
//! A policy decides which NUMA domain backs a page the first time it is
//! touched. [`PlacementPolicy::FirstTouch`] is the Linux default the paper
//! discusses at length; the others are the optimization levers the tool's
//! guidance recommends (interleaving for contention reduction, block-wise
//! distribution for co-location, explicit binding).

use crate::ids::{DomainId, PAGE_SHIFT};
use serde::{Deserialize, Serialize};

/// How pages of an allocation region are bound to NUMA domains.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Linux default: a page is bound to the domain of the thread that first
    /// reads or writes it.
    FirstTouch,
    /// Pages are bound round-robin across the listed domains in page order —
    /// `numactl --interleave`. An empty list means "all domains".
    Interleaved { domains: Vec<DomainId> },
    /// The region is split into `domains.len()` equal contiguous blocks of
    /// pages; block `i` is bound entirely to `domains[i]`. This is the
    /// co-location distribution the paper's case studies implement by
    /// adjusting first-touch code.
    BlockWise { domains: Vec<DomainId> },
    /// Every page of the region is bound to one explicit domain.
    Bind(DomainId),
}

impl PlacementPolicy {
    /// Interleave across all `n` domains of a machine.
    pub fn interleave_all(n: usize) -> Self {
        PlacementPolicy::Interleaved {
            domains: (0..n).map(|d| DomainId(d as u8)).collect(),
        }
    }

    /// Block-wise across all `n` domains of a machine.
    pub fn blockwise_all(n: usize) -> Self {
        PlacementPolicy::BlockWise {
            domains: (0..n).map(|d| DomainId(d as u8)).collect(),
        }
    }

    /// Resolve the domain for a page, or `None` if the decision belongs to
    /// the toucher (first-touch).
    ///
    /// * `page_index` — index of the page within its region (0-based).
    /// * `region_pages` — total pages in the region.
    pub fn domain_for_page(&self, page_index: u64, region_pages: u64) -> Option<DomainId> {
        match self {
            PlacementPolicy::FirstTouch => None,
            PlacementPolicy::Interleaved { domains } => {
                assert!(!domains.is_empty(), "interleave domain list is empty");
                Some(domains[(page_index % domains.len() as u64) as usize])
            }
            PlacementPolicy::BlockWise { domains } => {
                assert!(!domains.is_empty(), "block-wise domain list is empty");
                let n = domains.len() as u64;
                // Balanced partition: block i covers pages
                // [i·P/n, (i+1)·P/n), so block sizes differ by at most one
                // page and every listed domain receives pages whenever
                // P ≥ n (a ceiling-divide split can starve the trailing
                // domains entirely).
                let idx = (page_index.min(region_pages - 1) as u128 * n as u128
                    / region_pages.max(1) as u128) as u64;
                Some(domains[idx.min(n - 1) as usize])
            }
            PlacementPolicy::Bind(d) => Some(*d),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::FirstTouch => "first-touch",
            PlacementPolicy::Interleaved { .. } => "interleaved",
            PlacementPolicy::BlockWise { .. } => "block-wise",
            PlacementPolicy::Bind(_) => "bind",
        }
    }
}

/// Convenience: number of whole pages covering a byte-size region.
pub fn region_pages(bytes: u64) -> u64 {
    bytes.div_ceil(1 << PAGE_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u8) -> DomainId {
        DomainId(i)
    }

    #[test]
    fn first_touch_defers() {
        assert_eq!(PlacementPolicy::FirstTouch.domain_for_page(0, 100), None);
    }

    #[test]
    fn bind_is_constant() {
        let p = PlacementPolicy::Bind(d(5));
        for i in 0..10 {
            assert_eq!(p.domain_for_page(i, 10), Some(d(5)));
        }
    }

    #[test]
    fn interleave_round_robins() {
        let p = PlacementPolicy::interleave_all(4);
        let got: Vec<_> = (0..8).map(|i| p.domain_for_page(i, 8).unwrap().0).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn blockwise_splits_evenly() {
        let p = PlacementPolicy::blockwise_all(4);
        // 8 pages over 4 domains: blocks of 2.
        let got: Vec<_> = (0..8).map(|i| p.domain_for_page(i, 8).unwrap().0).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn blockwise_remainder_is_balanced() {
        let p = PlacementPolicy::blockwise_all(4);
        // 10 pages over 4 domains: balanced blocks of size 3,2,3,2.
        let got: Vec<_> = (0..10)
            .map(|i| p.domain_for_page(i, 10).unwrap().0)
            .collect();
        assert_eq!(got, vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn blockwise_covers_every_domain_when_possible() {
        // The ceiling-divide formulation starved trailing domains (e.g.
        // 8 pages over 5 domains never used domain 4); the balanced split
        // must not.
        for domains in 1..8u64 {
            for pages in domains..64 {
                let p = PlacementPolicy::blockwise_all(domains as usize);
                let mut seen = vec![false; domains as usize];
                for i in 0..pages {
                    seen[p.domain_for_page(i, pages).unwrap().0 as usize] = true;
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "{pages} pages over {domains} domains"
                );
            }
        }
    }

    #[test]
    fn blockwise_more_domains_than_pages() {
        let p = PlacementPolicy::blockwise_all(8);
        // 3 pages over 8 domains: pages spread across distinct domains.
        let got: Vec<_> = (0..3).map(|i| p.domain_for_page(i, 3).unwrap().0).collect();
        assert_eq!(got.len(), 3);
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(dedup, got, "each page on a distinct domain");
    }

    #[test]
    fn blockwise_never_indexes_out_of_bounds() {
        let p = PlacementPolicy::blockwise_all(3);
        for pages in 1..50u64 {
            for i in 0..pages {
                let got = p.domain_for_page(i, pages).unwrap();
                assert!(got.0 < 3);
            }
        }
    }

    #[test]
    fn region_pages_rounds_up() {
        assert_eq!(region_pages(1), 1);
        assert_eq!(region_pages(4096), 1);
        assert_eq!(region_pages(4097), 2);
    }
}
