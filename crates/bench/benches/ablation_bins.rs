//! Ablation: address-centric bin count (§5.2).
//!
//! The paper defaults to five bins per large variable and exposes an
//! environment knob. This ablation sweeps the bin count and reports (a)
//! analysis cost and (b) whether the classifier still recovers the LULESH
//! blocked staircase — few bins blur per-thread blocks into overlapping
//! ranges; many bins cost profile space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_analysis::{classify, Analyzer};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig, RangeScope};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{run_profiled, Lulesh, LuleshVariant};

fn profile_with_bins(bins: u16) -> NumaProfile {
    let config =
        ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16)).with_bins(bins);
    let (_, _, profile) = run_profiled(
        &Lulesh::new(24, 1, LuleshVariant::Baseline),
        Machine::from_preset(MachinePreset::AmdMagnyCours),
        8,
        ExecMode::Sequential,
        config,
    );
    profile
}

fn bench_bins(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_count_ablation");
    group.sample_size(10);
    for bins in [1u16, 2, 5, 16, 64] {
        let profile = profile_with_bins(bins);
        let ranges: usize = profile.threads.iter().map(|t| t.ranges.len()).sum();
        let a = Analyzer::new(profile.clone());
        let z = a.profile().var_by_name("z").unwrap().id;
        let pattern = classify(&a.thread_ranges(z, RangeScope::Program));
        println!(
            "bins={bins}: {ranges} range records, z pattern = {}",
            pattern.name()
        );
        group.bench_with_input(BenchmarkId::new("analyze", bins), &profile, |b, p| {
            b.iter(|| {
                let a = Analyzer::new(p.clone());
                let z = a.profile().var_by_name("z").unwrap().id;
                classify(&a.thread_ranges(z, RangeScope::Program))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bins);
criterion_main!(benches);
