//! Store throughput: batched ingestion scaling across rayon thread
//! counts, cold vs. warm (memoized) analysis queries over a 32-profile
//! corpus, and binary-record vs. JSON-era WAL replay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_store::{fnv1a, wal, PersistOptions, ProfileStore, Query, StoreConfig};
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant};
use std::path::Path;
use std::time::Instant;

/// Headline-ratio floor, overridable for starved CI containers where a
/// cached lookup and a cold aggregate can land within the same noisy
/// timer quantum (set `NUMA_STORE_MIN_SPEEDUP=2` there). Defaults to
/// the ≥10× the memo cache delivers on real hardware.
fn min_speedup() -> f64 {
    std::env::var("NUMA_STORE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0)
}

/// Floor on binary-record replay over JSON-era replay — the same knob
/// the codec bench enforces (`NUMA_CODEC_MIN_SPEEDUP`, default ≥2×).
fn codec_min_speedup() -> f64 {
    std::env::var("NUMA_CODEC_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

const CORPUS: usize = 32;

/// 32 distinct serialized runs (option count varies the content).
fn corpus() -> Vec<(String, String)> {
    (0..CORPUS)
        .map(|i| {
            let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
            let w = Blackscholes::new(48 + 8 * i as u64, 3, BlackscholesVariant::Baseline);
            let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
            let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
            (format!("run-{i}"), p.to_json())
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let inputs = corpus();
    // Thread scaling needs hardware parallelism: on a single-CPU host
    // the per-thread chunks of the batch just time-slice one core and
    // the 1/2/4-thread rows read flat.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("store_ingest/note: {cpus} CPU(s) visible to the benchmark");
    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let store = ProfileStore::new();
                    let report = pool.install(|| store.ingest_batch(inputs));
                    assert_eq!(report.added.len(), CORPUS);
                    store.len()
                })
            },
        );
    }
    group.finish();
}

/// Cost of durability: the same 32-profile ingest against an in-memory
/// store, a WAL-backed store (write + flush per ingest — the SIGKILL
/// durability level `--data-dir` gives by default), and a WAL-backed
/// store with per-append fsync (power-loss durability), plus the
/// recovery cost of replaying that WAL on startup.
fn bench_durable_ingest(c: &mut Criterion) {
    let inputs = corpus();
    let scratch = std::env::temp_dir().join(format!("numa-bench-wal-{}", std::process::id()));
    let mut group = c.benchmark_group("store_ingest_durable");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));

    group.bench_function("memory_only", |b| {
        b.iter(|| {
            let store = ProfileStore::new();
            let report = store.ingest_batch(&inputs);
            assert_eq!(report.added.len(), CORPUS);
            store.len()
        })
    });
    for (name, fsync) in [("wal", false), ("wal_fsync", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::fs::remove_dir_all(&scratch).ok();
                let store = ProfileStore::open_durable(
                    &scratch,
                    ProfileStore::DEFAULT_CACHE_CAPACITY,
                    PersistOptions {
                        fsync,
                        ..PersistOptions::default()
                    },
                )
                .expect("open durable");
                let report = store.ingest_batch(&inputs);
                assert_eq!(report.added.len(), CORPUS);
                store.len()
            })
        });
    }
    // Startup recovery: replay the corpus-sized WAL left by the run above.
    {
        std::fs::remove_dir_all(&scratch).ok();
        let store =
            ProfileStore::open_durable(&scratch, 4, PersistOptions::default()).expect("seed wal");
        assert_eq!(store.ingest_batch(&inputs).added.len(), CORPUS);
        drop(store);
    }
    group.bench_function("replay_wal", |b| {
        b.iter(|| {
            let store = ProfileStore::open_durable(
                &scratch,
                ProfileStore::DEFAULT_CACHE_CAPACITY,
                PersistOptions::default(),
            )
            .expect("replay");
            assert_eq!(store.persist_stats().wal_records_replayed, CORPUS as u64);
            store.len()
        })
    });
    // The same corpus as a JSON-era WAL (persist v1/v2 records), hand-
    // written because the live store now appends binary records: the
    // row the codec retired. Replay still accepts it — old data dirs
    // migrate forward at the next compaction, not at startup.
    let scratch_json =
        std::env::temp_dir().join(format!("numa-bench-wal-json-{}", std::process::id()));
    {
        std::fs::remove_dir_all(&scratch_json).ok();
        std::fs::create_dir_all(&scratch_json).expect("scratch dir");
        let mut bytes = wal::encode_file_header(wal::WAL_MAGIC).to_vec();
        for (label, json) in &inputs {
            bytes.extend_from_slice(&wal::encode_record(label, json, fnv1a(json.as_bytes())));
        }
        std::fs::write(wal::wal_path(&scratch_json), bytes).expect("seed json wal");
    }
    group.bench_function("replay_wal_json", |b| {
        b.iter(|| {
            let store = ProfileStore::open_durable(
                &scratch_json,
                ProfileStore::DEFAULT_CACHE_CAPACITY,
                PersistOptions::default(),
            )
            .expect("replay");
            assert_eq!(store.persist_stats().wal_records_replayed, CORPUS as u64);
            store.len()
        })
    });
    group.finish();

    // Headline: binary-record replay over JSON-era replay, measured
    // directly — the recovery-time win the binary WAL format buys.
    let timed = |dir: &Path| {
        let t = Instant::now();
        for _ in 0..5 {
            let store = ProfileStore::open_durable(
                dir,
                ProfileStore::DEFAULT_CACHE_CAPACITY,
                PersistOptions::default(),
            )
            .expect("replay");
            assert_eq!(store.persist_stats().wal_records_replayed, CORPUS as u64);
            black_box(store.len());
        }
        t.elapsed().as_secs_f64() / 5.0
    };
    let json = timed(&scratch_json);
    let binary = timed(&scratch);
    let speedup = json / binary.max(1e-9);
    println!(
        "store_ingest_durable/summary: WAL replay JSON {:.3} ms, binary {:.3} ms — \
         ×{:.1} speedup over {} records",
        json * 1e3,
        binary * 1e3,
        speedup,
        CORPUS
    );
    let floor = codec_min_speedup();
    assert!(
        speedup >= floor,
        "binary WAL replay must beat JSON-era replay by ≥{floor}× (got {speedup:.1}×; \
         override with NUMA_CODEC_MIN_SPEEDUP on starved CI hosts)"
    );
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::remove_dir_all(&scratch_json).ok();
}

/// Binary codec vs. canonical JSON over the same 32-run corpus: the
/// per-record serialization costs behind the durable-ingest and
/// replay rows above. The deep-dive (zero-copy column views, thread
/// batches, the enforced decode floor) lives in the `codec_roundtrip`
/// bench.
fn bench_codec(c: &mut Criterion) {
    let profiles: Vec<NumaProfile> = corpus()
        .into_iter()
        .map(|(_, json)| NumaProfile::from_json(&json).expect("corpus parses"))
        .collect();
    let jsons: Vec<String> = profiles.iter().map(|p| p.to_json()).collect();
    let bins: Vec<Vec<u8>> = profiles.iter().map(numa_codec::encode_profile).collect();

    let mut group = c.benchmark_group("store_codec");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));
    group.bench_function("encode_json", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(p.to_json());
            }
        })
    });
    group.bench_function("encode_binary", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(numa_codec::encode_profile(p));
            }
        })
    });
    group.bench_function("decode_json", |b| {
        b.iter(|| {
            for j in &jsons {
                black_box(NumaProfile::from_json(j).expect("parses"));
            }
        })
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| {
            for bytes in &bins {
                black_box(numa_codec::decode_profile(bytes).expect("decodes"));
            }
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let store = ProfileStore::new();
    let report = store.ingest_batch(&corpus());
    assert_eq!(report.added.len(), CORPUS);
    let first = store.ids()[0];

    let mut group = c.benchmark_group("store_query");
    group.sample_size(10);
    group.bench_function("aggregate_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            black_box(store.aggregate().unwrap())
        })
    });
    group.bench_function("aggregate_warm", |b| {
        store.clear_cache();
        store.aggregate().unwrap();
        b.iter(|| black_box(store.aggregate().unwrap()))
    });
    group.bench_function("report_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            black_box(store.query(Query::TextReport(first)).unwrap())
        })
    });
    group.bench_function("report_warm", |b| {
        store.clear_cache();
        store.query(Query::TextReport(first)).unwrap();
        b.iter(|| black_box(store.query(Query::TextReport(first)).unwrap()))
    });
    group.finish();

    // Headline number: warm over cold, measured directly.
    let timed = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..20 {
            f();
        }
        t.elapsed().as_secs_f64() / 20.0
    };
    store.clear_cache();
    let cold = timed(&mut || {
        store.clear_cache();
        black_box(store.aggregate().unwrap());
    });
    store.clear_cache();
    store.aggregate().unwrap();
    let warm = timed(&mut || {
        black_box(store.aggregate().unwrap());
    });
    let speedup = cold / warm.max(1e-9);
    println!(
        "store_query/summary: cold {:.3} ms, warm {:.6} ms — ×{:.0} speedup over {} profiles",
        cold * 1e3,
        warm * 1e3,
        speedup,
        CORPUS
    );
    let floor = min_speedup();
    assert!(
        speedup >= floor,
        "warm cached aggregate must beat the cold path by ≥{floor}× (got {speedup:.1}×; \
         override with NUMA_STORE_MIN_SPEEDUP on starved CI hosts)"
    );
}

/// The tentpole's measurement: 4 OS threads hammering one store with a
/// mixed ingest + pooled-query + cache-clear workload, against a
/// single-shard store (the old one-`RwLock` layout) and the default
/// 8-shard layout. On multi-CPU hardware the sharded row wins because
/// writers to different shards no longer serialize; on a 1-CPU host the
/// rows read flat (the threads time-slice one core) — the printed
/// contended-lock counts still show the single lock being fought over.
fn bench_contention(c: &mut Criterion) {
    const WORKERS: usize = 4;
    let parsed: Vec<(String, NumaProfile)> = corpus()
        .into_iter()
        .map(|(label, json)| (label, NumaProfile::from_json(&json).expect("corpus parses")))
        .collect();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("store_contention/note: {cpus} CPU(s) visible to the benchmark");

    // One full episode: every worker ingests its slice of the corpus,
    // issuing a pooled aggregate every 4th ingest and a cache clear
    // every 16th — the daemon's concurrent steady-state in miniature.
    let episode = |store: &ProfileStore| {
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let parsed = &parsed;
                s.spawn(move || {
                    for (i, (label, profile)) in parsed.iter().enumerate().skip(w).step_by(WORKERS)
                    {
                        store.ingest_profile(label, profile.clone()).unwrap();
                        if i % 16 == 0 {
                            store.clear_cache();
                        }
                        if i % 4 == 0 {
                            black_box(store.aggregate().expect("non-empty"));
                        }
                    }
                });
            }
        });
        assert_eq!(store.len(), CORPUS);
    };

    let mut group = c.benchmark_group("store_contention");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));
    for shards in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| {
                let store = ProfileStore::with_config(StoreConfig {
                    shards,
                    ..StoreConfig::default()
                });
                episode(&store);
                store.len()
            })
        });
    }
    group.finish();

    // Headline: the same episode timed directly, with the contended
    // lock-acquisition counts that explain the ratio.
    let mut timings = Vec::new();
    for shards in [1usize, 8] {
        let store = ProfileStore::with_config(StoreConfig {
            shards,
            ..StoreConfig::default()
        });
        let t = Instant::now();
        episode(&store);
        let elapsed = t.elapsed().as_secs_f64();
        let (reads, writes) = store.shard_stats().iter().fold((0u64, 0u64), |(r, w), s| {
            (r + s.read_contended, w + s.write_contended)
        });
        println!(
            "store_contention/summary: {shards} shard(s): {:.3} ms \
             ({} contended read(s), {} contended write(s))",
            elapsed * 1e3,
            reads,
            writes
        );
        timings.push(elapsed);
    }
    println!(
        "store_contention/summary: sharded over single-lock: ×{:.2} \
         ({WORKERS} workers, {cpus} CPU(s))",
        timings[0] / timings[1].max(1e-9)
    );
}

criterion_group!(
    benches,
    bench_ingest,
    bench_durable_ingest,
    bench_codec,
    bench_queries,
    bench_contention
);
criterion_main!(benches);
