//! Store throughput: batched ingestion scaling across rayon thread
//! counts, and cold vs. warm (memoized) analysis queries over a
//! 32-profile corpus.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::ProfilerConfig;
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_store::{PersistOptions, ProfileStore, Query};
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant};
use std::time::Instant;

const CORPUS: usize = 32;

/// 32 distinct serialized runs (option count varies the content).
fn corpus() -> Vec<(String, String)> {
    (0..CORPUS)
        .map(|i| {
            let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
            let w = Blackscholes::new(48 + 8 * i as u64, 3, BlackscholesVariant::Baseline);
            let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
            let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
            (format!("run-{i}"), p.to_json())
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let inputs = corpus();
    // Thread scaling needs hardware parallelism: on a single-CPU host
    // the per-thread chunks of the batch just time-slice one core and
    // the 1/2/4-thread rows read flat.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("store_ingest/note: {cpus} CPU(s) visible to the benchmark");
    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let store = ProfileStore::new();
                    let report = pool.install(|| store.ingest_batch(inputs));
                    assert_eq!(report.added.len(), CORPUS);
                    store.len()
                })
            },
        );
    }
    group.finish();
}

/// Cost of durability: the same 32-profile ingest against an in-memory
/// store, a WAL-backed store (write + flush per ingest — the SIGKILL
/// durability level `--data-dir` gives by default), and a WAL-backed
/// store with per-append fsync (power-loss durability), plus the
/// recovery cost of replaying that WAL on startup.
fn bench_durable_ingest(c: &mut Criterion) {
    let inputs = corpus();
    let scratch = std::env::temp_dir().join(format!("numa-bench-wal-{}", std::process::id()));
    let mut group = c.benchmark_group("store_ingest_durable");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));

    group.bench_function("memory_only", |b| {
        b.iter(|| {
            let store = ProfileStore::new();
            let report = store.ingest_batch(&inputs);
            assert_eq!(report.added.len(), CORPUS);
            store.len()
        })
    });
    for (name, fsync) in [("wal", false), ("wal_fsync", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::fs::remove_dir_all(&scratch).ok();
                let store = ProfileStore::open_durable(
                    &scratch,
                    ProfileStore::DEFAULT_CACHE_CAPACITY,
                    PersistOptions {
                        fsync,
                        ..PersistOptions::default()
                    },
                )
                .expect("open durable");
                let report = store.ingest_batch(&inputs);
                assert_eq!(report.added.len(), CORPUS);
                store.len()
            })
        });
    }
    // Startup recovery: replay the corpus-sized WAL left by the run above.
    {
        std::fs::remove_dir_all(&scratch).ok();
        let store =
            ProfileStore::open_durable(&scratch, 4, PersistOptions::default()).expect("seed wal");
        assert_eq!(store.ingest_batch(&inputs).added.len(), CORPUS);
        drop(store);
    }
    group.bench_function("replay_wal", |b| {
        b.iter(|| {
            let store = ProfileStore::open_durable(
                &scratch,
                ProfileStore::DEFAULT_CACHE_CAPACITY,
                PersistOptions::default(),
            )
            .expect("replay");
            assert_eq!(store.persist_stats().wal_records_replayed, CORPUS as u64);
            store.len()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&scratch).ok();
}

fn bench_queries(c: &mut Criterion) {
    let store = ProfileStore::new();
    let report = store.ingest_batch(&corpus());
    assert_eq!(report.added.len(), CORPUS);
    let first = store.ids()[0];

    let mut group = c.benchmark_group("store_query");
    group.sample_size(10);
    group.bench_function("aggregate_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            black_box(store.aggregate().unwrap())
        })
    });
    group.bench_function("aggregate_warm", |b| {
        store.clear_cache();
        store.aggregate().unwrap();
        b.iter(|| black_box(store.aggregate().unwrap()))
    });
    group.bench_function("report_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            black_box(store.query(Query::TextReport(first)).unwrap())
        })
    });
    group.bench_function("report_warm", |b| {
        store.clear_cache();
        store.query(Query::TextReport(first)).unwrap();
        b.iter(|| black_box(store.query(Query::TextReport(first)).unwrap()))
    });
    group.finish();

    // Headline number: warm over cold, measured directly.
    let timed = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..20 {
            f();
        }
        t.elapsed().as_secs_f64() / 20.0
    };
    store.clear_cache();
    let cold = timed(&mut || {
        store.clear_cache();
        black_box(store.aggregate().unwrap());
    });
    store.clear_cache();
    store.aggregate().unwrap();
    let warm = timed(&mut || {
        black_box(store.aggregate().unwrap());
    });
    println!(
        "store_query/summary: cold {:.3} ms, warm {:.6} ms — ×{:.0} speedup over {} profiles",
        cold * 1e3,
        warm * 1e3,
        cold / warm.max(1e-9),
        CORPUS
    );
}

criterion_group!(benches, bench_ingest, bench_durable_ingest, bench_queries);
criterion_main!(benches);
