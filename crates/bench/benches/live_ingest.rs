//! Streaming-ingestion throughput over loopback: `stream_profile`
//! (open → per-chunk append → seal) vs one-shot `ingest` for the same
//! corpus, then sealed-streams/sec with 1, 4 and 8 concurrent
//! streaming clients.
//!
//! After the first iteration every seal deduplicates against the
//! store, so steady-state numbers measure the full streaming path —
//! framing, chunk staging, reassembly and canonical hashing — without
//! unbounded store growth.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::{Client, Server, ServerConfig};
use numa_sim::ExecMode;
use numa_store::ProfileStore;
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const STREAMS: usize = 8;
const CHUNK_THREADS: usize = 2;

/// Distinct runs (option count varies the content hash).
fn corpus() -> Vec<NumaProfile> {
    (0..STREAMS)
        .map(|i| {
            let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
            let w = Blackscholes::new(48 + 8 * i as u64, 3, BlackscholesVariant::Baseline);
            let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
            let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
            p
        })
        .collect()
}

fn start_daemon() -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: STREAMS,
            ..ServerConfig::default()
        },
        Arc::new(ProfileStore::new()),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn bench_live(c: &mut Criterion) {
    let profiles = Arc::new(corpus());
    let jsons: Vec<String> = profiles.iter().map(|p| p.to_json()).collect();
    let (addr, server) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");

    let mut group = c.benchmark_group("live_ingest");
    group.sample_size(10);
    group.bench_function("oneshot_ingest", |b| {
        b.iter(|| {
            let (id, _) = client.ingest("bench-oneshot", &jsons[0]).expect("ingest");
            black_box(id)
        })
    });
    group.bench_function("streamed_ingest", |b| {
        b.iter(|| {
            let (id, _, chunks) = client
                .stream_profile("bench-stream", &profiles[0], CHUNK_THREADS)
                .expect("stream");
            black_box((id, chunks))
        })
    });
    group.finish();

    // Concurrent sealed-streams/sec, one client per stream. Each
    // thread streams its own distinct profile so seals never contend
    // on the same content id.
    for clients in [1usize, 4, STREAMS] {
        let rounds = 8;
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..clients {
                let profiles = Arc::clone(&profiles);
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for r in 0..rounds {
                        let label = format!("bench-c{t}-r{r}");
                        c.stream_profile(&label, &profiles[t], CHUNK_THREADS)
                            .expect("stream");
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let sealed = (clients * rounds) as f64;
        println!(
            "live_ingest/concurrency: {clients} client(s) sealed {sealed:.0} stream(s) \
             in {wall:.3} s ({:.0} seals/s)",
            sealed / wall
        );
    }
    let stats = client.server_stats().expect("server-stats");
    println!(
        "live_ingest/daemon: {} session(s) opened, {} sealed, {} chunk(s) appended, \
         {} backpressure rejection(s)",
        stats.live_sessions_opened,
        stats.live_sessions_sealed,
        stats.live_chunks_appended,
        stats.live_backpressure
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}

criterion_group!(benches, bench_live);
criterion_main!(benches);
