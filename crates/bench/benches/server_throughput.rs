//! Daemon throughput over loopback: requests/sec and tail latency for
//! cached vs. uncached aggregate queries, the serving-layer companion
//! to `store_throughput`.
//!
//! One `hpcd` server with a preloaded corpus, one blocking client per
//! measurement. `aggregate_warm` hits the store's memo cache on every
//! request (the steady state of a dashboard polling the daemon);
//! `aggregate_cold` clears the cache first, so each iteration pays the
//! full cross-run merge plus two round trips.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::ProfilerConfig;
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::{Client, Server, ServerConfig};
use numa_sim::ExecMode;
use numa_store::ProfileStore;
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const CORPUS: usize = 8;

/// Ceiling on the warm-aggregate p50 overhead of observability
/// (default config vs. span capture disabled), in percent. Loopback
/// p50s on shared CI runners jitter well past the real cost of three
/// relaxed atomics and a ring push, so the default is lenient and the
/// knob (`NUMA_OBS_MAX_OVERHEAD_PCT`) lets starved hosts loosen it
/// further.
fn max_overhead_pct() -> f64 {
    std::env::var("NUMA_OBS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0)
}

/// Distinct serialized runs (option count varies the content).
fn corpus() -> Vec<(String, String)> {
    (0..CORPUS)
        .map(|i| {
            let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
            let w = Blackscholes::new(48 + 8 * i as u64, 3, BlackscholesVariant::Baseline);
            let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
            let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
            (format!("run-{i}"), p.to_json())
        })
        .collect()
}

fn start_daemon_with(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    let store = Arc::new(ProfileStore::new());
    let report = store.ingest_batch(&corpus());
    assert_eq!(report.added.len(), CORPUS);
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn start_daemon() -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    start_daemon_with(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
}

/// Measure per-request latencies, return (req/s, p50, p95, p99) in µs.
fn measure(client: &mut Client, n: usize, mut op: impl FnMut(&mut Client)) -> (f64, u64, u64, u64) {
    let mut lat_us: Vec<u64> = Vec::with_capacity(n);
    let start = Instant::now();
    for _ in 0..n {
        let t = Instant::now();
        op(client);
        lat_us.push(t.elapsed().as_micros() as u64);
    }
    let wall = start.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    let pct = |p: f64| lat_us[(((p * n as f64).ceil() as usize).clamp(1, n)) - 1];
    (n as f64 / wall, pct(0.50), pct(0.95), pct(0.99))
}

fn bench_server(c: &mut Criterion) {
    let (addr, server) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");

    let mut group = c.benchmark_group("server_rpc");
    group.sample_size(10);
    group.bench_function("ping", |b| b.iter(|| client.ping().expect("ping")));
    group.bench_function("aggregate_warm", |b| {
        client.clear_cache().expect("clear");
        client.aggregate().expect("prime the cache");
        b.iter(|| black_box(client.aggregate().expect("aggregate")).len())
    });
    group.bench_function("aggregate_cold", |b| {
        b.iter(|| {
            client.clear_cache().expect("clear");
            black_box(client.aggregate().expect("aggregate")).len()
        })
    });
    group.finish();

    // Tail-latency summary over loopback, recorded like
    // store_throughput's cold/warm headline.
    client.clear_cache().expect("clear");
    client.aggregate().expect("prime");
    let (warm_rps, w50, w95, w99) = measure(&mut client, 400, |c| {
        c.aggregate().expect("warm aggregate");
    });
    let (cold_rps, c50, c95, c99) = measure(&mut client, 40, |c| {
        c.clear_cache().expect("clear");
        c.aggregate().expect("cold aggregate");
    });
    println!(
        "server_rpc/summary: warm aggregate {warm_rps:.0} req/s \
         (p50 {w50} µs, p95 {w95} µs, p99 {w99} µs); \
         cold aggregate {cold_rps:.0} req/s \
         (p50 {c50} µs, p95 {c95} µs, p99 {c99} µs) over {CORPUS} profiles"
    );
    let stats = client.server_stats().expect("server-stats");
    println!(
        "server_rpc/daemon: {} request(s), {} error(s), daemon-side p50 {} µs p99 {} µs",
        stats.requests_total, stats.errors_total, stats.latency.p50_us, stats.latency.p99_us
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");

    // Observability overhead A/B: the same warm-aggregate workload on
    // a daemon with span capture disabled (`trace_capacity: 0`) vs the
    // default config. Both p50s are re-measured back-to-back here so
    // the comparison shares one host state. Best-of-three per side
    // suppresses scheduler hiccups on shared runners.
    let warm_p50 = |config: ServerConfig| -> u64 {
        let (addr, server) = start_daemon_with(config);
        let mut client = Client::connect(addr).expect("connect");
        client.aggregate().expect("prime");
        let mut best = u64::MAX;
        for _ in 0..3 {
            let (_, p50, _, _) = measure(&mut client, 200, |c| {
                c.aggregate().expect("warm aggregate");
            });
            best = best.min(p50);
        }
        client.shutdown().expect("shutdown");
        server.join().expect("join").expect("run ok");
        best
    };
    let traced = warm_p50(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let untraced = warm_p50(ServerConfig {
        workers: 4,
        trace_capacity: 0,
        ..ServerConfig::default()
    });
    let overhead_pct = (traced as f64 - untraced as f64) / untraced.max(1) as f64 * 100.0;
    let ceiling = max_overhead_pct();
    println!(
        "server_rpc/obs-overhead: warm aggregate p50 {traced} µs traced \
         vs {untraced} µs untraced ({overhead_pct:+.1}%, ceiling {ceiling}%)"
    );
    assert!(
        overhead_pct <= ceiling,
        "observability must cost <{ceiling}% warm-aggregate p50 \
         (traced {traced} µs vs untraced {untraced} µs = {overhead_pct:+.1}%; \
         override with NUMA_OBS_MAX_OVERHEAD_PCT on starved CI hosts)"
    );
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
