//! Engine ablation: warm indexed queries vs. the pre-engine scan path.
//!
//! The attribution engine builds one columnar index per profile (sorted
//! per-variable metric columns, merged range cells, thread/bin rows, a
//! first-touch index, the merged CCT) and answers every analyzer query
//! from it. Before the engine, each query re-walked all threads. This
//! bench measures, on a 64-thread LULESH profile:
//!
//! * `index_build` — the one-time cost of `Engine::new` (cold).
//! * `engine/...` — warm per-query cost through the index.
//! * `scan/...` — the frozen pre-engine scan path (`numa_engine::oracle`),
//!   per query.
//!
//! A headline summary printed at the end reports the measured warm
//! speedup for the whole query mix; the index must win by ≥10×.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use numa_engine::{oracle, Engine};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig, RangeScope};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{run_profiled, Lulesh, LuleshVariant};
use std::sync::Arc;
use std::time::Instant;

/// Threads in the synthetic profile. IBM POWER7 exposes 128 CPUs, so a
/// 64-thread run binds without oversubscription.
const THREADS: usize = 64;

fn profile_64_threads() -> NumaProfile {
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
    let (_, _, profile) = run_profiled(
        &Lulesh::new(32, 2, LuleshVariant::Baseline),
        Machine::from_preset(MachinePreset::IbmPower7),
        THREADS,
        ExecMode::Sequential,
        config,
    );
    assert_eq!(profile.threads.len(), THREADS);
    profile
}

/// One representative query mix, via the engine index.
fn engine_mix(e: &Engine) -> usize {
    let z = e.var_named("z").expect("z exists");
    let region = e
        .func_named("CalcForceForNodes._omp")
        .expect("region exists");
    let m_local = e.var_metrics(z).map(|m| m.m_local).unwrap_or(0);
    let ranges = e.thread_ranges(z, RangeScope::Program, 0.1);
    let region_ranges = e.thread_ranges(z, RangeScope::Region(region), 0.1);
    let regions = e.var_regions(z);
    let touches = e.first_touch_sites(z);
    let cct = e.merged_cct();
    m_local as usize
        + ranges.len()
        + region_ranges.len()
        + regions.len()
        + touches.len()
        + cct.len()
}

/// The same mix through the frozen pre-engine scan path.
fn scan_mix(p: &NumaProfile) -> usize {
    let z = oracle::var_named(p, "z").expect("z exists");
    let region = oracle::func_named(p, "CalcForceForNodes._omp").expect("region exists");
    let m = oracle::var_metrics(p, z);
    let ranges = oracle::thread_ranges(p, z, RangeScope::Program, 0.1);
    let region_ranges = oracle::thread_ranges(p, z, RangeScope::Region(region), 0.1);
    let regions = oracle::var_regions(p, z);
    let touches = oracle::first_touch_sites(p, z);
    let cct = oracle::merged_cct(p);
    m.m_local as usize
        + ranges.len()
        + region_ranges.len()
        + regions.len()
        + touches.len()
        + cct.len()
}

fn bench_engine_queries(c: &mut Criterion) {
    let profile = Arc::new(profile_64_threads());
    let engine = Engine::new(Arc::clone(&profile));
    let z = engine.var_named("z").expect("z exists");

    let mut group = c.benchmark_group("engine_queries");
    group.sample_size(10);

    group.bench_function("index_build", |b| {
        b.iter(|| Engine::new(black_box(Arc::clone(&profile))))
    });

    group.bench_function("engine/var_metrics", |b| {
        b.iter(|| black_box(engine.var_metrics(z)))
    });
    group.bench_function("scan/var_metrics", |b| {
        b.iter(|| black_box(oracle::var_metrics(&profile, z)))
    });

    group.bench_function("engine/thread_ranges", |b| {
        b.iter(|| black_box(engine.thread_ranges(z, RangeScope::Program, 0.1)))
    });
    group.bench_function("scan/thread_ranges", |b| {
        b.iter(|| black_box(oracle::thread_ranges(&profile, z, RangeScope::Program, 0.1)))
    });

    group.bench_function("engine/var_regions", |b| {
        b.iter(|| black_box(engine.var_regions(z)))
    });
    group.bench_function("scan/var_regions", |b| {
        b.iter(|| black_box(oracle::var_regions(&profile, z)))
    });

    group.bench_function("engine/first_touch_sites", |b| {
        b.iter(|| black_box(engine.first_touch_sites(z)))
    });
    group.bench_function("scan/first_touch_sites", |b| {
        b.iter(|| black_box(oracle::first_touch_sites(&profile, z)))
    });

    group.bench_function("engine/merged_cct", |b| {
        b.iter(|| black_box(engine.merged_cct().len()))
    });
    group.bench_function("scan/merged_cct", |b| {
        b.iter(|| black_box(oracle::merged_cct(&profile).len()))
    });
    group.finish();

    // Headline: warm query-mix speedup, measured outside criterion so the
    // line prints in both bench and `--test` smoke runs.
    let reps: u32 = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(engine_mix(&engine));
    }
    let warm = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..reps {
        black_box(scan_mix(&profile));
    }
    let scan = t1.elapsed();
    let speedup = scan.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    println!(
        "headline: {THREADS}-thread profile, query mix ×{reps}: \
         engine {:?}, scan path {:?} — {speedup:.1}× faster warm",
        warm / reps,
        scan / reps
    );
    // Floor is env-overridable: a starved 1-CPU CI container schedules
    // the two timed loops against arbitrary neighbors and the true ≥10×
    // local ratio can flake below it (set NUMA_ENGINE_MIN_SPEEDUP=2
    // there).
    let floor = std::env::var("NUMA_ENGINE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0);
    assert!(
        speedup >= floor,
        "warm indexed queries must beat the scan path by ≥{floor}× (got {speedup:.1}×; \
         override with NUMA_ENGINE_MIN_SPEEDUP on starved CI hosts)"
    );
}

criterion_group!(benches, bench_engine_queries);
criterion_main!(benches);
