//! Ablation: the contention model's slope and cap.
//!
//! §2 cites up to 5× latency inflation under bandwidth contention. This
//! ablation sweeps the contention slope and re-measures the Figure 1 gap
//! (single-domain vs co-located sweep time), showing how much of the gap
//! is latency (slope 0 → distance only) and how much is queueing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_machine::{DomainId, LatencyModel, Machine, MachinePreset, PlacementPolicy};
use numa_sim::{ExecMode, Program};

fn sweep(slope: f64, colocated: bool) -> u64 {
    let topo = MachinePreset::AmdMagnyCours.topology();
    let mut lat = LatencyModel::default_for(&topo);
    lat.contention_slope = slope;
    let machine = Machine::with_latency(topo, lat);
    let threads = 48;
    let bytes: u64 = 64 << 20;
    let policy = if colocated {
        machine.blockwise_for_threads(threads)
    } else {
        PlacementPolicy::Bind(DomainId(0))
    };
    let mut p = Program::unmonitored(machine, threads, ExecMode::Sequential);
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("data", bytes, policy);
    });
    p.parallel("sweep", |tid, ctx| {
        let chunk = bytes / threads as u64;
        for off in (0..chunk).step_by(64) {
            ctx.load(base + tid as u64 * chunk + off, 8);
        }
    });
    p.finish().elapsed_cycles
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_slope_ablation");
    group.sample_size(10);
    for slope in [0.0, 0.3, 0.6, 1.2] {
        let single = sweep(slope, false);
        let coloc = sweep(slope, true);
        println!(
            "slope={slope}: single-domain/co-located = {:.2}×",
            single as f64 / coloc as f64
        );
        group.bench_with_input(
            BenchmarkId::new("single_domain", slope.to_string()),
            &slope,
            |b, &s| b.iter(|| sweep(s, false)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
