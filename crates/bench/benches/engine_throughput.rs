//! Engine throughput: simulated memory events per second, sequential vs
//! parallel execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_sim::{ExecMode, Program};

const ACCESSES_PER_THREAD: u64 = 100_000;
const THREADS: usize = 8;

fn run(mode: ExecMode) -> u64 {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let mut p = Program::unmonitored(machine, THREADS, mode);
    let bytes = THREADS as u64 * ACCESSES_PER_THREAD * 8;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("data", bytes, PlacementPolicy::interleave_all(8));
    });
    p.parallel("sweep", |tid, ctx| {
        let chunk = bytes / THREADS as u64;
        ctx.load_range(base + tid as u64 * chunk, ACCESSES_PER_THREAD, 8);
    });
    p.finish().mem_accesses
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(THREADS as u64 * ACCESSES_PER_THREAD));
    for (label, mode) in [
        ("sequential", ExecMode::Sequential),
        ("parallel", ExecMode::Parallel),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &m| {
            b.iter(|| run(m))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
