//! Binary codec vs. canonical JSON: encode, decode, and zero-copy view
//! costs over a profile corpus, with an enforced floor on the decode
//! speedup — the number that justifies the binary WAL/wire paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use numa_codec::{decode_profile, decode_threads, encode_profile, encode_threads, ProfileView};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::{NumaProfile, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{run_profiled, Blackscholes, BlackscholesVariant};
use std::time::Instant;

/// Floor on the binary-decode-over-JSON-parse ratio, overridable for
/// starved CI containers via `NUMA_CODEC_MIN_SPEEDUP`. Both sides are
/// CPU-bound over the same corpus, so the default ≥2× holds even on
/// shared runners; real hardware lands far above it.
fn min_speedup() -> f64 {
    std::env::var("NUMA_CODEC_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

const CORPUS: usize = 8;

/// Eight distinct measured runs (option count varies the content).
fn corpus() -> Vec<NumaProfile> {
    (0..CORPUS)
        .map(|i| {
            let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
            let w = Blackscholes::new(48 + 8 * i as u64, 3, BlackscholesVariant::Baseline);
            let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16));
            let (_, _, p) = run_profiled(&w, machine, 8, ExecMode::Sequential, config);
            p
        })
        .collect()
}

fn bench_roundtrip(c: &mut Criterion) {
    let profiles = corpus();
    let jsons: Vec<String> = profiles.iter().map(|p| p.to_json()).collect();
    let bins: Vec<Vec<u8>> = profiles.iter().map(encode_profile).collect();
    let batches: Vec<Vec<u8>> = profiles
        .iter()
        .map(|p| encode_threads(&p.threads))
        .collect();

    // The codec must preserve content identity: a decoded profile
    // re-serializes to the exact canonical JSON it came from.
    assert_eq!(
        decode_profile(&bins[0]).expect("decodes").to_json(),
        jsons[0]
    );

    let json_bytes: usize = jsons.iter().map(String::len).sum();
    let bin_bytes: usize = bins.iter().map(Vec::len).sum();
    println!(
        "codec_roundtrip/note: corpus {} profile(s), JSON {} KiB, binary {} KiB (×{:.2} smaller)",
        CORPUS,
        json_bytes / 1024,
        bin_bytes / 1024,
        json_bytes as f64 / bin_bytes.max(1) as f64
    );

    let mut group = c.benchmark_group("codec_roundtrip");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS as u64));
    group.bench_function("encode_json", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(p.to_json());
            }
        })
    });
    group.bench_function("encode_binary", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(encode_profile(p));
            }
        })
    });
    group.bench_function("decode_json", |b| {
        b.iter(|| {
            for j in &jsons {
                black_box(NumaProfile::from_json(j).expect("parses"));
            }
        })
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| {
            for bytes in &bins {
                black_box(decode_profile(bytes).expect("decodes"));
            }
        })
    });
    // The engine's fast path: validate framing and read the hot columns
    // without materializing thread bodies at all.
    group.bench_function("view_columns", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for bytes in &bins {
                let view = ProfileView::parse(bytes).expect("parses");
                total += view.instructions().sum::<u64>() + view.numa_events().sum::<u64>();
            }
            black_box(total)
        })
    });
    group.bench_function("decode_thread_batch", |b| {
        b.iter(|| {
            for bytes in &batches {
                black_box(decode_threads(bytes).expect("decodes"));
            }
        })
    });
    group.finish();

    // Headline: full decode and column-view speedups over JSON parse,
    // measured directly, with the floor the CI smoke run enforces.
    let timed = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..20 {
            f();
        }
        t.elapsed().as_secs_f64() / 20.0
    };
    let json = timed(&mut || {
        for j in &jsons {
            black_box(NumaProfile::from_json(j).expect("parses"));
        }
    });
    let binary = timed(&mut || {
        for bytes in &bins {
            black_box(decode_profile(bytes).expect("decodes"));
        }
    });
    let view = timed(&mut || {
        let mut total = 0u64;
        for bytes in &bins {
            let v = ProfileView::parse(bytes).expect("parses");
            total += v.instructions().sum::<u64>();
        }
        black_box(total);
    });
    let speedup = json / binary.max(1e-9);
    println!(
        "codec_roundtrip/summary: JSON parse {:.3} ms, binary decode {:.3} ms (×{:.1}), \
         column view {:.6} ms (×{:.0}) over {} profiles",
        json * 1e3,
        binary * 1e3,
        speedup,
        view * 1e3,
        json / view.max(1e-9),
        CORPUS
    );
    let floor = min_speedup();
    assert!(
        speedup >= floor,
        "binary decode must beat JSON parse by ≥{floor}× (got {speedup:.1}×; \
         override with NUMA_CODEC_MIN_SPEEDUP on starved CI hosts)"
    );
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
