//! Ablation: sampling period vs measurement fidelity and overhead.
//!
//! Sweeping the IBS period shows the paper's core trade-off: shorter
//! periods give denser address samples (better pattern fidelity, here
//! measured as how close the sampled remote fraction tracks ground truth)
//! at higher monitoring overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_analysis::Analyzer;
use numa_machine::{Machine, MachinePreset};
use numa_profiler::ProfilerConfig;
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{run_profiled, Lulesh, LuleshVariant};

fn bench_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_period_ablation");
    group.sample_size(10);
    for period in [16u64, 64, 256, 1024, 4096] {
        let mut cfg = MechanismConfig::paper(MechanismKind::Ibs);
        cfg.period = period;
        cfg.per_sample_cost = 1400; // fixed handler cost per sample
        let (stats, _, profile) = run_profiled(
            &Lulesh::new(24, 1, LuleshVariant::Baseline),
            Machine::from_preset(MachinePreset::AmdMagnyCours),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(cfg.clone()),
        );
        let a = Analyzer::new(profile);
        println!(
            "period={period}: {} samples, remote fraction {:.3}, overhead {:+.1}%",
            a.totals().samples_mem,
            a.program().remote_fraction,
            stats.overhead_fraction() * 100.0
        );
        group.bench_with_input(BenchmarkId::new("profile", period), &cfg, |b, cfg| {
            b.iter(|| {
                run_profiled(
                    &Lulesh::new(16, 1, LuleshVariant::Baseline),
                    Machine::from_preset(MachinePreset::AmdMagnyCours),
                    8,
                    ExecMode::Sequential,
                    ProfilerConfig::new(cfg.clone()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_period);
criterion_main!(benches);
