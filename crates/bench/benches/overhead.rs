//! Criterion bench: profiling overhead per sampling mechanism.
//!
//! Measures wall-clock simulation throughput of a fixed LULESH workload
//! under the null monitor and under each mechanism — the microbenchmark
//! behind Table 2 (which reports simulated-cycle overhead instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_machine::{Machine, MachinePreset};
use numa_profiler::ProfilerConfig;
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{run_profiled, run_unmonitored, Lulesh, LuleshVariant};

fn workload() -> Lulesh {
    Lulesh::new(16, 1, LuleshVariant::Baseline)
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling_overhead");
    group.sample_size(10);
    group.bench_function("unmonitored", |b| {
        b.iter(|| {
            run_unmonitored(
                &workload(),
                Machine::from_preset(MachinePreset::AmdMagnyCours),
                8,
                ExecMode::Sequential,
            )
        })
    });
    for kind in MechanismKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("mechanism", kind.name()),
            &kind,
            |b, &k| {
                b.iter(|| {
                    run_profiled(
                        &workload(),
                        Machine::from_preset(MachinePreset::AmdMagnyCours),
                        8,
                        ExecMode::Sequential,
                        ProfilerConfig::new(MechanismConfig::scaled(k, 64)),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
