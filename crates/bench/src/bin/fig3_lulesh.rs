//! Regenerates the **LULESH case study** (§8.1, Figure 3): IBS profiling
//! on the AMD machine, the data-/address-centric analysis of `z` and
//! `nodelist`, and the optimization outcomes on both AMD (IBS) and
//! POWER7 (MRK).

use numa_analysis::{analyze, classify, render_address_view, Analyzer};
use numa_bench::{
    amd, bare_workload, fmt_pct, lulesh_bench, power7, print_comparison, profile_workload,
    speedup_pct, Row,
};
use numa_profiler::{RangeScope, VarId};
use numa_sampling::MechanismKind;
use numa_workloads::LuleshVariant;

fn var(a: &Analyzer, name: &str) -> VarId {
    a.profile().var_by_name(name).unwrap().id
}

fn main() {
    println!("LULESH case study (§8.1 / Figure 3)");
    println!(
        "profiling LULESH (edge {}, 48 threads) with IBS on AMD Magny-Cours…",
        lulesh_bench(LuleshVariant::Baseline).edge
    );

    let app = lulesh_bench(LuleshVariant::Baseline);
    let (_, _, profile) = profile_workload(&app, amd(), 48, MechanismKind::Ibs);
    let a = Analyzer::new(profile);
    let program = a.program();
    let hot = a.hot_variables();

    let z = var(&a, "z");
    let zm = a.var_metrics(z);
    let z_ratio = zm.m_remote as f64 / zm.m_local.max(1) as f64;
    let z_share = hot
        .iter()
        .find(|v| v.name == "z")
        .map(|v| v.remote_share)
        .unwrap_or(0.0);
    let nodelist = var(&a, "nodelist");
    let nm = a.var_metrics(nodelist);
    let n_share = hot
        .iter()
        .find(|v| v.name == "nodelist")
        .map(|v| v.remote_share)
        .unwrap_or(0.0);

    // Heap-only lpi: remote latency over samples, across heap variables.
    let mut heap = numa_profiler::MetricSet::new(a.profile().domains);
    for v in &hot {
        if v.kind == numa_sim::VarKind::Heap {
            heap.merge(&v.metrics);
        }
    }

    print_comparison(
        "Figure 3 metrics — paper vs measured",
        &[
            Row::new(
                "program lpi_NUMA (cycles/instr)",
                "0.466",
                format!("{:.3}", program.lpi_numa.unwrap_or(0.0)),
            ),
            Row::new(
                "verdict (> 0.1 ⇒ optimize)",
                "optimize",
                if program.warrants_optimization() {
                    "optimize"
                } else {
                    "skip"
                },
            ),
            Row::new(
                "heap vars lpi (cycles/sampled access)",
                "11.7",
                format!("{:.1}", heap.lpi_numa().unwrap_or(0.0)),
            ),
            Row::new(
                "remote share of total latency",
                "74.2%",
                format!("{:.1}%", program.remote_latency_fraction * 100.0),
            ),
            Row::new(
                "z: share of remote latency",
                "11.3%",
                format!("{:.1}%", z_share * 100.0),
            ),
            Row::new("z: M_r / M_l", "~7", format!("{z_ratio:.1}")),
            Row::new(
                "z: all requests to NUMA domain 0",
                "yes",
                if zm.per_domain[0] == zm.resolved_samples() {
                    "yes"
                } else {
                    "no"
                },
            ),
            Row::new(
                "nodelist: share of remote cost",
                "20.3%",
                format!("{:.1}%", n_share * 100.0),
            ),
            Row::new(
                "nodelist: M_r / M_l",
                "~7",
                format!("{:.1}", nm.m_remote as f64 / nm.m_local.max(1) as f64),
            ),
        ],
    );

    // The address-centric view of z: the blocked staircase that guides the
    // block-wise distribution.
    println!();
    print!(
        "{}",
        render_address_view(&a, z, RangeScope::Program, "z (whole program)")
    );
    let pattern = classify(&a.thread_ranges(z, RangeScope::Program));
    println!("classified pattern for z: {}\n", pattern.name());

    // First-touch pinpointing.
    for (tid, domain, path) in a.first_touch_sites(z) {
        println!("first touch of z: thread {tid} ({domain}) at {path}");
    }

    // The report's recommendation.
    let report = analyze(&a);
    let z_advice = report.advice.iter().find(|v| v.name == "z").unwrap();
    println!("tool recommendation for z: {:?}\n", z_advice.recommendation);

    // ---- optimization outcomes --------------------------------------------
    // The paper's production runs take hundreds of timesteps, so
    // initialization is negligible; our bounded runs compare the solve
    // phase (the steady state) to avoid over-crediting the parallelized
    // init.
    println!("running optimization variants (unmonitored, solve phase)…");
    let solve = |variant, machine: numa_machine::Machine, threads| {
        let (_, out) = bare_workload(&lulesh_bench(variant), machine, threads);
        out.phase("solve").unwrap()
    };
    let amd_base = solve(LuleshVariant::Baseline, amd(), 48);
    let amd_block = solve(LuleshVariant::BlockWise, amd(), 48);
    let amd_inter = solve(LuleshVariant::Interleaved, amd(), 48);
    let p7_base = solve(LuleshVariant::Baseline, power7(), 128);
    let p7_block = solve(LuleshVariant::BlockWise, power7(), 128);
    let p7_inter = solve(LuleshVariant::Interleaved, power7(), 128);

    print_comparison(
        "LULESH optimization outcomes (solve phase) — paper vs measured",
        &[
            Row::new(
                "AMD: block-wise speedup",
                "+25%",
                fmt_pct(speedup_pct(amd_base, amd_block)),
            ),
            Row::new(
                "AMD: interleaved speedup (prior work)",
                "+13%",
                fmt_pct(speedup_pct(amd_base, amd_inter)),
            ),
            Row::new(
                "AMD: block-wise beats interleaved",
                "yes",
                if amd_block < amd_inter { "yes" } else { "no" },
            ),
            Row::new(
                "POWER7: block-wise speedup",
                "+7.5%",
                fmt_pct(speedup_pct(p7_base, p7_block)),
            ),
            Row::new(
                "POWER7: interleaved speedup",
                "-16.4%",
                fmt_pct(speedup_pct(p7_base, p7_inter)),
            ),
        ],
    );

    // POWER7 / MRK measurement view (§8.1's closing paragraph).
    println!("\nprofiling LULESH with MRK on POWER7…");
    let (_, _, p7_profile) = profile_workload(
        &lulesh_bench(LuleshVariant::Baseline),
        power7(),
        128,
        MechanismKind::Mrk,
    );
    let pa = Analyzer::new(p7_profile);
    let p7 = pa.program();
    let heap_share = p7.heap_share;
    let stack_static_share = p7.static_share + p7.stack_share;
    print_comparison(
        "POWER7 / MRK measurements — paper vs measured",
        &[
            Row::new(
                "L3 misses accessing remote memory",
                "66%",
                format!("{:.0}%", p7.remote_fraction * 100.0),
            ),
            Row::new(
                "heap arrays' share of remote accesses",
                "65%",
                format!("{:.0}%", heap_share * 100.0),
            ),
            Row::new(
                "nodelist's share of remote accesses",
                "31%",
                format!("{:.0}%", stack_static_share * 100.0),
            ),
        ],
    );
}
