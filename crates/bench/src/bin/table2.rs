//! Regenerates **Table 2**: monitoring overhead of HPCToolkit-NUMA under
//! each sampling mechanism, on LULESH, AMG2006, and Blackscholes.
//!
//! The paper reports wall-clock seconds plus overhead percentage per
//! (mechanism, benchmark) pair; here "time" is simulated cycles, and the
//! overhead percentage — `(monitored − baseline) / baseline` — is the
//! reproduced quantity. Each mechanism runs on its Table 1 machine with
//! thread count equal to that machine's hardware threads (UMT-style
//! adjustments aside), exactly as the paper adjusted inputs per machine.

use numa_bench::{fmt_pct, print_comparison, profile_workload, Row, MODE};
use numa_machine::{Machine, MachinePreset};
use numa_sampling::MechanismKind;
use numa_workloads::{
    run_unmonitored, Amg2006, AmgVariant, Blackscholes, BlackscholesVariant, Lulesh, LuleshVariant,
    Workload,
};

/// Paper overhead percentages (Table 2), per mechanism ×
/// {LULESH, AMG2006, Blackscholes}.
const PAPER: [(MechanismKind, [f64; 3]); 6] = [
    (MechanismKind::Ibs, [24.0, 37.0, 6.0]),
    (MechanismKind::Mrk, [5.0, 7.0, 4.0]),
    (MechanismKind::Pebs, [45.0, 52.0, 25.0]),
    (MechanismKind::Dear, [7.0, 12.0, 4.0]),
    (MechanismKind::PebsLl, [6.0, 8.0, 3.0]),
    (MechanismKind::SoftIbs, [200.0, 180.0, 30.0]),
];

fn preset_for(kind: MechanismKind) -> MachinePreset {
    match kind {
        MechanismKind::Ibs | MechanismKind::SoftIbs => MachinePreset::AmdMagnyCours,
        MechanismKind::Mrk => MachinePreset::IbmPower7,
        MechanismKind::Pebs => MachinePreset::IntelHarpertown,
        MechanismKind::Dear => MachinePreset::IntelItanium2,
        MechanismKind::PebsLl => MachinePreset::IntelIvyBridge,
    }
}

fn workloads(threads: usize) -> Vec<(&'static str, Box<dyn Workload>)> {
    // Inputs scaled with the thread count, as the paper scaled per machine.
    let edge = 24 + 2 * threads.min(24);
    vec![
        (
            "LULESH",
            Box::new(Lulesh::new(edge.min(40), 2, LuleshVariant::Baseline)) as Box<dyn Workload>,
        ),
        (
            "AMG2006",
            Box::new(Amg2006::new(96 * 1024, 2, AmgVariant::Baseline)),
        ),
        (
            "Blacksholes",
            Box::new(Blackscholes::new(1024, 20, BlackscholesVariant::Baseline)),
        ),
    ]
}

fn main() {
    println!("Table 2: runtime overhead of HPCToolkit-NUMA by sampling mechanism");
    println!("(percentages; paper values in parentheses)\n");
    println!(
        "{:<10} {:>22} {:>22} {:>22}",
        "Method", "LULESH", "AMG2006", "Blacksholes"
    );
    println!("{}", "-".repeat(80));

    let mut footprint_max = 0usize;
    let mut rows_for_summary = Vec::new();
    for (kind, paper) in PAPER {
        let preset = preset_for(kind);
        let threads = Machine::from_preset(preset).topology().total_cpus().min(48);
        let mut cells = Vec::new();
        for (i, (_name, w)) in workloads(threads).iter().enumerate() {
            // A fresh Machine per run: page-map state is per-execution.
            // The engine separates monitoring cycles exactly, so the
            // monitored run's own baseline is the denominator; the bare run
            // cross-checks that monitoring did not change the work done.
            let (base, _) =
                run_unmonitored(w.as_ref(), Machine::from_preset(preset), threads, MODE);
            let (monitored, _, profile) =
                profile_workload(w.as_ref(), Machine::from_preset(preset), threads, kind);
            assert_eq!(base.mem_accesses, monitored.mem_accesses);
            let pct = monitored.overhead_fraction() * 100.0;
            footprint_max = footprint_max.max(estimate_profile_bytes(&profile));
            cells.push(format!("{:>6.1}% ({:>5.1}%)", pct, paper[i]));
            rows_for_summary.push(Row::new(
                format!("{} / {}", kind.name(), _name),
                format!("+{:.0}%", paper[i]),
                format!("+{pct:.1}%"),
            ));
        }
        println!(
            "{:<10} {:>22} {:>22} {:>22}",
            kind.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    print_comparison("Table 2 — paper vs measured overhead", &rows_for_summary);
    println!(
        "\nLargest serialized profile in this run: {:.1} MB (paper bounds the runtime \
         footprint at 40 MB)",
        footprint_max as f64 / (1024.0 * 1024.0)
    );
    let _ = fmt_pct(0.0);
}

/// Approximate in-memory footprint from the serialized profile size.
fn estimate_profile_bytes(p: &numa_profiler::NumaProfile) -> usize {
    p.threads
        .iter()
        .map(|t| t.cct.len() * 128 + t.ranges.len() * 64 + t.var_metrics.len() * 160)
        .sum::<usize>()
        + p.vars.len() * 200
        + p.first_touches.len() * 128
}
