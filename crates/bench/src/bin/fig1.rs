//! Regenerates **Figure 1**: the three data distributions on a NUMA
//! machine and their latency/contention consequences.
//!
//! A synthetic kernel allocates one large array and sweeps it with every
//! thread reading its own block, under the figure's three distributions:
//!
//! 1. all data in NUMA domain 1 (here: domain 0) — locality *and*
//!    bandwidth problems;
//! 2. interleaved across domains — contention avoided, locality still poor;
//! 3. co-located (block-wise) with the computation — local, uncontended.

use numa_bench::{amd, print_comparison, speedup_pct, Row, MODE};
use numa_machine::{DomainId, PlacementPolicy};
use numa_sim::Program;

const ARRAY_BYTES: u64 = 256 << 20; // larger than the aggregate L3
const THREADS: usize = 48;

enum Dist {
    SingleDomain,
    Interleaved,
    CoLocated,
}

fn run(dist: Dist, label: &str) -> (u64, f64, String) {
    let machine = amd();
    let policy = match dist {
        Dist::SingleDomain => PlacementPolicy::Bind(DomainId(0)),
        Dist::Interleaved => PlacementPolicy::interleave_all(8),
        Dist::CoLocated => machine.blockwise_for_threads(THREADS),
    };
    let mut p = Program::unmonitored(machine.clone(), THREADS, MODE);
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("data", ARRAY_BYTES, policy);
    });
    p.parallel("sweep._omp", |tid, ctx| {
        let chunk = ARRAY_BYTES / THREADS as u64;
        let lo = base + tid as u64 * chunk;
        // One access per cache line: a pure bandwidth/latency probe.
        for off in (0..chunk).step_by(64) {
            ctx.load(lo + off, 8);
        }
    });
    let stats = p.finish();
    let hist = machine.controllers().lifetime_histogram();
    let total: u64 = hist.iter().sum::<u64>().max(1);
    let max_share = *hist.iter().max().unwrap() as f64 / total as f64;
    (
        stats.elapsed_cycles,
        max_share * hist.len() as f64,
        label.to_string(),
    )
}

fn main() {
    println!("Figure 1: three data distributions (synthetic sweep, {THREADS} threads, 8 domains)");

    let (t1, imb1, _) = run(Dist::SingleDomain, "single-domain");
    let (t2, imb2, _) = run(Dist::Interleaved, "interleaved");
    let (t3, imb3, _) = run(Dist::CoLocated, "co-located (block-wise)");

    println!(
        "\n{:<28} {:>16} {:>20} {:>18}",
        "distribution", "cycles", "vs single-domain", "DRAM imbalance ×"
    );
    println!("{}", "-".repeat(86));
    for (label, t, imb) in [
        ("1: all in one domain", t1, imb1),
        ("2: interleaved", t2, imb2),
        ("3: co-located", t3, imb3),
    ] {
        println!(
            "{:<28} {:>16} {:>19.1}% {:>18.2}",
            label,
            t,
            speedup_pct(t1, t),
            imb
        );
    }

    print_comparison(
        "Figure 1 — qualitative claims",
        &[
            Row::new(
                "single-domain suffers locality AND bandwidth",
                "slowest",
                if t1 > t2 && t1 > t3 {
                    "slowest"
                } else {
                    "NOT slowest"
                },
            ),
            Row::new(
                "interleaving avoids centralized contention",
                "middle",
                if t2 < t1 && t2 > t3 {
                    "middle"
                } else {
                    "check"
                },
            ),
            Row::new(
                "co-location is the most powerful optimization",
                "fastest",
                if t3 < t2 && t3 < t1 {
                    "fastest"
                } else {
                    "NOT fastest"
                },
            ),
        ],
    );
}
