//! Regenerates the **Blackscholes case study** (§8.3, Figures 8–9): the
//! overlapping staggered access pattern of `buffer`, the regrouping fix,
//! and the validation of the `lpi_NUMA` severity metric — the fix barely
//! improves end-to-end time even though `M_r ≫ M_l`.

use numa_analysis::{classify, render_address_view, Analyzer};
use numa_bench::{
    amd, bare_workload, blackscholes_bench, print_comparison, profile_workload, speedup_pct, Row,
};
use numa_profiler::{RangeScope, LPI_THRESHOLD};
use numa_sampling::MechanismKind;
use numa_workloads::BlackscholesVariant;

fn main() {
    println!("Blackscholes case study (§8.3 / Figures 8–9)");
    println!("profiling Blackscholes (49K options, 48 threads, 30 rounds) with IBS…");

    let app = blackscholes_bench(BlackscholesVariant::Baseline);
    let (_, _, profile) = profile_workload(&app, amd(), 48, MechanismKind::Ibs);
    let a = Analyzer::new(profile);
    let program = a.program();
    let hot = a.hot_variables();

    let buffer = a.profile().var_by_name("buffer").unwrap().id;
    let bm = a.var_metrics(buffer);
    let buffer_share = hot
        .iter()
        .find(|v| v.name == "buffer")
        .map(|v| v.remote_share)
        .unwrap_or(0.0);

    print_comparison(
        "Blackscholes metrics — paper vs measured",
        &[
            Row::new(
                "program lpi_NUMA (cycles/instr)",
                "0.035",
                format!("{:.3}", program.lpi_numa.unwrap_or(0.0)),
            ),
            Row::new(
                format!("verdict (threshold {LPI_THRESHOLD})"),
                "do NOT optimize",
                if program.warrants_optimization() {
                    "optimize"
                } else {
                    "do NOT optimize"
                },
            ),
            Row::new(
                "heap vars' share of remote latency",
                "66.8%",
                format!("{:.1}%", program.heap_share * 100.0),
            ),
            Row::new(
                "buffer: share of remote latency",
                "51.6%",
                format!("{:.1}%", buffer_share * 100.0),
            ),
            Row::new(
                "buffer allocated in one domain by master",
                "yes",
                if bm.per_domain[0] == bm.resolved_samples() {
                    "yes"
                } else {
                    "no"
                },
            ),
        ],
    );

    // Figure 8: the overlapping staggered pattern.
    println!();
    print!(
        "{}",
        render_address_view(
            &a,
            buffer,
            RangeScope::Program,
            "Fig.8: buffer (whole program)"
        )
    );
    println!(
        "pattern: {} (⇒ regroup sections into AoS + parallel first touch)\n",
        classify(&a.thread_ranges(buffer, RangeScope::Program)).name()
    );

    // Figure 9b: the regrouped layout becomes blocked, remote latency gone.
    println!("profiling the regrouped (Figure 9b) variant…");
    let opt_app = blackscholes_bench(BlackscholesVariant::Regrouped);
    let (_, _, opt_profile) = profile_workload(&opt_app, amd(), 48, MechanismKind::Ibs);
    let oa = Analyzer::new(opt_profile);
    let obuf = oa.profile().var_by_name("buffer").unwrap().id;
    print!(
        "{}",
        render_address_view(&oa, obuf, RangeScope::Program, "Fig.9b: regrouped buffer")
    );
    println!(
        "pattern: {}\n",
        classify(&oa.thread_ranges(obuf, RangeScope::Program)).name()
    );
    let orem = oa.var_metrics(obuf).latency_remote;
    let brem = bm.latency_remote;

    // End-to-end: the fix is near-neutral, validating lpi_NUMA. The
    // paper's runs price options for hundreds of rounds, so input parsing
    // is negligible; our bounded runs compare the pricing phase.
    println!("running pricing-phase comparison (unmonitored)…");
    let price = |variant| {
        let (_, out) = bare_workload(&blackscholes_bench(variant), amd(), 48);
        out.phase("price").unwrap()
    };
    let base = price(BlackscholesVariant::Baseline);
    let opt = price(BlackscholesVariant::Regrouped);

    print_comparison(
        "Blackscholes optimization outcome — paper vs measured",
        &[
            Row::new(
                "buffer remote latency after fix",
                "~eliminated",
                format!("{:.1}% of before", orem as f64 / brem.max(1) as f64 * 100.0),
            ),
            Row::new(
                "pricing-phase improvement",
                "< 0.1%",
                format!("{:+.2}%", speedup_pct(base, opt)),
            ),
        ],
    );
    println!(
        "\nThe trivial end-to-end change despite M_r/M_l = {:.1} validates the lpi_NUMA \
         severity metric (§8.3).",
        bm.m_remote as f64 / bm.m_local.max(1) as f64
    );
}
