//! Regenerates **Table 1**: configurations of the six address-sampling
//! mechanisms on their evaluation machines.

use numa_sampling::Table1Row;

fn main() {
    println!("Table 1: Configurations of different sampling mechanisms on different architectures");
    println!(
        "{:<44} {:<24} {:>8}  {:<26} {:<18}",
        "Sampling mechanism", "Processor", "Threads", "Event", "Sampling period"
    );
    println!("{}", "-".repeat(124));
    for row in Table1Row::table1() {
        println!(
            "{:<44} {:<24} {:>8}  {:<26} {:<18}",
            row.mechanism.long_name(),
            row.preset.name(),
            row.threads,
            row.event,
            row.period
        );
    }
    println!("\n(The rows are generated from the same MechanismConfig the profiler runs with;");
    println!(" periods match the paper's Table 1 verbatim.)");
}
