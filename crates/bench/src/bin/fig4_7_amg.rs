//! Regenerates the **AMG2006 case study** (§8.2, Figures 4–7): the
//! whole-program vs per-region address-centric views of `RAP_diag_data`
//! and `RAP_diag_j`, and the solver-phase improvements of the guided mix
//! vs interleave-everything.

use numa_analysis::{classify, render_address_view, Analyzer};
use numa_bench::{amd, amg_bench, bare_workload, print_comparison, profile_workload, Row};
use numa_profiler::RangeScope;
use numa_sampling::MechanismKind;
use numa_sim::FuncId;
use numa_workloads::AmgVariant;

fn region(a: &Analyzer, name: &str) -> FuncId {
    a.profile()
        .func_names
        .iter()
        .position(|n| n == name)
        .map(|i| FuncId(i as u32))
        .expect("region present")
}

fn main() {
    println!("AMG2006 case study (§8.2 / Figures 4–7)");
    println!("profiling AMG2006 (192K rows, 48 threads) with IBS on AMD Magny-Cours…");

    let app = amg_bench(AmgVariant::Baseline);
    let (_, _, profile) = profile_workload(&app, amd(), 48, MechanismKind::Ibs);
    let a = Analyzer::new(profile);
    let program = a.program();
    let hot = a.hot_variables();
    let relax = region(&a, "hypre_boomerAMGRelax._omp");

    let rap_data = a.profile().var_by_name("RAP_diag_data").unwrap().id;
    let rap_j = a.profile().var_by_name("RAP_diag_j").unwrap().id;
    let data_share = hot
        .iter()
        .find(|v| v.name == "RAP_diag_data")
        .map(|v| v.remote_share)
        .unwrap_or(0.0);
    let j_share = hot
        .iter()
        .find(|v| v.name == "RAP_diag_j")
        .map(|v| v.remote_share)
        .unwrap_or(0.0);
    let data_lpi = a.var_metrics(rap_data).lpi_numa().unwrap_or(0.0);
    let data_relax_share = a
        .var_regions(rap_data)
        .iter()
        .find(|(r, _)| *r == relax)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    let j_relax_share = a
        .var_regions(rap_j)
        .iter()
        .find(|(r, _)| *r == relax)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);

    print_comparison(
        "AMG2006 metrics — paper vs measured",
        &[
            Row::new(
                "program lpi_NUMA (cycles/instr)",
                "> 0.92",
                format!("{:.3}", program.lpi_numa.unwrap_or(0.0)),
            ),
            Row::new(
                "heap vars' share of remote latency",
                "61.8%",
                format!("{:.1}%", program.heap_share * 100.0),
            ),
            Row::new(
                "RAP_diag_data: share of remote cost",
                "18.6%",
                format!("{:.1}%", data_share * 100.0),
            ),
            Row::new(
                "RAP_diag_data: lpi (cycles/sampled access)",
                "15.9",
                format!("{data_lpi:.1}"),
            ),
            Row::new(
                "RAP_diag_data: relax-region share of its NUMA latency",
                "74.2%",
                format!("{:.1}%", data_relax_share * 100.0),
            ),
            Row::new(
                "RAP_diag_j: share of remote cost",
                "10.6%",
                format!("{:.1}%", j_share * 100.0),
            ),
            Row::new(
                "RAP_diag_j: relax-region share of its NUMA latency",
                "73.6%",
                format!("{:.1}%", j_relax_share * 100.0),
            ),
        ],
    );

    // Figures 4 & 5: whole program vs relax region for RAP_diag_data.
    println!();
    print!(
        "{}",
        render_address_view(
            &a,
            rap_data,
            RangeScope::Program,
            "Fig.4: RAP_diag_data (whole program)"
        )
    );
    println!(
        "pattern: {}\n",
        classify(&a.thread_ranges(rap_data, RangeScope::Program)).name()
    );
    print!(
        "{}",
        render_address_view(
            &a,
            rap_data,
            RangeScope::Region(relax),
            "Fig.5: RAP_diag_data (hypre_boomerAMGRelax._omp)"
        )
    );
    println!(
        "pattern: {}\n",
        classify(&a.thread_ranges(rap_data, RangeScope::Region(relax))).name()
    );

    // Figures 6 & 7: same drill-down for RAP_diag_j.
    print!(
        "{}",
        render_address_view(
            &a,
            rap_j,
            RangeScope::Program,
            "Fig.6: RAP_diag_j (whole program)"
        )
    );
    println!(
        "pattern: {}\n",
        classify(&a.thread_ranges(rap_j, RangeScope::Program)).name()
    );
    print!(
        "{}",
        render_address_view(
            &a,
            rap_j,
            RangeScope::Region(relax),
            "Fig.7: RAP_diag_j (hypre_boomerAMGRelax._omp)"
        )
    );
    println!(
        "pattern: {}\n",
        classify(&a.thread_ranges(rap_j, RangeScope::Region(relax))).name()
    );

    // Full-range vectors get interleaving (the "other two" variables).
    let u = a.profile().var_by_name("u").unwrap().id;
    let mv = region(&a, "hypre_ParCSRMatvec._omp");
    println!(
        "u in matvec region: {} (⇒ interleave)",
        classify(&a.thread_ranges(u, RangeScope::Region(mv))).name()
    );

    // ---- solver-phase outcomes --------------------------------------------
    println!("\nrunning optimization variants (unmonitored, solve phase)…");
    let solve = |variant| {
        let (_, out) = bare_workload(&amg_bench(variant), amd(), 48);
        out.phase("solve").unwrap()
    };
    let base = solve(AmgVariant::Baseline);
    let inter = solve(AmgVariant::InterleavedAll);
    let guided = solve(AmgVariant::Guided);

    print_comparison(
        "AMG2006 solver-phase time reduction — paper vs measured",
        &[
            Row::new(
                "guided mix (block-wise + interleave)",
                "-51%",
                format!(
                    "{:+.1}%",
                    (guided as f64 - base as f64) / base as f64 * 100.0
                ),
            ),
            Row::new(
                "interleave everything (prior work)",
                "-36%",
                format!(
                    "{:+.1}%",
                    (inter as f64 - base as f64) / base as f64 * 100.0
                ),
            ),
            Row::new(
                "guided beats interleave-all",
                "yes",
                if guided < inter { "yes" } else { "no" },
            ),
        ],
    );
}
