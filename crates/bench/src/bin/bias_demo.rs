//! Demonstrates the **§4.1 bias**: a thread that pulls remotely-homed data
//! into its private cache and then hammers it accumulates a huge `M_r`
//! (because `move_pages` reports the page's home domain) with almost no
//! actual NUMA latency. The `lpi_NUMA` metric (§4.2) eliminates the bias.

use numa_analysis::Analyzer;
use numa_bench::{amd, print_comparison, Row, MODE};
use numa_machine::{DomainId, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig, LPI_THRESHOLD};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::Program;
use std::sync::Arc;

fn main() {
    println!("§4.1 bias demo: cached remote data inflates M_r but not lpi_NUMA\n");

    let machine = amd();
    let config = ProfilerConfig::new(MechanismConfig::scaled(MechanismKind::Ibs, 64));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 2));
    let mut p = Program::new(machine, 2, MODE, profiler.clone());

    let mut base = 0;
    p.serial("main", |ctx| {
        // A small variable homed in domain 0 (fits in one thread's L1).
        base = ctx.alloc("hot_small", 16 * 1024, PlacementPolicy::Bind(DomainId(0)));
    });
    p.parallel("hammer._omp", |tid, ctx| {
        if tid == 1 {
            // Thread 1 (domain 1) loads the variable once (cold, remote),
            // then hammers it from its private cache a million times.
            for _ in 0..400 {
                for off in (0..16 * 1024).step_by(64) {
                    ctx.load(base + off as u64, 8);
                }
            }
        }
    });
    let profile = finish_profile(p, profiler);
    let a = Analyzer::new(profile);
    let var = a.profile().var_by_name("hot_small").unwrap().id;
    let m = a.var_metrics(var);
    let program = a.program();

    print_comparison(
        "bias demo — the naive metric vs the derived metric",
        &[
            Row::new(
                "M_r (remote-homed samples)",
                "large",
                format!("{}", m.m_remote),
            ),
            Row::new("M_l", "~0", format!("{}", m.m_local)),
            Row::new(
                "M_r / (M_l+M_r) — looks like a severe problem",
                "~100%",
                format!("{:.1}%", m.remote_fraction() * 100.0),
            ),
            Row::new(
                "lpi_NUMA — the actual NUMA cost",
                format!("≪ {LPI_THRESHOLD}"),
                format!("{:.4}", program.lpi_numa.unwrap_or(0.0)),
            ),
            Row::new(
                "verdict",
                "do NOT optimize",
                if program.warrants_optimization() {
                    "optimize (WRONG)"
                } else {
                    "do NOT optimize"
                },
            ),
        ],
    );
    println!(
        "\n\"if a thread loads a variable … into its private cache and touches it \
         frequently, though no further remote accesses occur, the M_r caused by this \
         thread is high\" (§4.1)."
    );
}
