//! Regenerates the **UMT2013 case study** (§8.4, Figure 10): MRK
//! profiling on POWER7 with 32 threads, the `STime` analysis, and the
//! parallel-first-touch fix.

use numa_analysis::{classify, render_address_view, Analyzer};
use numa_bench::{
    bare_workload, power7, print_comparison, profile_workload, speedup_pct, umt_bench, Row,
};
use numa_profiler::RangeScope;
use numa_sampling::MechanismKind;
use numa_workloads::UmtVariant;

fn main() {
    println!("UMT2013 case study (§8.4 / Figure 10)");
    println!("profiling UMT2013 (128 angles, 32 threads) with MRK on POWER7…");

    let app = umt_bench(UmtVariant::Baseline);
    let (_, _, profile) = profile_workload(&app, power7(), 32, MechanismKind::Mrk);
    let a = Analyzer::new(profile);
    let program = a.program();
    let hot = a.hot_variables();

    let stime = a.profile().var_by_name("STime").unwrap().id;
    let stime_share = hot
        .iter()
        .find(|v| v.name == "STime")
        .map(|v| v.remote_share)
        .unwrap_or(0.0);

    print_comparison(
        "UMT2013 metrics — paper vs measured",
        &[
            Row::new(
                "L3 misses leading to remote accesses",
                "86%",
                format!("{:.0}%", program.remote_fraction * 100.0),
            ),
            Row::new(
                "heap vars' share of remote accesses",
                "47%",
                format!("{:.0}%", program.heap_share * 100.0),
            ),
            Row::new(
                "STime: share of remote accesses",
                "18.2%",
                format!("{:.1}%", stime_share * 100.0),
            ),
            Row::new(
                "STime identified among the hot variables",
                "yes",
                if hot.iter().take(2).any(|v| v.name == "STime") {
                    "yes"
                } else {
                    "no"
                },
            ),
        ],
    );

    // Figure 10's pattern: staggered planes across threads (like
    // Blackscholes' buffer).
    println!();
    print!(
        "{}",
        render_address_view(
            &a,
            stime,
            RangeScope::Program,
            "Fig.10: STime (whole program)"
        )
    );
    println!(
        "pattern: {}\n",
        classify(&a.thread_ranges(stime, RangeScope::Program)).name()
    );
    for (tid, domain, path) in a.first_touch_sites(stime) {
        println!("first touch of STime: thread {tid} ({domain}) at {path}");
    }

    // The fix: parallel initialization co-locates each thread's STime
    // planes. The paper's +7% is end-to-end on a long transport run; our
    // bounded runs compare the sweep phase.
    println!("\nrunning the parallel-first-touch fix (unmonitored, sweep phase)…");
    let sweep = |variant| {
        let (_, out) = bare_workload(&umt_bench(variant), power7(), 32);
        out.phase("sweep").unwrap()
    };
    let base = sweep(UmtVariant::Baseline);
    let opt = sweep(UmtVariant::ParallelFirstTouch);

    // Remote accesses to STime before/after (profiled).
    let (_, _, opt_profile) = profile_workload(
        &umt_bench(UmtVariant::ParallelFirstTouch),
        power7(),
        32,
        MechanismKind::Mrk,
    );
    let oa = Analyzer::new(opt_profile);
    let o_stime = oa.profile().var_by_name("STime").unwrap().id;
    let remote_before = a.var_metrics(stime).m_remote;
    let remote_after = oa.var_metrics(o_stime).m_remote;

    print_comparison(
        "UMT2013 optimization outcome — paper vs measured",
        &[
            Row::new(
                "remote accesses to STime",
                "mostly eliminated",
                format!(
                    "{} → {} ({:.0}% gone)",
                    remote_before,
                    remote_after,
                    (1.0 - remote_after as f64 / remote_before.max(1) as f64) * 100.0
                ),
            ),
            Row::new(
                "sweep-phase speedup",
                "+7%",
                format!("{:+.1}%", speedup_pct(base, opt)),
            ),
        ],
    );
}
