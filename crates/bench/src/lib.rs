//! Shared plumbing for the table/figure regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the paper's value next to the measured one. Absolute numbers
//! are not expected to match (the substrate is a simulator, not the
//! authors' testbeds); the *shape* — who wins, by roughly what factor,
//! where crossovers fall — is the reproduction target. `EXPERIMENTS.md`
//! records the outcomes.

use numa_machine::{Machine, MachinePreset};
use numa_profiler::ProfilerConfig;
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::ExecMode;
use numa_workloads::{
    run_profiled, run_unmonitored, Amg2006, AmgVariant, Blackscholes, BlackscholesVariant, Lulesh,
    LuleshVariant, Umt2013, UmtVariant, Workload,
};

/// One paper-vs-measured comparison row.
pub struct Row {
    pub label: String,
    pub paper: String,
    pub measured: String,
}

impl Row {
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
        }
    }
}

/// Print a titled paper-vs-measured table.
pub fn print_comparison(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len().max(40)));
    println!("{:<52} {:>16} {:>16}", "quantity", "paper", "measured");
    println!("{}", "-".repeat(86));
    for r in rows {
        println!("{:<52} {:>16} {:>16}", r.label, r.paper, r.measured);
    }
}

/// Percent speedup of `optimized` over `baseline` (positive = faster).
pub fn speedup_pct(baseline_cycles: u64, optimized_cycles: u64) -> f64 {
    (baseline_cycles as f64 - optimized_cycles as f64) / baseline_cycles as f64 * 100.0
}

pub fn fmt_pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Period-scaling factor used by all regenerators: the paper's periods
/// target native runs several orders of magnitude longer than the
/// simulated ones.
pub const SCALE: u64 = 64;

/// Standard execution mode for regenerators. Sequential keeps every number
/// in EXPERIMENTS.md reproducible run-to-run (up to sampling jitter).
pub const MODE: ExecMode = ExecMode::Sequential;

/// The AMD Magny-Cours machine most case studies use (48 threads, 8
/// domains).
pub fn amd() -> Machine {
    Machine::from_preset(MachinePreset::AmdMagnyCours)
}

/// The POWER7 machine of the MRK case studies (128 threads, 4 domains).
pub fn power7() -> Machine {
    Machine::from_preset(MachinePreset::IbmPower7)
}

/// Benchmark-scale workloads (larger than unit-test sizes, bounded so each
/// regenerator finishes interactively).
pub fn lulesh_bench(variant: LuleshVariant) -> Lulesh {
    // Edge 88 → ~70 MB of nodal+connectivity data: the per-domain working
    // set exceeds one L3, so the solve phase stays DRAM-bound every
    // iteration, as on the paper's testbed.
    Lulesh::new(88, 3, variant)
}

pub fn amg_bench(variant: AmgVariant) -> Amg2006 {
    Amg2006::new(192 * 1024, 3, variant)
}

pub fn blackscholes_bench(variant: BlackscholesVariant) -> Blackscholes {
    Blackscholes::new(1024, 30, variant)
}

pub fn umt_bench(variant: UmtVariant) -> Umt2013 {
    Umt2013::new(16, 128, 128, 2, variant)
}

/// Run a workload profiled with `kind` at the standard scale.
pub fn profile_workload(
    w: &dyn Workload,
    machine: Machine,
    threads: usize,
    kind: MechanismKind,
) -> (
    numa_sim::ProgramStats,
    numa_workloads::WorkloadOutput,
    numa_profiler::NumaProfile,
) {
    // Finer-than-default binning (the paper's HPCTOOLKIT_NUMA_BINS knob):
    // with 48-thread blocks, 64 bins let the hot-bin filter isolate each
    // thread's block from stray neighbour-gather samples.
    let config = ProfilerConfig::new(MechanismConfig::scaled(kind, SCALE)).with_bins(64);
    run_profiled(w, machine, threads, MODE, config)
}

/// Run a workload unmonitored.
pub fn bare_workload(
    w: &dyn Workload,
    machine: Machine,
    threads: usize,
) -> (numa_sim::ProgramStats, numa_workloads::WorkloadOutput) {
    run_unmonitored(w, machine, threads, MODE)
}
