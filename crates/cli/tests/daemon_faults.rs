//! Full-disk test against the real `hpcd-sim` binary: run the daemon
//! with `--fault-spec enospc=N` so the fake disk fills after one
//! profile, and require a typed durability error for the overflowing
//! ingest while reads keep being served. A restart on the same
//! `--data-dir` without faults recovers exactly the acked profile.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::{Client, ClientError, WireError};
use numa_sim::{ExecMode, Program};
use numa_store::wal::FILE_HEADER_LEN;
use numa_store::ProfileId;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// A small profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

struct Daemon {
    child: Child,
    addr: String,
}

/// Launch `hpcd-sim` on an ephemeral port, scraping the bound address
/// from the stdout banner. `extra` appends flags (e.g. --fault-spec).
fn spawn_daemon(data_dir: &Path, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hpcd-sim"));
    cmd.args([
        "--listen",
        "127.0.0.1:0",
        "--data-dir",
        data_dir.to_str().unwrap(),
    ]);
    cmd.args(extra);
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hpcd-sim");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen banner");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    assert!(line.contains("listening on"), "unexpected banner: {line:?}");
    Daemon { child, addr }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("numa-daemon-faults-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn enospc_daemon_fails_ingest_typed_and_serves_reads_until_restart() {
    let data_dir = scratch("enospc");

    // Size the fake disk so exactly the first profile fits: WAL file
    // header, one encoded record, and a little group-commit slack.
    let first = profile(1);
    let first_json = first.to_json();
    let (ProfileId(hash), canonical) = ProfileId::of(&first);
    let record = numa_store::wal::encode_record("one", &canonical, hash);
    let budget = FILE_HEADER_LEN + record.len() as u64 + 16;

    let mut daemon = spawn_daemon(&data_dir, &["--fault-spec", &format!("enospc={budget}")]);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("connect");

        // First ingest fits and is acked durably.
        let (_, added) = c.ingest("one", &first_json).expect("ingest one");
        assert!(added);

        // Second ingest overflows the budget: typed error, no silent ack.
        match c.ingest("two", &profile(2).to_json()) {
            Err(ClientError::Server(WireError::NotDurable { detail })) => {
                assert!(
                    detail.contains("no space left"),
                    "detail should carry the storage error: {detail}"
                );
            }
            other => panic!("expected NotDurable, got {other:?}"),
        }

        // The daemon keeps serving reads on the same connection.
        assert_eq!(c.list().expect("list").len(), 1);
        let (_, label) = c.resolve("one").expect("resolve acked profile");
        assert_eq!(label, "one");
        assert!(c
            .aggregate()
            .expect("aggregate")
            .contains("cross-run aggregate: 1 run(s)"));
        let stats = c.server_stats().expect("stats");
        assert!(stats.durable);
        assert_eq!(stats.store_profiles, 1);
    }
    // Operator gives up on the sick disk: SIGKILL, restart clean.
    daemon.child.kill().expect("kill daemon");
    daemon.child.wait().expect("reap daemon");

    let mut daemon = spawn_daemon(&data_dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("reconnect");
        // Exactly the acked profile survived; the ENOSPC'd one never
        // reached the log, so it is cleanly absent.
        assert_eq!(c.list().expect("list").len(), 1);
        let (_, label) = c.resolve("one").expect("resolve after restart");
        assert_eq!(label, "one");
        assert!(matches!(
            c.resolve("two"),
            Err(ClientError::Server(WireError::UnknownProfile { .. }))
        ));
        // And the healthy daemon accepts ingests again.
        let (_, added) = c.ingest("two", &profile(2).to_json()).expect("ingest two");
        assert!(added);
        c.shutdown().expect("shutdown");
    }
    assert!(daemon.child.wait().expect("wait daemon").success());
    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn fault_spec_without_data_dir_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcd-sim"))
        .args(["--listen", "127.0.0.1:0", "--fault-spec", "enospc=1024"])
        .output()
        .expect("run hpcd-sim");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--fault-spec requires --data-dir"),
        "{stderr}"
    );
}

#[test]
fn bad_fault_spec_is_rejected_with_usage() {
    let data_dir = scratch("badspec");
    std::fs::create_dir_all(&data_dir).expect("mkdir");
    let out = Command::new(env!("CARGO_BIN_EXE_hpcd-sim"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--fault-spec",
            "frobnicate=9",
        ])
        .output()
        .expect("run hpcd-sim");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --fault-spec"), "{stderr}");
    std::fs::remove_dir_all(&data_dir).ok();
}
