//! Fault-injection test against the real `hpcd-sim` binary: ingest over
//! TCP, SIGKILL the daemon mid-flight, restart it on the same
//! `--data-dir`, and require the recovered corpus (content set hash and
//! cached-aggregate output) to match an uninterrupted in-process oracle.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::Client;
use numa_sim::{ExecMode, Program};
use numa_store::wal::{wal_path, FILE_HEADER_LEN};
use numa_store::ProfileStore;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// A small profile; `rounds` varies the content hash. The profiler's
/// sampling intervals are randomized, so each profile is serialized once
/// and the same JSON goes to both the daemon and the oracle.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

struct Daemon {
    child: Child,
    addr: String,
}

/// Launch the real `hpcd-sim` binary on an ephemeral port bound to
/// `data_dir`, scraping the bound address from its stdout banner.
fn spawn_daemon(data_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hpcd-sim"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hpcd-sim");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen banner");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    assert!(line.contains("listening on"), "unexpected banner: {line:?}");
    Daemon { child, addr }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("numa-daemon-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn sigkilled_daemon_recovers_acknowledged_ingests() {
    let data_dir = scratch("sigkill");

    // The corpus, serialized once. The oracle never crashes.
    let corpus: Vec<(String, String)> = (1..=3)
        .map(|r| (format!("run-{r}"), profile(r).to_json()))
        .collect();
    let oracle = ProfileStore::new();
    for (label, json) in &corpus {
        oracle.ingest_bytes(label, json).expect("oracle ingest");
    }
    let oracle_hash = format!("{:016x}", oracle.set_hash());
    let oracle_aggregate = oracle.aggregate().expect("oracle aggregate").text();

    // Round 1: ingest everything, then SIGKILL — no shutdown, no flush.
    let mut daemon = spawn_daemon(&data_dir);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("connect");
        for (label, json) in &corpus {
            let (_, added) = c.ingest(label, json).expect("ingest");
            assert!(added);
        }
        let stats = c.server_stats().expect("server stats");
        assert!(stats.durable);
        assert_eq!(stats.store_profiles, 3);
        assert_eq!(stats.store_set_hash, oracle_hash);
        assert_eq!(stats.wal_appends, 3);
        assert_eq!(c.aggregate().expect("aggregate"), oracle_aggregate);
    }
    daemon.child.kill().expect("SIGKILL");
    daemon.child.wait().expect("reap");

    // Simulate a torn append: garbage after the last acknowledged record.
    let garbage = [0x5Au8; 13];
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_path(&data_dir))
            .expect("open wal");
        f.write_all(&garbage).expect("append garbage");
    }

    // Round 2: a restart on the same --data-dir must recover exactly the
    // acknowledged corpus, drop the torn tail, and answer queries with
    // byte-identical text.
    let mut daemon = spawn_daemon(&data_dir);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("reconnect");
        let stats = c.server_stats().expect("server stats");
        assert!(stats.durable);
        assert_eq!(stats.store_profiles, 3);
        assert_eq!(stats.store_set_hash, oracle_hash);
        assert_eq!(stats.wal_records_replayed, 3);
        assert_eq!(stats.snapshot_records_loaded, 0);
        assert_eq!(stats.wal_truncated_bytes, garbage.len() as u64);
        assert_eq!(c.aggregate().expect("aggregate"), oracle_aggregate);
        assert_eq!(c.list().expect("list").len(), 3);
        // Clean shutdown this time: drains, flushes, compacts.
        c.shutdown().expect("shutdown");
    }
    let status = daemon.child.wait().expect("clean exit");
    assert!(status.success());

    // The clean shutdown compacted the WAL into a snapshot: round 3
    // starts from the snapshot alone, corpus still identical.
    let wal_len = std::fs::metadata(wal_path(&data_dir))
        .expect("wal meta")
        .len();
    assert_eq!(wal_len, FILE_HEADER_LEN);
    let mut daemon = spawn_daemon(&data_dir);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("reconnect");
        let stats = c.server_stats().expect("server stats");
        assert_eq!(stats.store_profiles, 3);
        assert_eq!(stats.store_set_hash, oracle_hash);
        assert_eq!(stats.snapshot_records_loaded, 3);
        assert_eq!(stats.wal_records_replayed, 0);
        assert_eq!(c.aggregate().expect("aggregate"), oracle_aggregate);
        c.shutdown().expect("shutdown");
    }
    daemon.child.wait().expect("clean exit");

    std::fs::remove_dir_all(&data_dir).ok();
}

/// Kill-during-group-commit: several clients ingest concurrently (their
/// appends share group commits on the persister thread), the daemon is
/// SIGKILLed the moment enough acks are in, and a restart must hold
/// every profile whose ingest was acknowledged — the ack ⇒
/// flushed-to-the-OS contract, under the batched commit path.
#[test]
fn sigkill_during_group_commit_keeps_every_acknowledged_ingest() {
    let data_dir = scratch("group-commit");
    const CLIENTS: usize = 4;

    let corpus: Vec<(String, String)> = (1..=CLIENTS)
        .map(|r| (format!("run-{r}"), profile(r).to_json()))
        .collect();

    let daemon = spawn_daemon(&data_dir);
    // Each client ingests one profile on its own connection, all in
    // flight at once so the persister sees a multi-record batch.
    let acked: Vec<(String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = corpus
            .iter()
            .map(|(label, json)| {
                let addr = &daemon.addr;
                s.spawn(move || {
                    let mut c = Client::connect(addr as &str).expect("connect");
                    let (id, added) = c.ingest(label, json).expect("ingest");
                    assert!(added);
                    (id, label.clone())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    assert_eq!(acked.len(), CLIENTS);

    // SIGKILL immediately — no shutdown, no flush, no drain.
    let mut child = daemon.child;
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Restart: every acknowledged id must resolve.
    let mut daemon = spawn_daemon(&data_dir);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("reconnect");
        let stats = c.server_stats().expect("server stats");
        assert_eq!(stats.store_profiles, CLIENTS, "{stats:?}");
        assert_eq!(
            stats.snapshot_records_loaded + stats.wal_records_replayed,
            CLIENTS as u64,
            "{stats:?}"
        );
        for (id, label) in &acked {
            let (rid, rlabel) = c.resolve(id).expect("acked ingest survives the kill");
            assert_eq!(&rid, id);
            assert_eq!(&rlabel, label);
        }
        c.shutdown().expect("shutdown");
    }
    daemon.child.wait().expect("clean exit");

    std::fs::remove_dir_all(&data_dir).ok();
}
