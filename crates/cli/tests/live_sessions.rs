//! Streaming robustness against the real binaries: a SIGKILLed
//! streaming *client* must be lease-reaped with no partial state left
//! behind, and a SIGKILLed *daemon* must recover sealed sessions from
//! the WAL while dropping unsealed ones.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::Client;
use numa_sim::{ExecMode, Program};
use numa_store::ProfileStore;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small profile; `rounds` varies the content hash. Sampling is
/// interval-randomized, so tests serialize once and reuse the JSON.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

struct Daemon {
    child: Child,
    addr: String,
}

/// Launch the real `hpcd-sim` binary on an ephemeral port with extra
/// flags, scraping the bound address from its stdout banner.
fn spawn_daemon(extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hpcd-sim"))
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hpcd-sim");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen banner");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    assert!(line.contains("listening on"), "unexpected banner: {line:?}");
    Daemon { child, addr }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("numa-live-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

#[test]
fn sigkilled_streaming_client_is_reaped_without_partial_state() {
    let dir = scratch("client-kill");
    let json = profile(1).to_json();
    let profile_path = dir.join("run.json");
    std::fs::write(&profile_path, &json).expect("write profile");

    // Short lease so the janitor notices the dead client quickly.
    let daemon = spawn_daemon(&["--session-lease-ms", "300"]);

    // The real hpcd-client streams with a pause between chunks —
    // 1 thread per chunk = 5 chunks, 200 ms apart — giving a wide
    // window in which the process dies mid-session.
    let mut streamer = Command::new(env!("CARGO_BIN_EXE_hpcd-client"))
        .args([
            "--addr",
            &daemon.addr,
            "--cmd",
            "stream",
            "--file",
            profile_path.to_str().unwrap(),
            "--label",
            "doomed",
            "--chunk-threads",
            "1",
            "--chunk-delay-ms",
            "200",
            "--connect-retry-ms",
            "5000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn streaming client");

    // Let it open the session and deliver a chunk or two, then SIGKILL:
    // no abort, no seal, the TCP connection just dies.
    std::thread::sleep(Duration::from_millis(300));
    streamer.kill().expect("SIGKILL streaming client");
    streamer.wait().expect("reap client");

    let mut c = Client::connect_retry(&daemon.addr as &str, Duration::from_secs(5))
        .expect("connect observer");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.server_stats().expect("server stats");
        if stats.live_leases_reaped >= 1 {
            assert_eq!(stats.live_sessions, 0, "{stats:?}");
            assert_eq!(stats.live_open_bytes, 0, "{stats:?}");
            assert!(stats.render().contains("1 lease(s) reaped"));
            break;
        }
        assert!(Instant::now() < deadline, "lease never reaped: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Nothing was half-ingested, and the same profile still streams
    // cleanly end to end afterwards.
    assert!(c.list().expect("list").is_empty());
    let parsed = NumaProfile::from_json(&json).unwrap();
    let (_, added, _) = c
        .stream_profile("recovered", &parsed, 2)
        .expect("stream after reap");
    assert!(added);
    assert_eq!(c.list().expect("list").len(), 1);

    c.shutdown().expect("shutdown");
    let mut child = daemon.child;
    child.wait().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_daemon_recovers_sealed_streams_and_drops_unsealed() {
    let dir = scratch("daemon-kill");
    let data_dir = dir.join("db");
    let sealed_json = profile(1).to_json();
    let unsealed_json = profile(2).to_json();

    // Oracle: only the sealed profile, ingested one-shot.
    let oracle = ProfileStore::new();
    oracle.ingest_bytes("sealed", &sealed_json).unwrap();
    let oracle_hash = format!("{:016x}", oracle.set_hash());
    let oracle_aggregate = oracle.aggregate().unwrap().text();

    let daemon = spawn_daemon(&["--data-dir", data_dir.to_str().unwrap()]);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("connect");
        // Session A: streamed to completion — sealed and acknowledged.
        let sealed = NumaProfile::from_json(&sealed_json).unwrap();
        let (_, added, _) = c.stream_profile("sealed", &sealed, 2).expect("stream");
        assert!(added);
        // Session B: chunks staged (and acknowledged — each append is
        // WAL-durable) but never sealed.
        let unsealed = NumaProfile::from_json(&unsealed_json).unwrap();
        let chunks = numa_store::stream::split_profile(&unsealed, 2);
        let info = c.open_session("unsealed").expect("open");
        for (seq, chunk) in chunks.iter().enumerate() {
            c.append_chunk(info.session, seq as u64, &chunk.to_json())
                .expect("append");
        }
    }

    // SIGKILL mid-stream: no seal for session B, no flush, no drain.
    let mut child = daemon.child;
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");

    // Restart on the same --data-dir: the sealed session's profile is
    // reassembled from its WAL chunk records; the unsealed one is
    // dropped entirely.
    let daemon = spawn_daemon(&["--data-dir", data_dir.to_str().unwrap()]);
    {
        let mut c = Client::connect(&daemon.addr as &str).expect("reconnect");
        let stats = c.server_stats().expect("server stats");
        assert!(stats.durable);
        assert_eq!(stats.store_profiles, 1, "{stats:?}");
        assert_eq!(stats.store_set_hash, oracle_hash);
        assert_eq!(stats.sessions_recovered, 1, "{stats:?}");
        assert_eq!(stats.sessions_dropped, 1, "{stats:?}");
        assert!(stats.session_chunks_replayed >= 3, "{stats:?}");
        assert!(stats.render().contains("sessions: 1 recovered, 1 dropped"));
        assert_eq!(c.aggregate().expect("aggregate"), oracle_aggregate);

        // The streamed profile is byte-identical to one-shot ingest:
        // re-ingesting the same JSON deduplicates...
        let (_, added) = c.ingest("sealed-again", &sealed_json).expect("re-ingest");
        assert!(!added, "recovered streamed profile must dedup");
        // ...while the unsealed one really is gone: ingesting it adds.
        let (_, added) = c.ingest("unsealed", &unsealed_json).expect("ingest");
        assert!(added, "unsealed session must have been dropped");

        c.shutdown().expect("shutdown");
    }
    let mut child = daemon.child;
    child.wait().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
