//! Shared plumbing for the command-line tools.
//!
//! The three binaries mirror HPCToolkit's workflow on the simulated
//! machine:
//!
//! * `hpcrun-sim` — run one of the bundled workloads under a chosen
//!   sampling mechanism and write a profile (JSON);
//! * `hpcprof-sim` — merge and analyze a profile, print the report;
//! * `hpcviewer-sim` — render the address-centric view and metric pane
//!   for a chosen variable (whole program or one parallel region).
//!
//! Argument parsing is deliberately dependency-free: `--key value` pairs
//! only.

use numa_machine::{Machine, MachinePreset};
use numa_sampling::MechanismKind;
use numa_workloads::{
    Amg2006, AmgVariant, Blackscholes, BlackscholesVariant, Lulesh, LuleshVariant, Umt2013,
    UmtVariant, Workload,
};
use std::collections::BTreeMap;

/// Minimal `--key value` argument map.
pub struct Args {
    program: String,
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()`. Flags must come in `--key value` pairs.
    pub fn parse() -> Result<Args, String> {
        Self::from_args(std::env::args())
    }

    /// Parse an explicit argument sequence (first item = program name).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut it = args.into_iter();
        let program = it.next().unwrap_or_default();
        let mut map = BTreeMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {key:?}"))?
                .to_string();
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args { program, map })
    }

    pub fn program(&self) -> &str {
        &self.program
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Keys the caller recognises; anything else is an error (typo guard).
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.map.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag --{k}; known flags: {}",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }
}

/// Parse a machine preset name.
pub fn parse_machine(name: &str) -> Result<Machine, String> {
    let preset = match name.to_ascii_lowercase().as_str() {
        "amd" | "magny-cours" | "magnycours" => MachinePreset::AmdMagnyCours,
        "power7" | "ibm" => MachinePreset::IbmPower7,
        "harpertown" => MachinePreset::IntelHarpertown,
        "itanium" | "itanium2" => MachinePreset::IntelItanium2,
        "ivybridge" | "ivy-bridge" => MachinePreset::IntelIvyBridge,
        other => {
            return Err(format!(
                "unknown machine {other:?} (amd, power7, harpertown, itanium2, ivybridge)"
            ))
        }
    };
    Ok(Machine::from_preset(preset))
}

/// Parse a mechanism name.
pub fn parse_mechanism(name: &str) -> Result<MechanismKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "ibs" => MechanismKind::Ibs,
        "mrk" => MechanismKind::Mrk,
        "pebs" => MechanismKind::Pebs,
        "dear" => MechanismKind::Dear,
        "pebs-ll" | "pebsll" => MechanismKind::PebsLl,
        "soft-ibs" | "softibs" => MechanismKind::SoftIbs,
        other => {
            return Err(format!(
                "unknown mechanism {other:?} (ibs, mrk, pebs, dear, pebs-ll, soft-ibs)"
            ))
        }
    })
}

/// Build one of the bundled workloads from `--workload`, `--variant`, and
/// `--size` (a small/medium/large knob).
pub fn parse_workload(name: &str, variant: &str, size: &str) -> Result<Box<dyn Workload>, String> {
    let sz = match size {
        "small" => 0,
        "medium" => 1,
        "large" => 2,
        other => return Err(format!("unknown size {other:?} (small, medium, large)")),
    };
    let w: Box<dyn Workload> = match name.to_ascii_lowercase().as_str() {
        "lulesh" => {
            let v = match variant {
                "baseline" => LuleshVariant::Baseline,
                "interleaved" => LuleshVariant::Interleaved,
                "blockwise" | "block-wise" => LuleshVariant::BlockWise,
                other => return Err(format!("unknown LULESH variant {other:?}")),
            };
            let edge = [20, 40, 88][sz];
            Box::new(Lulesh::new(edge, 3, v))
        }
        "amg2006" | "amg" => {
            let v = match variant {
                "baseline" => AmgVariant::Baseline,
                "interleaved" => AmgVariant::InterleavedAll,
                "guided" => AmgVariant::Guided,
                other => return Err(format!("unknown AMG variant {other:?}")),
            };
            let rows = [32 * 1024, 96 * 1024, 192 * 1024][sz];
            Box::new(Amg2006::new(rows, 2, v))
        }
        "blackscholes" | "bs" => {
            let v = match variant {
                "baseline" => BlackscholesVariant::Baseline,
                "regrouped" => BlackscholesVariant::Regrouped,
                other => return Err(format!("unknown Blackscholes variant {other:?}")),
            };
            let opts = [256, 1024, 4096][sz];
            Box::new(Blackscholes::new(opts, 20, v))
        }
        "umt2013" | "umt" => {
            let v = match variant {
                "baseline" => UmtVariant::Baseline,
                "parallel-init" | "parallelfirsttouch" => UmtVariant::ParallelFirstTouch,
                other => return Err(format!("unknown UMT variant {other:?}")),
            };
            let angles = [64, 128, 256][sz];
            Box::new(Umt2013::new(16, 64, angles, 2, v))
        }
        other => {
            return Err(format!(
                "unknown workload {other:?} (lulesh, amg2006, blackscholes, umt2013)"
            ))
        }
    };
    Ok(w)
}

/// Exit with a usage message.
pub fn die(usage: &str, err: &str) -> ! {
    eprintln!("error: {err}\n\n{usage}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(s: &str) -> Result<Args, String> {
        Args::from_args(
            std::iter::once("prog".to_string()).chain(s.split_whitespace().map(String::from)),
        )
    }

    #[test]
    fn args_parse_key_value_pairs() {
        let a = args_of("--workload lulesh --threads 48").unwrap();
        assert_eq!(a.get("workload"), Some("lulesh"));
        assert_eq!(a.get_parsed("threads", 0usize).unwrap(), 48);
        assert_eq!(a.get_or("machine", "amd"), "amd");
        assert_eq!(a.program(), "prog");
    }

    #[test]
    fn args_reject_malformed_input() {
        assert!(args_of("workload lulesh").is_err(), "missing --");
        assert!(args_of("--workload").is_err(), "missing value");
        assert!(args_of("--a 1 --a 2").is_err(), "duplicate flag");
        let a = args_of("--threads banana").unwrap();
        assert!(a.get_parsed("threads", 0usize).is_err());
    }

    #[test]
    fn unknown_flags_are_flagged() {
        let a = args_of("--workload lulesh --bogus 1").unwrap();
        assert!(a.check_known(&["workload"]).is_err());
        assert!(a.check_known(&["workload", "bogus"]).is_ok());
    }

    #[test]
    fn machine_names_parse() {
        assert_eq!(parse_machine("amd").unwrap().topology().domains(), 8);
        assert_eq!(parse_machine("power7").unwrap().topology().domains(), 4);
        assert!(parse_machine("vax").is_err());
    }

    #[test]
    fn mechanism_names_parse() {
        assert_eq!(parse_mechanism("ibs").unwrap(), MechanismKind::Ibs);
        assert_eq!(parse_mechanism("PEBS-LL").unwrap(), MechanismKind::PebsLl);
        assert!(parse_mechanism("magic").is_err());
    }

    #[test]
    fn workloads_parse() {
        assert!(parse_workload("lulesh", "baseline", "small").is_ok());
        assert!(parse_workload("amg", "guided", "medium").is_ok());
        assert!(parse_workload("bs", "regrouped", "small").is_ok());
        assert!(parse_workload("umt", "parallel-init", "small").is_ok());
        assert!(parse_workload("doom", "baseline", "small").is_err());
        assert!(parse_workload("lulesh", "baseline", "huge").is_err());
    }
}
