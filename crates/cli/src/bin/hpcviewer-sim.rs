//! `hpcviewer-sim`: render the address-centric view and metric pane for
//! one variable of a profile — the simulated analogue of the paper's
//! extended `hpcviewer` (§7.2).
//!
//! ```text
//! hpcviewer-sim --in lulesh.profile.json --var z
//! hpcviewer-sim --in amg.profile.json --var RAP_diag_data \
//!               --region hypre_boomerAMGRelax._omp
//! hpcviewer-sim --in lulesh.profile.json --list vars
//! ```

use numa_analysis::{
    classify, export_address_view, render_address_view, render_cct, render_metric_table,
    render_trace_timelines, Analyzer,
};
use numa_profiler::{NumaProfile, RangeScope};
use numa_tools::{die, Args};

const USAGE: &str = "\
usage: hpcviewer-sim --in PROFILE.json --var NAME [--region PARALLEL_REGION]
                     [--format text|json]
       hpcviewer-sim --in PROFILE.json --list vars|regions
       hpcviewer-sim --in PROFILE.json --pane cct       (code-centric tree)
       hpcviewer-sim --in PROFILE.json --pane timeline  (trace view)";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&["in", "var", "region", "format", "list", "pane"])
        .unwrap_or_else(|e| die(USAGE, &e));
    let path = args
        .get("in")
        .unwrap_or_else(|| die(USAGE, "--in is required"));
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(USAGE, &e.to_string()));
    let profile =
        NumaProfile::from_json(&json).unwrap_or_else(|e| die(USAGE, &format!("bad profile: {e}")));
    let analyzer = Analyzer::new(profile);

    if let Some(pane) = args.get("pane") {
        match pane {
            "cct" => print!("{}", render_cct(&analyzer, 0.01)),
            "timeline" => print!("{}", render_trace_timelines(&analyzer, 64)),
            other => die(USAGE, &format!("unknown pane {other:?} (cct, timeline)")),
        }
        return;
    }

    if let Some(what) = args.get("list") {
        match what {
            "vars" => {
                for v in analyzer.hot_variables() {
                    println!(
                        "{:<24} [{:>6}] {:>12} bytes  {:>5.1}% of remote cost",
                        v.name,
                        v.kind.name(),
                        v.bytes,
                        v.remote_share * 100.0
                    );
                }
            }
            "regions" => {
                // Names that appear as region scopes in any range — the
                // engine's index already knows; no thread scan.
                for f in analyzer.engine().sampled_regions() {
                    if let Some(name) = analyzer.profile().func_names.get(f.0 as usize) {
                        println!("{name}");
                    }
                }
            }
            other => die(USAGE, &format!("unknown --list {other:?}")),
        }
        return;
    }

    let var_name = args
        .get("var")
        .unwrap_or_else(|| die(USAGE, "--var is required"));
    let var = analyzer.var_named(var_name).unwrap_or_else(|| {
        die(
            USAGE,
            &format!("no variable named {var_name:?} (try --list vars)"),
        )
    });
    let scope = match args.get("region") {
        None => RangeScope::Program,
        Some(region) => {
            let f = analyzer.region_named(region).unwrap_or_else(|| {
                die(
                    USAGE,
                    &format!("no region named {region:?} (try --list regions)"),
                )
            });
            RangeScope::Region(f)
        }
    };

    match args.get_or("format", "text") {
        "json" => println!("{}", export_address_view(&analyzer, var, scope)),
        "text" => {
            let title = match scope {
                RangeScope::Program => format!("{var_name} (whole program)"),
                RangeScope::Region(f) => {
                    format!("{var_name} (region {})", analyzer.profile().func_name(f))
                }
            };
            print!("{}", render_address_view(&analyzer, var, scope, &title));
            let pattern = classify(&analyzer.thread_ranges(var, scope));
            println!("pattern: {}\n", pattern.name());
            let metrics = analyzer.var_metrics(var);
            print!(
                "{}",
                render_metric_table(
                    &[(var_name.to_string(), metrics)],
                    analyzer.profile().domains
                )
            );
            for (tid, domain, path) in analyzer.first_touch_sites(var) {
                println!("first touch: thread {tid} ({domain}) at {path}");
            }
        }
        other => die(USAGE, &format!("unknown format {other:?}")),
    }
}
