//! `hpcdiff-sim`: compare two profiles of the same workload (e.g. before
//! and after a NUMA fix) and report what changed.
//!
//! ```text
//! hpcrun-sim --workload lulesh --variant baseline  --out before.json
//! hpcrun-sim --workload lulesh --variant blockwise --out after.json
//! hpcdiff-sim --before before.json --after after.json
//! ```

use numa_analysis::{diff, Analyzer};
use numa_profiler::NumaProfile;
use numa_tools::{die, Args};

const USAGE: &str = "\
usage: hpcdiff-sim --before PROFILE.json --after PROFILE.json [--format text|json]";

fn load(path: &str) -> Analyzer {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(USAGE, &e.to_string()));
    let profile =
        NumaProfile::from_json(&json).unwrap_or_else(|e| die(USAGE, &format!("bad profile: {e}")));
    Analyzer::new(profile)
}

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&["before", "after", "format"])
        .unwrap_or_else(|e| die(USAGE, &e));
    let before = load(
        args.get("before")
            .unwrap_or_else(|| die(USAGE, "--before is required")),
    );
    let after = load(
        args.get("after")
            .unwrap_or_else(|| die(USAGE, "--after is required")),
    );
    let report = diff(&before, &after);
    match args.get_or("format", "text") {
        "text" => print!("{}", report.render()),
        "json" => println!("{}", report.to_json()),
        other => die(USAGE, &format!("unknown format {other:?}")),
    }
}
