//! `hpcstore-sim`: batch front end over the multi-profile analysis
//! store. Ingests a directory of profiles written by `hpcrun-sim`,
//! dedups them by content, and answers analysis queries through the
//! store's memo cache.
//!
//! ```text
//! hpcstore-sim --dir runs/ --cmd aggregate
//! hpcstore-sim --dir runs/ --cmd top --n 5
//! hpcstore-sim --dir runs/ --cmd report --profile lulesh.profile.json
//! hpcstore-sim --dir runs/ --cmd view --profile 1a2b --var m_matrix
//! hpcstore-sim --dir runs/ --cmd diff --before baseline.json --after tuned.json
//! hpcstore-sim --dir runs/ --cmd stats
//! ```

use numa_store::{PersistOptions, ProfileStore, Query, StoredProfile};
use numa_tools::{die, Args};
use std::path::Path;
use std::sync::Arc;

const USAGE: &str = "\
usage: hpcstore-sim [--dir PROFILES_DIR] [--data-dir DIR] --cmd stats|list|aggregate|top|report|view|diff
                    (at least one of --dir / --data-dir is required)
                    [--data-dir DIR]       (durable store: replay WAL + snapshot, persist new ingests)
                    [--n N]                (top: how many variables; default 5)
                    [--profile REF]        (report/view: id prefix or file name)
                    [--var NAME]           (view: variable source name)
                    [--before REF --after REF]  (diff)
                    [--format text|json]   (report; default text)
                    [--out FILE]";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "dir", "data-dir", "cmd", "n", "profile", "var", "before", "after", "format", "out",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let store = match args.get("data-dir") {
        None => ProfileStore::new(),
        Some(data_dir) => {
            let store = ProfileStore::open_durable(
                Path::new(data_dir),
                ProfileStore::DEFAULT_CACHE_CAPACITY,
                PersistOptions::default(),
            )
            .unwrap_or_else(|e| die(USAGE, &format!("cannot open data dir {data_dir}: {e}")));
            let p = store.persist_stats();
            eprintln!(
                "hpcstore-sim: recovered {} profile(s) from {data_dir} \
                 ({} snapshot + {} wal record(s), {} truncated byte(s))",
                store.len(),
                p.snapshot_records_loaded,
                p.wal_records_replayed,
                p.wal_truncated_bytes + p.snapshot_truncated_bytes,
            );
            store
        }
    };
    if args.get("dir").is_none() && args.get("data-dir").is_none() {
        die(USAGE, "at least one of --dir / --data-dir is required");
    }
    if let Some(dir) = args.get("dir") {
        let report = store
            .ingest_dir(Path::new(dir))
            .unwrap_or_else(|e| die(USAGE, &format!("cannot read {dir}: {e}")));
        for (label, err) in &report.rejected {
            eprintln!("hpcstore-sim: skipping {label}: {err}");
        }
        for (label, err) in &report.io_errors {
            eprintln!("hpcstore-sim: cannot read {label}: {err}");
        }
        for (label, err) in &report.persist_failures {
            eprintln!("hpcstore-sim: not durable, rolled back {label}: {err}");
        }
        eprintln!(
            "hpcstore-sim: {} profile(s) ingested from {dir} ({} deduplicated, {} rejected, {} unreadable, {} not durable)",
            report.added.len(),
            report.deduplicated,
            report.rejected.len(),
            report.io_errors.len(),
            report.persist_failures.len()
        );
    }

    let resolve = |key: &str| -> Arc<StoredProfile> {
        let needle = args
            .get(key)
            .unwrap_or_else(|| die(USAGE, &format!("--{key} is required for this command")));
        store
            .resolve(needle)
            .unwrap_or_else(|e| die(USAGE, &format!("--{key}: {e}")))
    };

    let output = match args.get_or("cmd", "stats") {
        "stats" => store.stats().render(),
        "list" => {
            // entries() takes a consistent per-shard snapshot of cheap
            // (id, label, counts) rows — one pass, no re-lookup races,
            // no profile contents cloned.
            let mut out = String::new();
            for e in store.entries() {
                out.push_str(&format!(
                    "{}  {:<32} {} thread(s), {} KiB\n",
                    e.id,
                    e.label,
                    e.threads,
                    e.json_bytes / 1024
                ));
            }
            out
        }
        "aggregate" => run_query(&store, Query::Aggregate),
        "top" => {
            let n: usize = args.get_parsed("n", 5).unwrap_or_else(|e| die(USAGE, &e));
            run_query(&store, Query::TopVariables(n))
        }
        "report" => {
            let sp = resolve("profile");
            match args.get_or("format", "text") {
                "text" => run_query(&store, Query::TextReport(sp.id)),
                "json" => run_query(&store, Query::ReportJson(sp.id)),
                other => die(USAGE, &format!("unknown format {other:?}")),
            }
        }
        "view" => {
            let sp = resolve("profile");
            let var = args
                .get("var")
                .unwrap_or_else(|| die(USAGE, "--var is required for view"));
            run_query(
                &store,
                Query::AddressView {
                    profile: sp.id,
                    var: var.to_string(),
                },
            )
        }
        "diff" => {
            let before = resolve("before");
            let after = resolve("after");
            run_query(
                &store,
                Query::Diff {
                    before: before.id,
                    after: after.id,
                },
            )
        }
        other => die(USAGE, &format!("unknown command {other:?}")),
    };

    match args.get("out") {
        None => print!("{output}"),
        Some(path) => {
            std::fs::write(path, output).unwrap_or_else(|e| die(USAGE, &e.to_string()));
            eprintln!("hpcstore-sim: wrote {path}");
        }
    }

    // Durable runs leave a compacted snapshot behind so the next open is
    // a pure snapshot load with an empty WAL.
    if store.is_durable() {
        store
            .flush()
            .unwrap_or_else(|e| die(USAGE, &format!("final flush failed: {e}")));
    }
}

fn run_query(store: &ProfileStore, q: Query) -> String {
    store
        .query(q)
        .unwrap_or_else(|e| die(USAGE, &e.to_string()))
        .text()
}
