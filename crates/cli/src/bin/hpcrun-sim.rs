//! `hpcrun-sim`: run a bundled workload under the NUMA profiler and write
//! the measurement profile as JSON — the simulated analogue of
//! HPCToolkit's `hpcrun`.
//!
//! ```text
//! hpcrun-sim --workload lulesh --variant baseline --machine amd \
//!            --mechanism ibs --threads 48 --out lulesh.profile.json
//! ```

use numa_profiler::ProfilerConfig;
use numa_sampling::MechanismConfig;
use numa_sim::ExecMode;
use numa_tools::{die, parse_machine, parse_mechanism, parse_workload, Args};
use numa_workloads::run_profiled;

const USAGE: &str = "\
usage: hpcrun-sim [--workload lulesh|amg2006|blackscholes|umt2013]
                  [--variant baseline|...]   (per-workload; default baseline)
                  [--machine amd|power7|harpertown|itanium2|ivybridge]
                  [--mechanism ibs|mrk|pebs|dear|pebs-ll|soft-ibs]
                  [--threads N]              (default: all hardware threads)
                  [--size small|medium|large] (default medium)
                  [--scale N]                (period scale factor, default 64)
                  [--bins N]                 (address-centric bins, default 5)
                  [--mode seq|par]           (default seq)
                  [--trace CYCLES]           (record a time series, 1 point/CYCLES)
                  [--out FILE]               (default profile.json)";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "workload",
        "variant",
        "machine",
        "mechanism",
        "threads",
        "size",
        "scale",
        "bins",
        "mode",
        "trace",
        "out",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let machine = parse_machine(args.get_or("machine", "amd")).unwrap_or_else(|e| die(USAGE, &e));
    let mechanism =
        parse_mechanism(args.get_or("mechanism", "ibs")).unwrap_or_else(|e| die(USAGE, &e));
    let workload = parse_workload(
        args.get_or("workload", "lulesh"),
        args.get_or("variant", "baseline"),
        args.get_or("size", "medium"),
    )
    .unwrap_or_else(|e| die(USAGE, &e));
    let default_threads = machine.topology().total_cpus();
    let threads: usize = args
        .get_parsed("threads", default_threads)
        .unwrap_or_else(|e| die(USAGE, &e));
    let scale: u64 = args
        .get_parsed("scale", 64)
        .unwrap_or_else(|e| die(USAGE, &e));
    let bins: u16 = args
        .get_parsed("bins", 5)
        .unwrap_or_else(|e| die(USAGE, &e));
    let mode = match args.get_or("mode", "seq") {
        "seq" => ExecMode::Sequential,
        "par" => ExecMode::Parallel,
        other => die(USAGE, &format!("unknown mode {other:?}")),
    };
    let out = args.get_or("out", "profile.json").to_string();

    let mut config = ProfilerConfig::new(MechanismConfig::scaled(mechanism, scale))
        .with_bins(bins)
        .with_env_bins();
    if let Some(trace) = args.get("trace") {
        let cycles: u64 = trace
            .parse()
            .map_err(|_| format!("--trace: cannot parse {trace:?}"))
            .unwrap_or_else(|e: String| die(USAGE, &e));
        config = config.with_trace(cycles);
    }
    eprintln!(
        "hpcrun-sim: {} ({}) on {} with {} sampling, {} threads…",
        args.get_or("workload", "lulesh"),
        args.get_or("variant", "baseline"),
        machine.topology().name(),
        mechanism.name(),
        threads
    );
    let (stats, _, profile) = run_profiled(workload.as_ref(), machine, threads, mode, config);
    eprintln!(
        "hpcrun-sim: {} cycles ({:.1}% monitoring overhead), {} samples",
        stats.elapsed_cycles,
        stats.overhead_fraction() * 100.0,
        profile
            .threads
            .iter()
            .map(|t| t.totals.samples_mem)
            .sum::<u64>()
    );
    std::fs::write(&out, profile.to_json()).unwrap_or_else(|e| die(USAGE, &e.to_string()));
    eprintln!("hpcrun-sim: wrote {out}");
}
