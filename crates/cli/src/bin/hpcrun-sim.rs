//! `hpcrun-sim`: run a bundled workload under the NUMA profiler and write
//! the measurement profile as JSON — the simulated analogue of
//! HPCToolkit's `hpcrun`.
//!
//! ```text
//! hpcrun-sim --workload lulesh --variant baseline --machine amd \
//!            --mechanism ibs --threads 48 --out lulesh.profile.json
//! hpcrun-sim --workload lulesh --stream 127.0.0.1:7701 --chunk-threads 4
//! ```
//!
//! With `--stream ADDR` the measurement is delivered to a running
//! `hpcd-sim` daemon over a streaming ingestion session (per-thread
//! chunks, sealed at the end) instead of being written to a file; add
//! `--out` explicitly to do both.

use numa_profiler::ProfilerConfig;
use numa_sampling::MechanismConfig;
use numa_server::Client;
use numa_sim::ExecMode;
use numa_tools::{die, parse_machine, parse_mechanism, parse_workload, Args};
use numa_workloads::run_profiled;
use std::time::Duration;

const USAGE: &str = "\
usage: hpcrun-sim [--workload lulesh|amg2006|blackscholes|umt2013]
                  [--variant baseline|...]   (per-workload; default baseline)
                  [--machine amd|power7|harpertown|itanium2|ivybridge]
                  [--mechanism ibs|mrk|pebs|dear|pebs-ll|soft-ibs]
                  [--threads N]              (default: all hardware threads)
                  [--size small|medium|large] (default medium)
                  [--scale N]                (period scale factor, default 64)
                  [--bins N]                 (address-centric bins, default 5)
                  [--mode seq|par]           (default seq)
                  [--trace CYCLES]           (record a time series, 1 point/CYCLES)
                  [--stream HOST:PORT]       (stream the profile to a hpcd-sim daemon)
                  [--chunk-threads N]        (stream: threads per chunk; default 4)
                  [--label NAME]             (stream: label; default workload-variant)
                  [--connect-retry-ms N]     (stream: retry connecting up to N ms; default 5000)
                  [--out FILE]               (default profile.json; skipped when streaming
                                              unless given explicitly)";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "workload",
        "variant",
        "machine",
        "mechanism",
        "threads",
        "size",
        "scale",
        "bins",
        "mode",
        "trace",
        "stream",
        "chunk-threads",
        "label",
        "connect-retry-ms",
        "out",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let machine = parse_machine(args.get_or("machine", "amd")).unwrap_or_else(|e| die(USAGE, &e));
    let mechanism =
        parse_mechanism(args.get_or("mechanism", "ibs")).unwrap_or_else(|e| die(USAGE, &e));
    let workload = parse_workload(
        args.get_or("workload", "lulesh"),
        args.get_or("variant", "baseline"),
        args.get_or("size", "medium"),
    )
    .unwrap_or_else(|e| die(USAGE, &e));
    let default_threads = machine.topology().total_cpus();
    let threads: usize = args
        .get_parsed("threads", default_threads)
        .unwrap_or_else(|e| die(USAGE, &e));
    let scale: u64 = args
        .get_parsed("scale", 64)
        .unwrap_or_else(|e| die(USAGE, &e));
    let bins: u16 = args
        .get_parsed("bins", 5)
        .unwrap_or_else(|e| die(USAGE, &e));
    let mode = match args.get_or("mode", "seq") {
        "seq" => ExecMode::Sequential,
        "par" => ExecMode::Parallel,
        other => die(USAGE, &format!("unknown mode {other:?}")),
    };
    let stream_addr = args.get("stream").map(str::to_string);
    let explicit_out = args.get("out").map(str::to_string);

    let mut config = ProfilerConfig::new(MechanismConfig::scaled(mechanism, scale))
        .with_bins(bins)
        .with_env_bins();
    if let Some(trace) = args.get("trace") {
        let cycles: u64 = trace
            .parse()
            .map_err(|_| format!("--trace: cannot parse {trace:?}"))
            .unwrap_or_else(|e: String| die(USAGE, &e));
        config = config.with_trace(cycles);
    }
    eprintln!(
        "hpcrun-sim: {} ({}) on {} with {} sampling, {} threads…",
        args.get_or("workload", "lulesh"),
        args.get_or("variant", "baseline"),
        machine.topology().name(),
        mechanism.name(),
        threads
    );
    let (stats, _, profile) = run_profiled(workload.as_ref(), machine, threads, mode, config);
    eprintln!(
        "hpcrun-sim: {} cycles ({:.1}% monitoring overhead), {} samples",
        stats.elapsed_cycles,
        stats.overhead_fraction() * 100.0,
        profile
            .threads
            .iter()
            .map(|t| t.totals.samples_mem)
            .sum::<u64>()
    );
    if let Some(addr) = &stream_addr {
        let per: usize = args
            .get_parsed("chunk-threads", 4)
            .unwrap_or_else(|e| die(USAGE, &e));
        let retry_ms: u64 = args
            .get_parsed("connect-retry-ms", 5_000)
            .unwrap_or_else(|e| die(USAGE, &e));
        let default_label = format!(
            "{}-{}",
            args.get_or("workload", "lulesh"),
            args.get_or("variant", "baseline")
        );
        let label = args.get_or("label", &default_label);
        let mut client = Client::connect_retry(addr, Duration::from_millis(retry_ms.max(1)))
            .unwrap_or_else(|e| die(USAGE, &format!("cannot connect to {addr}: {e}")));
        let (id, added, chunks) = client
            .stream_profile(label, &profile, per)
            .unwrap_or_else(|e| die(USAGE, &format!("streaming to {addr} failed: {e}")));
        eprintln!(
            "hpcrun-sim: streamed {label} to {addr} in {chunks} chunk(s): {id} ({})",
            if added { "added" } else { "deduplicated" }
        );
    }
    // Streaming replaces the file write unless --out was given
    // explicitly; batch runs keep the profile.json default.
    if stream_addr.is_none() || explicit_out.is_some() {
        let out = explicit_out.unwrap_or_else(|| "profile.json".to_string());
        std::fs::write(&out, profile.to_json()).unwrap_or_else(|e| die(USAGE, &e.to_string()));
        eprintln!("hpcrun-sim: wrote {out}");
    }
}
