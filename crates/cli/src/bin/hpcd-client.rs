//! `hpcd-client`: remote front end for the `hpcd-sim` daemon. Every
//! `hpcstore-sim` verb, served over the wire instead of in-process,
//! plus daemon administration (`ping`, `server-stats`, `clear-cache`,
//! `shutdown`).
//!
//! ```text
//! hpcd-client --addr 127.0.0.1:7701 --cmd ping
//! hpcd-client --addr 127.0.0.1:7701 --cmd ingest --file run.json
//! hpcd-client --addr 127.0.0.1:7701 --cmd stream --file run.json --chunk-threads 2
//! hpcd-client --addr 127.0.0.1:7701 --cmd list
//! hpcd-client --addr 127.0.0.1:7701 --cmd aggregate
//! hpcd-client --addr 127.0.0.1:7701 --cmd top --n 5
//! hpcd-client --addr 127.0.0.1:7701 --cmd report --profile run.json --format json
//! hpcd-client --addr 127.0.0.1:7701 --cmd view --profile 1a2b --var m_matrix
//! hpcd-client --addr 127.0.0.1:7701 --cmd cct --profile run.json
//! hpcd-client --addr 127.0.0.1:7701 --cmd diff --before base.json --after tuned.json
//! hpcd-client --addr 127.0.0.1:7701 --cmd server-stats
//! hpcd-client --addr 127.0.0.1:7701 --cmd shutdown
//! ```

use numa_profiler::NumaProfile;
use numa_server::{caps, Client, ClientError, ReportFormat};
use numa_store::stream::split_profile;
use numa_tools::{die, Args};
use std::time::Duration;

const USAGE: &str = "\
usage: hpcd-client --addr HOST:PORT --cmd ping|ingest|stream|list|resolve|aggregate|top|report|view|cct|diff|stats|server-stats|metrics|clear-cache|shutdown
                   [--file FILE]          (ingest/stream: profile JSON to send)
                   [--label NAME]         (ingest/stream: label; default = file name)
                   [--chunk-threads N]    (stream: threads per chunk; default 2)
                   [--chunk-delay-ms N]   (stream: pause between chunks; default 0)
                   [--n N]                (top: how many variables; default 5)
                   [--profile REF]        (report/view/cct/resolve: id prefix or label)
                   [--var NAME]           (view: variable source name)
                   [--min-permille N]     (cct: elide subtrees below N/1000; default 5)
                   [--before REF --after REF]  (diff)
                   [--format text|json]   (report; default text)
                   [--timeout-ms N]       (socket timeout; default 10000)
                   [--connect-retry-ms N] (retry connecting for up to N ms; default 0 = one attempt)
                   [--out FILE]";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "addr",
        "cmd",
        "file",
        "label",
        "chunk-threads",
        "chunk-delay-ms",
        "n",
        "profile",
        "var",
        "min-permille",
        "before",
        "after",
        "format",
        "timeout-ms",
        "connect-retry-ms",
        "out",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let addr = args
        .get("addr")
        .unwrap_or_else(|| die(USAGE, "--addr is required"));
    let timeout_ms: u64 = args
        .get_parsed("timeout-ms", 10_000)
        .unwrap_or_else(|e| die(USAGE, &e));
    let retry_ms: u64 = args
        .get_parsed("connect-retry-ms", 0)
        .unwrap_or_else(|e| die(USAGE, &e));
    let mut client = if retry_ms > 0 {
        Client::connect_retry(addr, Duration::from_millis(retry_ms))
    } else {
        Client::connect_with_timeout(addr, Duration::from_millis(timeout_ms))
    }
    .unwrap_or_else(|e| die(USAGE, &format!("cannot connect to {addr}: {e}")));

    let require = |key: &str| -> &str {
        args.get(key)
            .unwrap_or_else(|| die(USAGE, &format!("--{key} is required for this command")))
    };

    let output = match args.get_or("cmd", "ping") {
        "ping" => {
            let server_caps = run(client.ping());
            format!(
                "hpcd-client: {addr} is alive, capabilities {}\n",
                caps::render(server_caps)
            )
        }
        "stream" => {
            let file = require("file");
            let json = std::fs::read_to_string(file)
                .unwrap_or_else(|e| die(USAGE, &format!("cannot read {file}: {e}")));
            let profile = NumaProfile::from_json(&json)
                .unwrap_or_else(|e| die(USAGE, &format!("cannot parse {file}: {e}")));
            let label = args.get("label").unwrap_or(file);
            let per: usize = args
                .get_parsed("chunk-threads", 2)
                .unwrap_or_else(|e| die(USAGE, &e));
            let delay_ms: u64 = args
                .get_parsed("chunk-delay-ms", 0)
                .unwrap_or_else(|e| die(USAGE, &e));
            let (id, added, chunks) = if delay_ms == 0 {
                run(client.stream_profile(label, &profile, per))
            } else {
                // Paced streaming (demos, and tests that need a window
                // to kill the client mid-session). Chunk encoding is
                // negotiated exactly like the un-paced path: binary
                // codec when the daemon advertises it, JSON otherwise.
                let binary = run(client.binary_codec());
                let info = run(client.open_session(label));
                for (seq, chunk) in split_profile(&profile, per).iter().enumerate() {
                    if seq > 0 {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                    }
                    if binary {
                        run(client.append_chunk_binary(
                            info.session,
                            seq as u64,
                            chunk.to_binary(),
                        ));
                    } else {
                        run(client.append_chunk(info.session, seq as u64, &chunk.to_json()));
                    }
                }
                run(client.seal_session(info.session))
            };
            format!(
                "{id}  {label} ({}, {chunks} chunk(s) streamed)\n",
                if added { "added" } else { "deduplicated" }
            )
        }
        "ingest" => {
            let file = require("file");
            let json = std::fs::read_to_string(file)
                .unwrap_or_else(|e| die(USAGE, &format!("cannot read {file}: {e}")));
            let label = args.get("label").unwrap_or(file);
            // Parse locally so the profile can travel as codec bytes
            // when the daemon advertises the binary capability (JSON
            // fallback otherwise) — the stored identity is the same
            // either way.
            let profile = NumaProfile::from_json(&json)
                .unwrap_or_else(|e| die(USAGE, &format!("cannot parse {file}: {e}")));
            let (id, added) = run(client.ingest_profile(label, &profile));
            format!(
                "{id}  {label} ({})\n",
                if added { "added" } else { "deduplicated" }
            )
        }
        "list" => {
            let mut out = String::new();
            for e in run(client.list()) {
                out.push_str(&format!(
                    "{}  {:<32} {} thread(s), {} KiB\n",
                    e.id,
                    e.label,
                    e.threads,
                    e.json_bytes / 1024
                ));
            }
            out
        }
        "resolve" => {
            let (id, label) = run(client.resolve(require("profile")));
            format!("{id}  {label}\n")
        }
        "aggregate" => run(client.aggregate()),
        "top" => {
            let n: usize = args.get_parsed("n", 5).unwrap_or_else(|e| die(USAGE, &e));
            run(client.top(n))
        }
        "report" => {
            let format = match args.get_or("format", "text") {
                "text" => ReportFormat::Text,
                "json" => ReportFormat::Json,
                other => die(USAGE, &format!("unknown format {other:?}")),
            };
            run(client.report(require("profile"), format))
        }
        "view" => {
            let profile = require("profile");
            let var = require("var");
            run(client.address_view(profile, var))
        }
        "cct" => {
            let permille: u16 = args
                .get_parsed("min-permille", 5)
                .unwrap_or_else(|e| die(USAGE, &e));
            run(client.code_view(require("profile"), permille))
        }
        "diff" => {
            let before = require("before");
            let after = require("after");
            run(client.diff(before, after))
        }
        "stats" => run(client.store_stats()),
        "server-stats" => run(client.server_stats()).render(),
        "metrics" => run(client.metrics()),
        "clear-cache" => {
            run(client.clear_cache());
            "hpcd-client: cache cleared\n".to_string()
        }
        "shutdown" => {
            run(client.shutdown());
            format!("hpcd-client: {addr} is shutting down\n")
        }
        other => die(USAGE, &format!("unknown command {other:?}")),
    };

    match args.get("out") {
        None => print!("{output}"),
        Some(path) => {
            std::fs::write(path, output).unwrap_or_else(|e| die(USAGE, &e.to_string()));
            eprintln!("hpcd-client: wrote {path}");
        }
    }
}

fn run<T>(result: Result<T, ClientError>) -> T {
    result.unwrap_or_else(|e| die(USAGE, &e.to_string()))
}
