//! `hpcd-client`: remote front end for the `hpcd-sim` daemon. Every
//! `hpcstore-sim` verb, served over the wire instead of in-process,
//! plus daemon administration (`ping`, `server-stats`, `clear-cache`,
//! `shutdown`).
//!
//! ```text
//! hpcd-client --addr 127.0.0.1:7701 --cmd ping
//! hpcd-client --addr 127.0.0.1:7701 --cmd ingest --file run.json
//! hpcd-client --addr 127.0.0.1:7701 --cmd list
//! hpcd-client --addr 127.0.0.1:7701 --cmd aggregate
//! hpcd-client --addr 127.0.0.1:7701 --cmd top --n 5
//! hpcd-client --addr 127.0.0.1:7701 --cmd report --profile run.json --format json
//! hpcd-client --addr 127.0.0.1:7701 --cmd view --profile 1a2b --var m_matrix
//! hpcd-client --addr 127.0.0.1:7701 --cmd cct --profile run.json
//! hpcd-client --addr 127.0.0.1:7701 --cmd diff --before base.json --after tuned.json
//! hpcd-client --addr 127.0.0.1:7701 --cmd server-stats
//! hpcd-client --addr 127.0.0.1:7701 --cmd shutdown
//! ```

use numa_server::{Client, ClientError, ReportFormat};
use numa_tools::{die, Args};

const USAGE: &str = "\
usage: hpcd-client --addr HOST:PORT --cmd ping|ingest|list|resolve|aggregate|top|report|view|cct|diff|stats|server-stats|clear-cache|shutdown
                   [--file FILE]          (ingest: profile JSON to send)
                   [--label NAME]         (ingest: label; default = file name)
                   [--n N]                (top: how many variables; default 5)
                   [--profile REF]        (report/view/cct/resolve: id prefix or label)
                   [--var NAME]           (view: variable source name)
                   [--min-permille N]     (cct: elide subtrees below N/1000; default 5)
                   [--before REF --after REF]  (diff)
                   [--format text|json]   (report; default text)
                   [--timeout-ms N]       (socket timeout; default 10000)
                   [--out FILE]";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "addr",
        "cmd",
        "file",
        "label",
        "n",
        "profile",
        "var",
        "min-permille",
        "before",
        "after",
        "format",
        "timeout-ms",
        "out",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let addr = args
        .get("addr")
        .unwrap_or_else(|| die(USAGE, "--addr is required"));
    let timeout_ms: u64 = args
        .get_parsed("timeout-ms", 10_000)
        .unwrap_or_else(|e| die(USAGE, &e));
    let mut client =
        Client::connect_with_timeout(addr, std::time::Duration::from_millis(timeout_ms))
            .unwrap_or_else(|e| die(USAGE, &format!("cannot connect to {addr}: {e}")));

    let require = |key: &str| -> &str {
        args.get(key)
            .unwrap_or_else(|| die(USAGE, &format!("--{key} is required for this command")))
    };

    let output = match args.get_or("cmd", "ping") {
        "ping" => {
            run(client.ping());
            format!("hpcd-client: {addr} is alive\n")
        }
        "ingest" => {
            let file = require("file");
            let json = std::fs::read_to_string(file)
                .unwrap_or_else(|e| die(USAGE, &format!("cannot read {file}: {e}")));
            let label = args.get("label").unwrap_or(file);
            let (id, added) = run(client.ingest(label, &json));
            format!(
                "{id}  {label} ({})\n",
                if added { "added" } else { "deduplicated" }
            )
        }
        "list" => {
            let mut out = String::new();
            for e in run(client.list()) {
                out.push_str(&format!(
                    "{}  {:<32} {} thread(s), {} KiB\n",
                    e.id,
                    e.label,
                    e.threads,
                    e.json_bytes / 1024
                ));
            }
            out
        }
        "resolve" => {
            let (id, label) = run(client.resolve(require("profile")));
            format!("{id}  {label}\n")
        }
        "aggregate" => run(client.aggregate()),
        "top" => {
            let n: usize = args.get_parsed("n", 5).unwrap_or_else(|e| die(USAGE, &e));
            run(client.top(n))
        }
        "report" => {
            let format = match args.get_or("format", "text") {
                "text" => ReportFormat::Text,
                "json" => ReportFormat::Json,
                other => die(USAGE, &format!("unknown format {other:?}")),
            };
            run(client.report(require("profile"), format))
        }
        "view" => {
            let profile = require("profile");
            let var = require("var");
            run(client.address_view(profile, var))
        }
        "cct" => {
            let permille: u16 = args
                .get_parsed("min-permille", 5)
                .unwrap_or_else(|e| die(USAGE, &e));
            run(client.code_view(require("profile"), permille))
        }
        "diff" => {
            let before = require("before");
            let after = require("after");
            run(client.diff(before, after))
        }
        "stats" => run(client.store_stats()),
        "server-stats" => run(client.server_stats()).render(),
        "clear-cache" => {
            run(client.clear_cache());
            "hpcd-client: cache cleared\n".to_string()
        }
        "shutdown" => {
            run(client.shutdown());
            format!("hpcd-client: {addr} is shutting down\n")
        }
        other => die(USAGE, &format!("unknown command {other:?}")),
    };

    match args.get("out") {
        None => print!("{output}"),
        Some(path) => {
            std::fs::write(path, output).unwrap_or_else(|e| die(USAGE, &e.to_string()));
            eprintln!("hpcd-client: wrote {path}");
        }
    }
}

fn run<T>(result: Result<T, ClientError>) -> T {
    result.unwrap_or_else(|e| die(USAGE, &e.to_string()))
}
