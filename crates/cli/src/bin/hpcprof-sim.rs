//! `hpcprof-sim`: merge and analyze a profile written by `hpcrun-sim`,
//! printing the NUMA analysis report — the simulated analogue of
//! HPCToolkit's `hpcprof`.
//!
//! ```text
//! hpcprof-sim --in lulesh.profile.json [--format text|json]
//! ```

use numa_analysis::{analyze, full_text_report, html_report, Analyzer};
use numa_profiler::NumaProfile;
use numa_tools::{die, Args};

const USAGE: &str = "\
usage: hpcprof-sim --in PROFILE.json [--format text|json|html] [--out FILE]";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&["in", "format", "out"])
        .unwrap_or_else(|e| die(USAGE, &e));
    let path = args
        .get("in")
        .unwrap_or_else(|| die(USAGE, "--in is required"));
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(USAGE, &e.to_string()));
    let profile =
        NumaProfile::from_json(&json).unwrap_or_else(|e| die(USAGE, &format!("bad profile: {e}")));
    let analyzer = Analyzer::new(profile);
    let output = match args.get_or("format", "text") {
        "text" => full_text_report(&analyzer),
        "json" => analyze(&analyzer).to_json(),
        "html" => html_report(&analyzer),
        other => die(USAGE, &format!("unknown format {other:?}")),
    };
    match args.get("out") {
        None => print!("{output}"),
        Some(path) => {
            std::fs::write(path, output).unwrap_or_else(|e| die(USAGE, &e.to_string()));
            eprintln!("hpcprof-sim: wrote {path}");
        }
    }
}
