//! `hpcd-sim`: the profile-ingestion & query daemon. Holds one
//! [`ProfileStore`] in memory and serves it over TCP to any number of
//! `hpcd-client` (or library) connections. With `--data-dir` the store
//! is durable: every acknowledged ingest is in a write-ahead log before
//! the response goes out, the log is periodically compacted into a
//! snapshot, and a restart (even after SIGKILL) replays the corpus.
//!
//! ```text
//! hpcd-sim --listen 127.0.0.1:7701                # empty in-memory store
//! hpcd-sim --listen 127.0.0.1:7701 --dir runs/    # preload a corpus
//! hpcd-sim --listen 127.0.0.1:7701 --data-dir db/ # durable store (WAL + snapshot)
//! hpcd-sim --listen 127.0.0.1:0                   # ephemeral port (printed)
//! ```
//!
//! The daemon runs until a client sends the `shutdown` op (see
//! `hpcd-client --cmd shutdown`), then drains in-flight requests,
//! flushes the store (final snapshot compaction) and exits 0, printing
//! a final stats snapshot to stderr.

use numa_server::{LiveConfig, Server, ServerConfig};
use numa_store::{PersistOptions, ProfileStore, StoreConfig};
use numa_tools::{die, Args};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: hpcd-sim [--listen ADDR]          (default 127.0.0.1:7701; port 0 = ephemeral)
                [--dir PROFILES_DIR]     (preload every *.json in DIR)
                [--data-dir DIR]         (durable store: WAL + snapshot crash recovery)
                [--snapshot-wal-kib N]   (compact once the WAL exceeds N KiB; default 4096)
                [--fsync-wal on|off]     (fsync every WAL append; default off)
                [--workers N]            (worker threads; default 4)
                [--max-pending N]        (accept-queue bound; default 64)
                [--max-frame-kib N]      (frame payload cap; default 4096)
                [--read-timeout-ms N]    (per-connection; default 10000)
                [--write-timeout-ms N]   (per-connection; default 10000)
                [--cache-capacity N]     (memoized artifacts; default 256)
                [--shards N]             (store shard count, rounded to a power of two; default 8)
                [--session-lease-ms N]   (streaming-session lease; default 30000)
                [--session-max-kib N]    (per-session buffer cap in KiB; default 65536)
                [--max-sessions N]       (concurrent streaming sessions; default 64)
                [--metrics-addr ADDR]    (serve GET /metrics as Prometheus text; port 0 = ephemeral)
                [--slow-op-ms N]         (log requests slower than N ms; default 500)
                [--fault-spec SPEC]      (testing: inject storage faults into the durable
                                          store, e.g. enospc=4096 or sync=2,rename=1;
                                          see numa-faults::FaultSpec::parse)";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "listen",
        "dir",
        "data-dir",
        "snapshot-wal-kib",
        "fsync-wal",
        "workers",
        "max-pending",
        "max-frame-kib",
        "read-timeout-ms",
        "write-timeout-ms",
        "cache-capacity",
        "shards",
        "session-lease-ms",
        "session-max-kib",
        "max-sessions",
        "metrics-addr",
        "slow-op-ms",
        "fault-spec",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let listen = args.get_or("listen", "127.0.0.1:7701");
    let store_config = StoreConfig {
        cache_capacity: args
            .get_parsed("cache-capacity", 256)
            .unwrap_or_else(|e| die(USAGE, &e)),
        shards: args
            .get_parsed("shards", ProfileStore::DEFAULT_SHARDS)
            .unwrap_or_else(|e| die(USAGE, &e)),
    };
    let config = ServerConfig {
        workers: args
            .get_parsed("workers", 4)
            .unwrap_or_else(|e| die(USAGE, &e)),
        max_pending_connections: args
            .get_parsed("max-pending", 64)
            .unwrap_or_else(|e| die(USAGE, &e)),
        max_frame: args
            .get_parsed::<usize>("max-frame-kib", 4096)
            .unwrap_or_else(|e| die(USAGE, &e))
            .saturating_mul(1024),
        read_timeout: Duration::from_millis(
            args.get_parsed("read-timeout-ms", 10_000)
                .unwrap_or_else(|e| die(USAGE, &e)),
        ),
        write_timeout: Duration::from_millis(
            args.get_parsed("write-timeout-ms", 10_000)
                .unwrap_or_else(|e| die(USAGE, &e)),
        ),
        metrics_addr: args.get("metrics-addr").map(|a| a.to_string()),
        slow_op_threshold: Duration::from_millis(
            args.get_parsed("slow-op-ms", 500)
                .unwrap_or_else(|e| die(USAGE, &e)),
        ),
        live: {
            let lease_ms: u64 = args
                .get_parsed("session-lease-ms", 30_000)
                .unwrap_or_else(|e| die(USAGE, &e));
            let max_session_bytes = args
                .get_parsed::<usize>("session-max-kib", 64 * 1024)
                .unwrap_or_else(|e| die(USAGE, &e))
                .saturating_mul(1024);
            LiveConfig {
                lease: Duration::from_millis(lease_ms.max(1)),
                max_session_bytes,
                max_sessions: args
                    .get_parsed("max-sessions", 64)
                    .unwrap_or_else(|e| die(USAGE, &e)),
                // Short leases (tests, demos) deserve a janitor that
                // actually notices them expiring.
                janitor_period: Duration::from_millis((lease_ms / 4).clamp(10, 250)),
                ..LiveConfig::default()
            }
        },
        ..ServerConfig::default()
    };

    let store = match args.get("data-dir") {
        None => {
            if args.get("fault-spec").is_some() {
                die(
                    USAGE,
                    "--fault-spec requires --data-dir (it faults the durable store)",
                );
            }
            Arc::new(ProfileStore::with_config(store_config))
        }
        Some(dir) => {
            let opts = PersistOptions {
                snapshot_wal_bytes: args
                    .get_parsed::<u64>("snapshot-wal-kib", 4096)
                    .unwrap_or_else(|e| die(USAGE, &e))
                    .saturating_mul(1024),
                fsync: match args.get_or("fsync-wal", "off") {
                    "on" => true,
                    "off" => false,
                    other => die(USAGE, &format!("--fsync-wal must be on|off, got {other:?}")),
                },
            };
            // Testing hook: run the whole durability stack over an
            // injecting storage layer. The daemon must answer faulted
            // ingests with a typed error and keep serving reads.
            let storage: Arc<dyn numa_faults::Storage> = match args.get("fault-spec") {
                None => Arc::new(numa_faults::StdStorage),
                Some(spec) => {
                    let spec = numa_faults::FaultSpec::parse(spec)
                        .unwrap_or_else(|e| die(USAGE, &format!("bad --fault-spec: {e}")));
                    eprintln!("hpcd-sim: fault injection active: {spec:?}");
                    Arc::new(numa_faults::FaultyStorage::new(spec))
                }
            };
            let store =
                ProfileStore::open_durable_config_with(Path::new(dir), store_config, opts, storage)
                    .unwrap_or_else(|e| die(USAGE, &format!("cannot open data dir {dir}: {e}")));
            let p = store.persist_stats();
            eprintln!(
                "hpcd-sim: recovered {} profile(s) from {dir} \
                 ({} snapshot + {} wal record(s), {} truncated byte(s), {} stale parse(s); \
                 sessions: {} recovered, {} dropped)",
                store.len(),
                p.snapshot_records_loaded,
                p.wal_records_replayed,
                p.wal_truncated_bytes + p.snapshot_truncated_bytes,
                p.replay_parse_failures,
                p.sessions_recovered,
                p.sessions_dropped,
            );
            Arc::new(store)
        }
    };
    if let Some(dir) = args.get("dir") {
        let report = store
            .ingest_dir(Path::new(dir))
            .unwrap_or_else(|e| die(USAGE, &format!("cannot read {dir}: {e}")));
        for (label, err) in &report.rejected {
            eprintln!("hpcd-sim: skipping {label}: {err}");
        }
        for (label, err) in &report.io_errors {
            eprintln!("hpcd-sim: cannot read {label}: {err}");
        }
        for (label, err) in &report.persist_failures {
            eprintln!("hpcd-sim: not durable, rolled back {label}: {err}");
        }
        eprintln!(
            "hpcd-sim: preloaded {} profile(s) from {dir} ({} deduplicated, {} rejected, {} unreadable, {} not durable)",
            report.added.len(),
            report.deduplicated,
            report.rejected.len(),
            report.io_errors.len(),
            report.persist_failures.len()
        );
    }

    let server = Server::bind(listen, config, Arc::clone(&store))
        .unwrap_or_else(|e| die(USAGE, &format!("cannot bind {listen}: {e}")));
    // The bound address goes to stdout so scripts can scrape the
    // ephemeral port from `--listen 127.0.0.1:0`.
    println!("hpcd-sim: listening on {}", server.local_addr());
    // Same stdout contract for the scrape endpoint's ephemeral port.
    if let Some(addr) = server.metrics_addr() {
        println!("hpcd-sim: metrics on {addr}");
    }
    eprintln!("hpcd-sim: serving (send the shutdown op to stop)");

    match server.run() {
        Ok(stats) => {
            // Final compaction: a clean shutdown leaves a snapshot and
            // an empty WAL, so the next startup is a pure snapshot load.
            if let Err(e) = store.flush() {
                eprintln!("hpcd-sim: final flush failed: {e}");
            }
            eprintln!("hpcd-sim: drained and stopped\n{}", stats.render());
        }
        Err(e) => die(USAGE, &format!("serve loop failed: {e}")),
    }
}
