//! `hpcd-sim`: the profile-ingestion & query daemon. Holds one
//! [`ProfileStore`] in memory and serves it over TCP to any number of
//! `hpcd-client` (or library) connections.
//!
//! ```text
//! hpcd-sim --listen 127.0.0.1:7701                # empty store
//! hpcd-sim --listen 127.0.0.1:7701 --dir runs/    # preload a corpus
//! hpcd-sim --listen 127.0.0.1:0                   # ephemeral port (printed)
//! ```
//!
//! The daemon runs until a client sends the `shutdown` op (see
//! `hpcd-client --cmd shutdown`), then drains in-flight requests and
//! exits 0, printing a final stats snapshot to stderr.

use numa_server::{Server, ServerConfig};
use numa_store::ProfileStore;
use numa_tools::{die, Args};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: hpcd-sim [--listen ADDR]          (default 127.0.0.1:7701; port 0 = ephemeral)
                [--dir PROFILES_DIR]     (preload every *.json in DIR)
                [--workers N]            (worker threads; default 4)
                [--max-pending N]        (accept-queue bound; default 64)
                [--max-frame-kib N]      (frame payload cap; default 4096)
                [--read-timeout-ms N]    (per-connection; default 10000)
                [--write-timeout-ms N]   (per-connection; default 10000)
                [--cache-capacity N]     (memoized artifacts; default 256)";

fn main() {
    let args = Args::parse().unwrap_or_else(|e| die(USAGE, &e));
    args.check_known(&[
        "listen",
        "dir",
        "workers",
        "max-pending",
        "max-frame-kib",
        "read-timeout-ms",
        "write-timeout-ms",
        "cache-capacity",
    ])
    .unwrap_or_else(|e| die(USAGE, &e));

    let listen = args.get_or("listen", "127.0.0.1:7701");
    let cache_capacity: usize = args
        .get_parsed("cache-capacity", 256)
        .unwrap_or_else(|e| die(USAGE, &e));
    let config = ServerConfig {
        workers: args
            .get_parsed("workers", 4)
            .unwrap_or_else(|e| die(USAGE, &e)),
        max_pending_connections: args
            .get_parsed("max-pending", 64)
            .unwrap_or_else(|e| die(USAGE, &e)),
        max_frame: args
            .get_parsed::<usize>("max-frame-kib", 4096)
            .unwrap_or_else(|e| die(USAGE, &e))
            .saturating_mul(1024),
        read_timeout: Duration::from_millis(
            args.get_parsed("read-timeout-ms", 10_000)
                .unwrap_or_else(|e| die(USAGE, &e)),
        ),
        write_timeout: Duration::from_millis(
            args.get_parsed("write-timeout-ms", 10_000)
                .unwrap_or_else(|e| die(USAGE, &e)),
        ),
        ..ServerConfig::default()
    };

    let store = Arc::new(ProfileStore::with_cache_capacity(cache_capacity));
    if let Some(dir) = args.get("dir") {
        let report = store
            .ingest_dir(Path::new(dir))
            .unwrap_or_else(|e| die(USAGE, &format!("cannot read {dir}: {e}")));
        for (label, err) in &report.rejected {
            eprintln!("hpcd-sim: skipping {label}: {err}");
        }
        eprintln!(
            "hpcd-sim: preloaded {} profile(s) from {dir} ({} deduplicated, {} rejected)",
            report.added.len(),
            report.deduplicated,
            report.rejected.len()
        );
    }

    let server = Server::bind(listen, config, store)
        .unwrap_or_else(|e| die(USAGE, &format!("cannot bind {listen}: {e}")));
    // The bound address goes to stdout so scripts can scrape the
    // ephemeral port from `--listen 127.0.0.1:0`.
    println!("hpcd-sim: listening on {}", server.local_addr());
    eprintln!("hpcd-sim: serving (send the shutdown op to stop)");

    match server.run() {
        Ok(stats) => {
            eprintln!("hpcd-sim: drained and stopped\n{}", stats.render());
        }
        Err(e) => die(USAGE, &format!("serve loop failed: {e}")),
    }
}
