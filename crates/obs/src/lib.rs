//! Observability substrate for the serving stack: one home for every
//! number the daemon exports.
//!
//! Three layers, all designed for a hot path that is a handful of
//! relaxed atomic ops:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — cheap cloneable handles
//!   over shared atomics. Components create them where the event
//!   happens; exposition holds a clone of the same handle, so there is
//!   exactly one storage location per number (no parallel bookkeeping
//!   to drift out of sync).
//! - [`Registry`] — names, help text, and labels for a set of handles,
//!   rendered as Prometheus text exposition (`GET /metrics`). Derived
//!   values (anything already guarded by a component's own lock) join
//!   via closure collectors instead of duplicating state.
//! - [`trace`] — per-request structured spans: a bounded ring buffer
//!   of (op, bytes, shard, cache hit/miss, WAL-ack latency, total
//!   latency) plus a thread-local side channel that lets lower layers
//!   (store, persistence) deposit facts into the span the serving
//!   layer is building, without threading a context argument through
//!   every call.
//!
//! The histogram keeps the power-of-two bucket shape the daemon's
//! latency histogram established: 27 buckets, bucket `i` covering
//! `[2^i, 2^(i+1))` with the last bucket an overflow catch-all.
//! [`Histogram::snapshot`] copies all buckets once and derives every
//! statistic (count, percentiles) from that one copy, so a summary can
//! never mix bucket counts from different instants.

mod metrics;
mod registry;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::Registry;
pub use trace::{Span, SpanRing};
