//! Per-request structured spans.
//!
//! The serving layer opens a trace around each request
//! ([`begin`] / [`take`]); lower layers deposit facts into the active
//! trace through the thread-local note functions ([`note_shard`],
//! [`note_cache`], [`note_wal_ack_us`]) without any context argument
//! threading. The finished [`Span`] goes into a bounded [`SpanRing`];
//! spans slower than a configurable threshold are additionally kept in
//! a slow-op ring so a burst of fast requests cannot evict the
//! interesting evidence.
//!
//! Notes are no-ops when no trace is active on the thread, so
//! instrumented code in the store costs one thread-local flag check
//! when called outside a traced request (recovery, tests, in-process
//! embedding).

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;

/// One finished request span. `seq` is assigned by the ring and is
/// strictly monotonic in ring order.
#[derive(Clone, Debug)]
pub struct Span {
    pub seq: u64,
    /// Wire op name (static: the daemon's op table).
    pub op: &'static str,
    /// Request payload size in bytes.
    pub bytes: u64,
    /// Store shard the request touched, if any.
    pub shard: Option<u32>,
    /// Memo-cache outcome, if the request consulted the cache.
    pub cache_hit: Option<bool>,
    /// Time spent blocked on the WAL ack, if the request staged data.
    pub wal_ack_us: Option<u64>,
    /// End-to-end service time.
    pub total_us: u64,
    /// Whether the request was answered with a typed error.
    pub error: bool,
}

/// Everything of a [`Span`] except the ring-assigned sequence number.
#[derive(Clone, Debug)]
pub struct SpanBody {
    pub op: &'static str,
    pub bytes: u64,
    pub shard: Option<u32>,
    pub cache_hit: Option<bool>,
    pub wal_ack_us: Option<u64>,
    pub total_us: u64,
    pub error: bool,
}

/// A bounded ring of recent spans. Pushes assign strictly monotonic
/// sequence numbers under the same lock that orders the ring, so a
/// reader always sees whole spans (never torn fields) in strictly
/// increasing `seq` order, and memory stays capped at `capacity`
/// spans.
pub struct SpanRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

struct RingInner {
    spans: VecDeque<Span>,
    next_seq: u64,
}

impl SpanRing {
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            inner: Mutex::new(RingInner {
                spans: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
            }),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a span, evicting the oldest when full. Returns the
    /// assigned sequence number. With capacity 0 the ring only hands
    /// out sequence numbers.
    pub fn push(&self, body: SpanBody) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if self.capacity == 0 {
            return seq;
        }
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
        }
        inner.spans.push_back(Span {
            seq,
            op: body.op,
            bytes: body.bytes,
            shard: body.shard,
            cache_hit: body.cache_hit,
            wal_ack_us: body.wal_ack_us,
            total_us: body.total_us,
            error: body.error,
        });
        seq
    }

    /// Retain an already-sequenced span (the slow-op log keeps the
    /// trace-assigned `seq` so a slow span can be correlated with the
    /// main ring). Evicts the oldest when full; a no-op at capacity 0.
    pub fn retain(&self, span: Span) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
        }
        inner.spans.push_back(span);
    }

    /// Total spans ever pushed (sequence numbers handed out).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The most recent `n` spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let inner = self.inner.lock();
        let skip = inner.spans.len().saturating_sub(n);
        inner.spans.iter().skip(skip).cloned().collect()
    }
}

/// Facts lower layers deposited into the active trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct Notes {
    pub shard: Option<u32>,
    pub cache_hit: Option<bool>,
    pub wal_ack_us: Option<u64>,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static NOTES: Cell<Notes> = const { Cell::new(Notes { shard: None, cache_hit: None, wal_ack_us: None }) };
}

/// Open a trace on this thread, clearing any stale notes.
pub fn begin() {
    NOTES.with(|n| n.set(Notes::default()));
    ACTIVE.with(|a| a.set(true));
}

/// Close the trace and return the accumulated notes.
pub fn take() -> Notes {
    ACTIVE.with(|a| a.set(false));
    NOTES.with(|n| n.replace(Notes::default()))
}

#[inline]
fn with_active(f: impl FnOnce(&mut Notes)) {
    if ACTIVE.with(|a| a.get()) {
        NOTES.with(|n| {
            let mut notes = n.get();
            f(&mut notes);
            n.set(notes);
        });
    }
}

/// Record which store shard the request touched.
#[inline]
pub fn note_shard(shard: u32) {
    with_active(|n| n.shard = Some(shard));
}

/// Record a memo-cache hit (`true`) or miss (`false`).
#[inline]
pub fn note_cache(hit: bool) {
    with_active(|n| n.cache_hit = Some(hit));
}

/// Accumulate time spent blocked on a WAL ack (requests that stage
/// multiple records sum their waits).
#[inline]
pub fn note_wal_ack_us(us: u64) {
    with_active(|n| n.wal_ack_us = Some(n.wal_ack_us.unwrap_or(0) + us));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(op: &'static str, total_us: u64) -> SpanBody {
        SpanBody {
            op,
            bytes: 0,
            shard: None,
            cache_hit: None,
            wal_ack_us: None,
            total_us,
            error: false,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_monotonic_seq() {
        let ring = SpanRing::new(3);
        for i in 0..5 {
            let seq = ring.push(body("ping", i));
            assert_eq!(seq, i);
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 3);
        let seqs: Vec<u64> = recent.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let ring = SpanRing::new(0);
        assert_eq!(ring.push(body("ping", 1)), 0);
        assert_eq!(ring.push(body("ping", 1)), 1);
        assert!(ring.recent(10).is_empty());
    }

    #[test]
    fn notes_only_stick_while_a_trace_is_active() {
        note_shard(9); // no trace: dropped
        begin();
        note_shard(3);
        note_cache(true);
        note_wal_ack_us(10);
        note_wal_ack_us(5);
        let notes = take();
        assert_eq!(notes.shard, Some(3));
        assert_eq!(notes.cache_hit, Some(true));
        assert_eq!(notes.wal_ack_us, Some(15));
        // Closed: further notes are dropped and the next begin() is clean.
        note_cache(false);
        begin();
        assert_eq!(take().cache_hit, None);
    }
}
