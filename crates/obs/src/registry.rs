//! Metric naming and Prometheus text exposition.
//!
//! A [`Registry`] maps metric family names to the handles (or closure
//! collectors) that hold the live values. Registration happens once at
//! startup; [`Registry::render`] walks the families and emits the
//! Prometheus text format (`text/plain; version=0.0.4`):
//!
//! ```text
//! # HELP numa_server_requests_total Requests served, by op.
//! # TYPE numa_server_requests_total counter
//! numa_server_requests_total{op="ping"} 42
//! ```
//!
//! Registering the same family name again appends a series (e.g. one
//! per op label); help and type come from the first registration.

use crate::metrics::{bucket_upper_bound, Counter, Gauge, Histogram, BUCKETS};
use parking_lot::Mutex;
use std::fmt::Write as _;

enum Source {
    Counter(Counter),
    Gauge(Gauge),
    /// Derived counter value, read under the owning component's lock.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Derived gauge value.
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    Histogram(Histogram),
}

struct Series {
    /// Rendered label set, `{key="value",...}` or empty.
    labels: String,
    source: Source,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

/// A set of named metric families rendered as Prometheus text.
///
/// Components register cloned handles (one storage location, two
/// readers) or closures for values derived under their own locks.
/// Thread-safe; registration and rendering may race, each render sees
/// a consistent family list.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Counter) {
        self.register(name, help, "counter", labels, Source::Counter(handle));
    }

    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Gauge) {
        self.register(name, help, "gauge", labels, Source::Gauge(handle));
    }

    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            "counter",
            labels,
            Source::CounterFn(Box::new(f)),
        );
    }

    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.register(name, help, "gauge", labels, Source::GaugeFn(Box::new(f)));
    }

    pub fn histogram(&self, name: &str, help: &str, handle: Histogram) {
        self.register(name, help, "histogram", &[], Source::Histogram(handle));
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        source: Source,
    ) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        debug_assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "invalid label key in {labels:?}"
        );
        let labels = render_labels(labels);
        let mut families = self.families.lock();
        match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                debug_assert_eq!(f.kind, kind, "family {name:?} re-registered as {kind}");
                f.series.push(Series { labels, source });
            }
            None => families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: vec![Series { labels, source }],
            }),
        }
    }

    /// Render every family in registration order as Prometheus text.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        for family in self.families.lock().iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
            for series in &family.series {
                match &series.source {
                    Source::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, c.get());
                    }
                    Source::CounterFn(f) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, f());
                    }
                    Source::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, g.get());
                    }
                    Source::GaugeFn(f) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, f());
                    }
                    Source::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for i in 0..BUCKETS {
                            cumulative = cumulative.saturating_add(snap.buckets[i]);
                            let le = bucket_upper_bound(i);
                            if le == u64::MAX {
                                continue; // folded into +Inf below
                            }
                            let _ = writeln!(
                                out,
                                "{}_bucket{{le=\"{}\"}} {}",
                                family.name, le, cumulative
                            );
                        }
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", family.name, snap.count);
                        let _ = writeln!(out, "{}_sum {}", family.name, snap.sum);
                        let _ = writeln!(out, "{}_count {}", family.name, snap.count);
                    }
                }
            }
        }
        out
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_families_with_labels_and_help() {
        let registry = Registry::new();
        let ping = Counter::new();
        let ingest = Counter::new();
        ping.add(3);
        ingest.add(2);
        registry.counter(
            "numa_requests_total",
            "Requests by op.",
            &[("op", "ping")],
            ping,
        );
        registry.counter(
            "numa_requests_total",
            "ignored duplicate help",
            &[("op", "ingest")],
            ingest,
        );
        let g = Gauge::new();
        g.set(-4);
        registry.gauge("numa_open_bytes", "Buffered bytes.", &[], g);
        registry.counter_fn("numa_derived_total", "Derived.", &[], || 7);

        let text = registry.render();
        assert!(text.contains("# HELP numa_requests_total Requests by op.\n"));
        assert!(text.contains("# TYPE numa_requests_total counter\n"));
        assert!(text.contains("numa_requests_total{op=\"ping\"} 3\n"));
        assert!(text.contains("numa_requests_total{op=\"ingest\"} 2\n"));
        assert!(text.contains("numa_open_bytes -4\n"));
        assert!(text.contains("numa_derived_total 7\n"));
        // Help appears once per family even with two series.
        assert_eq!(text.matches("# HELP numa_requests_total").count(), 1);
    }

    #[test]
    fn renders_histogram_with_cumulative_buckets() {
        let registry = Registry::new();
        let h = Histogram::new();
        h.record(1); // bucket 0 (le 2)
        h.record(3); // bucket 1 (le 4)
        h.record(1 << 40); // overflow bucket
        registry.histogram("numa_latency_us", "Latency.", h);
        let text = registry.render();
        assert!(text.contains("# TYPE numa_latency_us histogram\n"));
        assert!(text.contains("numa_latency_us_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("numa_latency_us_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("numa_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("numa_latency_us_count 3\n"));
        let sum = 1 + 3 + (1u64 << 40);
        assert!(text.contains(&format!("numa_latency_us_sum {sum}\n")));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
