//! Handle types: lock-free counters, gauges, and a fixed-bucket
//! power-of-two histogram with consistent snapshots.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count. Cloning is cheap and every
/// clone addresses the same underlying atomic, so a component can keep
/// a handle on its hot path while a [`crate::Registry`] holds another
/// for exposition.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (open sessions, buffered bytes).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values in
/// `[2^i, 2^(i+1))`, bucket 0 holds `< 2`, and the last bucket is an
/// overflow catch-all for everything at or above `2^(BUCKETS-1)`.
pub const BUCKETS: usize = 27;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
}

/// Inclusive-exclusive upper bound of bucket `i` (`u64::MAX` for the
/// overflow bucket — it has no real upper edge).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[derive(Default)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// Fixed power-of-two-bucket histogram. Recording touches exactly
/// three relaxed atomics (bucket, sum, max). All reads go through
/// [`Histogram::snapshot`], which copies the buckets once and derives
/// every statistic from the copy — percentile lines can never mix
/// bucket counts from different instants.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (the unit every latency
    /// histogram in the stack uses).
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// One consistent copy of the buckets; the count is derived from
    /// the copied buckets themselves, so `count == buckets.sum()` holds
    /// by construction no matter how many writers are racing.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = buckets.iter().fold(0u64, |a, b| a.saturating_add(*b));
        HistogramSnapshot {
            buckets,
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]. Every statistic on this
/// type reads the same frozen bucket array.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    /// Sum of `buckets` (saturating), frozen at snapshot time.
    pub count: u64,
    /// Sum of recorded values (racy relative to `buckets` by at most
    /// the handful of records in flight during the snapshot).
    pub sum: u64,
    /// Largest value ever recorded.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the p-th percentile (0 < p ≤ 1): the
    /// upper edge of the bucket where the cumulative count crosses the
    /// rank, capped by the observed max. At most one bucket width (2×)
    /// above the exact order statistic.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // f64 has 53 mantissa bits; for saturating counts near u64::MAX
        // the ceil/clamp still lands on a valid rank in [1, count].
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        let g2 = g.clone();
        g.add(10);
        g2.sub(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_math_matches_the_power_of_two_shape() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index((1 << 26) - 1), 25);
        assert_eq!(bucket_index(1 << 26), 26);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 2);
        assert_eq!(bucket_upper_bound(25), 1 << 26);
        assert_eq!(bucket_upper_bound(26), u64::MAX);
    }

    #[test]
    fn snapshot_count_equals_bucket_sum() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                h.record(v);
            }
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
        assert_eq!(s.max, 10_000);
        let p50 = s.percentile(0.50);
        assert!((100..=128).contains(&p50), "p50 = {p50}");
        assert!(s.percentile(0.99) >= 10_000);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.percentile(0.5), 0);
    }
}
