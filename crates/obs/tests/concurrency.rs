//! Concurrency contracts: the span ring under 8 writers + racing
//! readers (no torn spans, bounded memory, monotonic sequence
//! numbers), and histogram snapshots that stay internally consistent
//! while writers hammer `record`.

use numa_obs::trace::SpanBody;
use numa_obs::{Histogram, SpanRing};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 2_000;
const CAPACITY: usize = 64;

/// Span fields carry a checksum relation so a reader can detect a torn
/// span (fields from two different pushes) no matter how the ring is
/// sliced: for payload `x`, wal_ack = 3x and total = 7x.
fn checked_body(x: u64) -> SpanBody {
    SpanBody {
        op: "ingest",
        bytes: x,
        shard: Some((x % 16) as u32),
        cache_hit: Some(x.is_multiple_of(2)),
        wal_ack_us: Some(x.wrapping_mul(3)),
        total_us: x.wrapping_mul(7),
        error: false,
    }
}

#[test]
fn ring_survives_eight_writers_and_racing_readers() {
    let ring = Arc::new(SpanRing::new(CAPACITY));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let spans = ring.recent(CAPACITY * 2);
                    // Bounded memory: never more than the capacity.
                    assert!(spans.len() <= CAPACITY, "ring grew to {}", spans.len());
                    let mut last_seq = None;
                    for s in &spans {
                        // Monotonic sequence numbers in ring order.
                        if let Some(prev) = last_seq {
                            assert!(s.seq > prev, "seq {} after {}", s.seq, prev);
                        }
                        last_seq = Some(s.seq);
                        // No torn spans: the checksum relation holds.
                        let x = s.bytes;
                        assert_eq!(s.wal_ack_us, Some(x.wrapping_mul(3)), "torn span {s:?}");
                        assert_eq!(s.total_us, x.wrapping_mul(7), "torn span {s:?}");
                        assert_eq!(s.shard, Some((x % 16) as u32), "torn span {s:?}");
                    }
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.push(checked_body(w as u64 * PER_WRITER + i));
                }
            })
        })
        .collect();
    for t in writers {
        t.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    for t in readers {
        let scrapes = t.join().expect("reader");
        assert!(scrapes > 0, "reader never ran");
    }

    // Every push got a distinct sequence number; the ring kept exactly
    // the last CAPACITY of them.
    assert_eq!(ring.pushed(), (WRITERS as u64) * PER_WRITER);
    let finals = ring.recent(usize::MAX);
    assert_eq!(finals.len(), CAPACITY);
    let max_seq = finals.last().expect("nonempty").seq;
    assert_eq!(max_seq, (WRITERS as u64) * PER_WRITER - 1);
}

#[test]
fn histogram_snapshots_stay_consistent_under_concurrent_records() {
    let h = Histogram::new();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    h.record((i << (w % 20)) | 1);
                }
            })
        })
        .collect();

    // A racing scraper: every snapshot must be internally consistent —
    // the count equals its own bucket sum, percentiles are monotone,
    // and successive counts never go backwards. (The pre-snapshot code
    // read live buckets per percentile call, so p50 > p95 was possible
    // under exactly this race.)
    let scraper = {
        let h = h.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = h.snapshot();
                assert_eq!(s.count, s.buckets.iter().sum::<u64>());
                assert!(s.count >= last_count, "count went backwards");
                last_count = s.count;
                let (p50, p95, p99) = (s.percentile(0.50), s.percentile(0.95), s.percentile(0.99));
                assert!(p50 <= p95 && p95 <= p99, "non-monotone: {p50} {p95} {p99}");
                assert!(p99 <= s.max.max(p99));
            }
            last_count
        })
    };

    for t in writers {
        t.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper");
    assert_eq!(h.snapshot().count, (WRITERS as u64) * PER_WRITER);
}
