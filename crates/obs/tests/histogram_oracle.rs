//! Oracle-checked histogram quantiles: the fixed-bucket estimate is
//! compared against an exact sorted-vector oracle.
//!
//! The contract under test: for rank `r = ceil(p·n)` the histogram
//! returns the upper edge of the bucket containing the exact order
//! statistic `sorted[r-1]`, capped by the observed max — i.e. the
//! estimate is within one bucket width of the truth, and the bucket it
//! names is exactly the right one.

use numa_obs::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;

/// What the estimator must return for percentile `p` over `values`.
fn oracle_estimate(values: &[u64], p: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
    let exact = sorted[(rank - 1) as usize];
    let max = *sorted.last().unwrap();
    bucket_upper_bound(bucket_index(exact)).min(max)
}

fn build(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Random sample sets of mixed magnitude: each (raw, shift) pair
    /// yields `raw >> shift`, spreading values across every bucket
    /// including 0 and the overflow bucket.
    #[test]
    fn quantiles_match_the_sorted_oracle(
        samples in prop::collection::vec((any::<u64>(), 0u32..64), 1..200),
        p in 0.01f64..1.0,
    ) {
        let values: Vec<u64> = samples.iter().map(|(raw, s)| raw >> s).collect();
        let snap = build(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        for q in [p, 0.50, 0.95, 0.99] {
            prop_assert_eq!(snap.percentile(q), oracle_estimate(&values, q));
        }
        // Monotone within one snapshot, bounded by the observed max.
        prop_assert!(snap.percentile(0.50) <= snap.percentile(0.95));
        prop_assert!(snap.percentile(0.95) <= snap.percentile(0.99));
        prop_assert!(snap.percentile(0.99) <= snap.max);
    }

    /// Values sitting exactly on bucket edges (powers of two) are the
    /// adversarial case for the index math: 2^k opens bucket k, so the
    /// estimate for it is min(2^(k+1), max).
    #[test]
    fn bucket_boundary_values_round_trip(exponents in prop::collection::vec(0u32..63, 1..50)) {
        let values: Vec<u64> = exponents.iter().map(|e| 1u64 << e).collect();
        let snap = build(&values);
        for q in [0.25, 0.50, 0.95, 0.99, 1.0] {
            prop_assert_eq!(snap.percentile(q), oracle_estimate(&values, q));
        }
    }
}

#[test]
fn empty_histogram_reports_zero() {
    let snap = Histogram::new().snapshot();
    for q in [0.01, 0.5, 0.99, 1.0] {
        assert_eq!(snap.percentile(q), 0);
    }
}

#[test]
fn single_sample_is_its_own_percentile() {
    for v in [0u64, 1, 2, 3, 127, 128, 1 << 20, u64::MAX] {
        let snap = build(&[v]);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(snap.percentile(q), oracle_estimate(&[v], q), "v = {v}");
        }
    }
}

#[test]
fn saturating_bucket_counts_stay_in_range() {
    // Counts near u64::MAX cannot be reached by recording, so build the
    // snapshot directly: the rank arithmetic must neither overflow nor
    // panic, and percentiles stay monotone and within the bucket edges.
    let mut buckets = [0u64; BUCKETS];
    buckets[3] = u64::MAX / 2;
    buckets[10] = u64::MAX / 2;
    buckets[BUCKETS - 1] = u64::MAX; // forces saturating accumulation
    let count = buckets.iter().fold(0u64, |a, b| a.saturating_add(*b));
    let snap = HistogramSnapshot {
        buckets,
        count,
        sum: u64::MAX,
        max: u64::MAX,
    };
    assert_eq!(snap.count, u64::MAX);
    let p50 = snap.percentile(0.50);
    let p95 = snap.percentile(0.95);
    let p99 = snap.percentile(0.99);
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    // Half the mass sits at or below bucket 10, so p50 cannot name a
    // bucket above it; the tail lives in the overflow bucket.
    assert!(p50 <= bucket_upper_bound(10));
    assert_eq!(snap.percentile(1.0), u64::MAX);
}
