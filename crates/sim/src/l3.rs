//! Shared per-domain last-level caches.
//!
//! Each NUMA domain has one L3 shared by its cores. Under parallel execution
//! multiple worker threads access a domain's L3 concurrently, so the cache is
//! sharded by set index: a line's set picks its shard, and each shard is an
//! independently locked [`Cache`]. Contention is bounded by the shard count
//! and sets never migrate between shards, so behaviour matches an unsharded
//! cache exactly.

use crate::cache::{Cache, CacheConfig, LINE_SHIFT};
use numa_machine::DomainId;
use parking_lot::Mutex;

/// Number of independently locked shards per L3.
const SHARDS: usize = 16;

/// One domain's shared L3.
pub struct SharedL3 {
    shards: Vec<Mutex<Cache>>,
    shard_mask: u64,
}

impl SharedL3 {
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.sets().is_multiple_of(SHARDS),
            "sets must divide into shards"
        );
        let per_shard_sets = config.sets() / SHARDS;
        let per_shard = CacheConfig::new(
            (per_shard_sets * config.associativity) as u64 * 64,
            config.associativity,
        );
        SharedL3 {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Cache::new(per_shard)))
                .collect(),
            shard_mask: SHARDS as u64 - 1,
        }
    }

    /// Split an address into (shard index, shard-local address). The low
    /// line-number bits pick the shard and are *removed* from the address
    /// handed to the shard's cache, so every set of every shard is
    /// reachable and total capacity equals the configured size.
    #[inline]
    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr >> LINE_SHIFT;
        let shard = (line & self.shard_mask) as usize;
        let local = (line >> SHARDS.trailing_zeros()) << LINE_SHIFT;
        (shard, local)
    }

    /// Access (lookup + fill on miss). Returns true on hit.
    pub fn access(&self, addr: u64) -> bool {
        let (shard, local) = self.split(addr);
        self.shards[shard].lock().access(local)
    }

    /// Presence check without fill or LRU update.
    pub fn probe(&self, addr: u64) -> bool {
        let (shard, local) = self.split(addr);
        self.shards[shard].lock().probe(local)
    }

    pub fn flush(&self) {
        for s in &self.shards {
            s.lock().flush();
        }
    }

    pub fn footprint_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().footprint_bytes()).sum()
    }
}

/// The set of all L3 caches of a machine, indexed by domain.
pub struct L3Complex {
    caches: Vec<SharedL3>,
}

impl L3Complex {
    pub fn new(domains: usize, config: CacheConfig) -> Self {
        L3Complex {
            caches: (0..domains).map(|_| SharedL3::new(config)).collect(),
        }
    }

    pub fn domain(&self, d: DomainId) -> &SharedL3 {
        &self.caches[d.index()]
    }

    pub fn flush(&self) {
        for c in &self.caches {
            c.flush();
        }
    }

    pub fn footprint_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.footprint_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_across_shards() {
        let l3 = SharedL3::new(CacheConfig::l3());
        for i in 0..64u64 {
            assert!(!l3.access(i * 64));
        }
        for i in 0..64u64 {
            assert!(l3.access(i * 64), "line {i} missing");
        }
    }

    #[test]
    fn probe_is_passive() {
        let l3 = SharedL3::new(CacheConfig::l3());
        assert!(!l3.probe(0x40));
        assert!(!l3.access(0x40));
        assert!(l3.probe(0x40));
    }

    #[test]
    fn domains_are_independent() {
        let complex = L3Complex::new(2, CacheConfig::l3());
        complex.domain(DomainId(0)).access(0x1000);
        assert!(complex.domain(DomainId(0)).probe(0x1000));
        assert!(!complex.domain(DomainId(1)).probe(0x1000));
    }

    #[test]
    fn full_configured_capacity_is_usable() {
        // Regression: shard selection must not alias with set indexing,
        // otherwise only 1/SHARDS of the sets are reachable.
        let l3 = SharedL3::new(CacheConfig::l3());
        let lines = (8 * 1024 * 1024 / 64) as u64;
        for i in 0..lines {
            l3.access(i * 64);
        }
        let present = (0..lines).filter(|&i| l3.probe(i * 64)).count();
        assert_eq!(
            present as u64, lines,
            "a just-filled cache retains its capacity"
        );
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let l3 = Arc::new(SharedL3::new(CacheConfig::l3()));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let l3 = Arc::clone(&l3);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    l3.access((t * 1_000_000 + i) * 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
