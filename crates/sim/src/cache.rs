//! Set-associative LRU cache, used for private L1/L2 and (sharded) shared
//! L3 levels.
//!
//! Only presence is simulated, not data: the profiler's events need "where
//! was this access satisfied", which a tags-only model answers. Lines are
//! 64 bytes.

use serde::{Deserialize, Serialize};

/// Line size in bytes (fixed — every modern x86/POWER level uses 64 B).
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

const INVALID: u64 = u64::MAX;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    pub size_bytes: u64,
    pub associativity: usize,
}

impl CacheConfig {
    pub fn new(size_bytes: u64, associativity: usize) -> Self {
        assert!(associativity >= 1);
        let lines = size_bytes / LINE_SIZE;
        assert!(lines >= associativity as u64, "cache smaller than one set");
        let sets = lines / associativity as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            associativity,
        }
    }

    /// Typical private L1D: 32 KiB, 8-way.
    pub fn l1d() -> Self {
        CacheConfig::new(32 * 1024, 8)
    }

    /// Typical private L2: 512 KiB, 8-way.
    pub fn l2() -> Self {
        CacheConfig::new(512 * 1024, 8)
    }

    /// Shared per-domain L3: 8 MiB, 16-way (order of a per-die last-level
    /// cache; rounded so sets stay a power of two).
    pub fn l3() -> Self {
        CacheConfig::new(8 * 1024 * 1024, 16)
    }

    pub fn sets(&self) -> usize {
        (self.size_bytes / LINE_SIZE) as usize / self.associativity
    }
}

/// A tags-only set-associative cache with true-LRU replacement.
pub struct Cache {
    sets: usize,
    assoc: usize,
    /// `sets × assoc` line numbers (`addr >> LINE_SHIFT`), row per set.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let assoc = config.associativity;
        Cache {
            sets,
            assoc,
            tags: vec![INVALID; sets * assoc],
            stamps: vec![0; sets * assoc],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Look up the line holding `addr`, updating LRU state and inserting it
    /// on a miss. Returns true on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> LINE_SHIFT;
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.tick += 1;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Evict the LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            let idx = base + w;
            if self.tags[idx] == INVALID {
                victim = w;
                break;
            }
            if self.stamps[idx] < oldest {
                oldest = self.stamps[idx];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Non-destructive presence check (no LRU update, no fill).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> LINE_SHIFT;
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// Drop all lines (e.g. between experiment phases).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Approximate resident size of the simulator structure itself.
    pub fn footprint_bytes(&self) -> usize {
        self.tags.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 8 lines, 2-way → 4 sets.
        Cache::new(CacheConfig::new(8 * LINE_SIZE, 2))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::l1d();
        assert_eq!(c.sets(), 64);
        assert_eq!(CacheConfig::l3().sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheConfig::new(3 * LINE_SIZE, 1);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * LINE_SIZE).
        let stride = 4 * LINE_SIZE;
        let (a, b, d) = (0, stride, 2 * stride);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40)); // still a miss: probe didn't insert
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0x80);
        c.flush();
        assert!(!c.probe(0x80));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        // 4 sets × 2 ways: 8 distinct lines in distinct (set,way) slots all fit.
        for line in 0..8u64 {
            c.access(line * LINE_SIZE);
        }
        for line in 0..8u64 {
            assert!(c.probe(line * LINE_SIZE), "line {line} evicted");
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        for round in 0..3 {
            for line in 0..64u64 {
                let hit = c.access(line * LINE_SIZE);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // 64 lines cycling through 8-line cache with LRU: every access misses.
        assert_eq!(c.hits(), 0);
    }
}
