//! Per-thread execution context: the API simulated programs are written
//! against.
//!
//! A workload is ordinary Rust that narrates its execution to the engine:
//! `call`/`region` maintain the call stack, `alloc` announces data objects,
//! `load`/`store` issue memory accesses (resolved through the cache hierarchy
//! and NUMA model), and `compute` retires non-memory instructions. Each
//! virtual thread is pinned to one hardware thread, as the paper's
//! experiments pin software threads to cores.

use crate::cache::Cache;
use crate::event::{AllocInfo, MemoryEvent, PageFaultEvent, VarKind};
use crate::func::{Frame, FrameKind, FuncId};
use crate::program::SharedEnv;
use numa_machine::{AccessLevel, CpuId, DomainId};

/// Cycles charged for taking a first-touch trap, before the monitor's own
/// handler cost (kernel signal delivery + mprotect restore).
pub const FAULT_DELIVERY_COST: u64 = 3000;

/// Cycles charged for an allocation call itself.
pub const ALLOC_BASE_COST: u64 = 120;

/// Persistent state of one virtual thread (survives across regions so cache
/// contents and the clock carry over, like a real pinned thread).
pub struct ThreadState {
    pub(crate) tid: usize,
    pub(crate) cpu: CpuId,
    pub(crate) domain: DomainId,
    /// Virtual cycle clock, including monitoring overhead.
    pub(crate) clock: u64,
    /// Cycles of the clock attributable to monitoring.
    pub(crate) monitor_cycles: u64,
    pub(crate) instructions: u64,
    pub(crate) mem_accesses: u64,
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) stack: Vec<Frame>,
    /// `exit_frame` calls that found an empty stack (a malformed
    /// replayed program); each is a counted no-op, never a panic.
    pub(crate) stack_underflows: u64,
    pub(crate) line: u32,
    /// DRAM stall cycles accumulated in the current region, per target
    /// domain — the basis for the fork-join contention charge applied at
    /// the region join (see `Program::join_region`).
    pub(crate) region_dram_stalls: Vec<u64>,
}

impl ThreadState {
    pub(crate) fn new(tid: usize, cpu: CpuId, domain: DomainId) -> Self {
        ThreadState {
            tid,
            cpu,
            domain,
            clock: 0,
            monitor_cycles: 0,
            instructions: 0,
            mem_accesses: 0,
            l1: Cache::new(crate::cache::CacheConfig::l1d()),
            l2: Cache::new(crate::cache::CacheConfig::l2()),
            stack: Vec::with_capacity(32),
            stack_underflows: 0,
            line: 0,
            region_dram_stalls: Vec::new(),
        }
    }
}

/// Mutable view of a thread during a region, bound to the program's shared
/// environment. Created by the engine; workload code receives `&mut
/// ThreadCtx`.
pub struct ThreadCtx<'a> {
    pub(crate) state: &'a mut ThreadState,
    pub(crate) env: &'a SharedEnv,
}

impl<'a> ThreadCtx<'a> {
    /// Software thread index within the program.
    pub fn tid(&self) -> usize {
        self.state.tid
    }

    /// Hardware thread this virtual thread is pinned to.
    pub fn cpu(&self) -> CpuId {
        self.state.cpu
    }

    /// NUMA domain of the pinned CPU.
    pub fn domain(&self) -> DomainId {
        self.state.domain
    }

    /// Current virtual time in cycles (monitoring overhead included).
    pub fn clock(&self) -> u64 {
        self.state.clock
    }

    /// Number of threads in the program (for partitioning work).
    pub fn num_threads(&self) -> usize {
        self.env.num_threads
    }

    /// Number of NUMA domains on the machine.
    pub fn num_domains(&self) -> usize {
        self.env.machine.topology().domains()
    }

    // ---- call structure -------------------------------------------------

    /// Execute `f` inside a function frame named `name`.
    pub fn call<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let id = self.env.funcs.intern(name);
        self.enter_id(id, FrameKind::Function);
        let r = f(self);
        self.exit_frame();
        r
    }

    /// Execute `f` inside a loop frame (finer-grained code-centric
    /// attribution, as HPCToolkit attributes to loops).
    pub fn loop_scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let id = self.env.funcs.intern(name);
        self.enter_id(id, FrameKind::Loop);
        let r = f(self);
        self.exit_frame();
        r
    }

    /// Push a frame by pre-interned id (hot-path variant of [`Self::call`]).
    pub fn enter_id(&mut self, func: FuncId, kind: FrameKind) {
        self.state.stack.push(Frame { func, kind });
    }

    /// Pop the innermost frame. Popping an empty stack — a malformed
    /// replayed program whose exits outnumber its enters — degrades to a
    /// counted no-op instead of panicking, so one bad input cannot take
    /// down a simulation serving other work. The count is reported to
    /// the monitor (and surfaces on the profile) via
    /// [`Monitor::on_stack_underflow`](crate::Monitor::on_stack_underflow).
    pub fn exit_frame(&mut self) {
        if self.state.stack.pop().is_none() {
            self.state.stack_underflows += 1;
            self.env.monitor.on_stack_underflow(self.state.tid);
        }
    }

    /// How many times `exit_frame` hit an empty stack on this thread.
    pub fn stack_underflows(&self) -> u64 {
        self.state.stack_underflows
    }

    /// Set the source-line marker attached to subsequent accesses.
    pub fn at_line(&mut self, line: u32) {
        self.state.line = line;
    }

    /// Current call stack (outermost first).
    pub fn stack(&self) -> &[Frame] {
        &self.state.stack
    }

    /// Intern a function name (for `enter_id`).
    pub fn intern(&self, name: &str) -> FuncId {
        self.env.funcs.intern(name)
    }

    // ---- data objects ----------------------------------------------------

    /// Allocate a named heap variable with a placement policy. Returns its
    /// base address.
    pub fn alloc(&mut self, name: &str, bytes: u64, policy: numa_machine::PlacementPolicy) -> u64 {
        self.alloc_kind(name, bytes, policy, VarKind::Heap)
    }

    /// Allocate a named variable of an explicit kind (static variables are
    /// "allocated" at load time by real programs; here the workload
    /// announces them the same way, tagged [`VarKind::Static`]).
    pub fn alloc_kind(
        &mut self,
        name: &str,
        bytes: u64,
        policy: numa_machine::PlacementPolicy,
        kind: VarKind,
    ) -> u64 {
        let addr = self.env.space.allocate(bytes);
        self.env
            .machine
            .page_map()
            .register_region(addr, bytes, policy.clone());
        self.state.clock += ALLOC_BASE_COST;
        self.state.instructions += 8; // allocator bookkeeping instructions
        let info = AllocInfo {
            tid: self.state.tid,
            name,
            addr,
            bytes,
            kind,
            policy: &policy,
        };
        let oh = self.env.monitor.on_alloc(&info, &self.state.stack);
        self.charge_overhead(oh);
        addr
    }

    /// Free a previously allocated variable.
    pub fn free(&mut self, addr: u64) {
        self.env.machine.page_map().remove_region(addr);
        self.state.clock += ALLOC_BASE_COST / 2;
        let oh = self.env.monitor.on_free(self.state.tid, addr);
        self.charge_overhead(oh);
    }

    // ---- execution --------------------------------------------------------

    /// Retire `n` non-memory instructions (1 cycle each — an in-order,
    /// 1-IPC core model).
    pub fn compute(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.state.instructions += n;
        self.state.clock += n;
        let oh = self
            .env
            .monitor
            .on_compute(self.state.tid, n, &self.state.stack);
        self.charge_overhead(oh);
    }

    /// Issue a load of `size` bytes at `addr`.
    #[inline]
    pub fn load(&mut self, addr: u64, size: u32) {
        self.access(addr, size, false);
    }

    /// Issue a store of `size` bytes at `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, size: u32) {
        self.access(addr, size, true);
    }

    fn access(&mut self, addr: u64, size: u32, is_store: bool) {
        let st = &mut *self.state;
        st.instructions += 1;
        st.mem_accesses += 1;
        st.clock += 1; // issue slot

        let machine = &self.env.machine;
        let q = machine.page_map().touch(addr, st.domain);

        // First-touch trap (simulated SIGSEGV): delivered before the access
        // completes, exactly once per protected page (§6).
        if q.fault.is_some() {
            let fault = PageFaultEvent {
                tid: st.tid,
                cpu: st.cpu,
                thread_domain: st.domain,
                addr,
                is_store,
                line: st.line,
            };
            st.clock += FAULT_DELIVERY_COST;
            st.monitor_cycles += FAULT_DELIVERY_COST;
            let oh = self.env.monitor.on_page_fault(&fault, &st.stack);
            st.clock += oh;
            st.monitor_cycles += oh;
        }

        let home = q.domain;
        // Walk the hierarchy. `access` fills on miss, so after the walk the
        // line is resident in L1/L2 (and local L3 if it got that far) —
        // allocate-on-miss at every level.
        let (level, serving) = if st.l1.access(addr) {
            (AccessLevel::L1, st.domain)
        } else if st.l2.access(addr) {
            (AccessLevel::L2, st.domain)
        } else if self.env.l3.domain(st.domain).access(addr) {
            (AccessLevel::L3Local, st.domain)
        } else if let Some(d) = remote_l3_holder(self.env, addr, st.domain, home) {
            // Another domain's L3 holds the line (directory/probe-filter
            // coherence): a cache-to-cache transfer beats DRAM.
            (AccessLevel::L3Remote, d)
        } else {
            machine.controllers().record(home);
            (numa_machine::latency::dram_level(st.domain, home), home)
        };

        // Sampled (PMU-visible) latency is the *uncontended* latency;
        // queueing delay under contention is charged to the clock at the
        // region join, where the whole region's per-domain load is known
        // exactly (independent of execution mode).
        let lat_model = machine.latency_model();
        let hops = machine.interconnect().hops(st.domain, serving);
        let latency = lat_model.latency(level, hops, 1.0);
        let stall = lat_model.stall_cycles(latency);
        st.clock += stall;
        if level.is_memory() {
            if st.region_dram_stalls.len() <= home.index() {
                st.region_dram_stalls
                    .resize(machine.topology().domains(), 0);
            }
            st.region_dram_stalls[home.index()] += stall;
        }

        let ev = MemoryEvent {
            tid: st.tid,
            cpu: st.cpu,
            thread_domain: st.domain,
            addr,
            size,
            is_store,
            level,
            home_domain: home,
            latency,
            line: st.line,
            first_touch_page: q.bound_now,
            clock: st.clock,
        };
        let oh = self.env.monitor.on_access(&ev, &st.stack);
        st.clock += oh;
        st.monitor_cycles += oh;
    }

    /// Convenience: load `count` consecutive elements of `elem_size` bytes
    /// starting at `base` (a unit-stride read sweep, one access per
    /// element).
    pub fn load_range(&mut self, base: u64, count: u64, elem_size: u32) {
        for i in 0..count {
            self.load(base + i * elem_size as u64, elem_size);
        }
    }

    /// Convenience: store sweep, mirroring [`Self::load_range`].
    pub fn store_range(&mut self, base: u64, count: u64, elem_size: u32) {
        for i in 0..count {
            self.store(base + i * elem_size as u64, elem_size);
        }
    }

    fn charge_overhead(&mut self, cycles: u64) {
        self.state.clock += cycles;
        self.state.monitor_cycles += cycles;
    }
}

/// Which remote domain's L3 (if any) holds `addr` — the home domain is
/// probed first (its directory is the natural owner), then the rest.
fn remote_l3_holder(
    env: &SharedEnv,
    addr: u64,
    local: DomainId,
    home: DomainId,
) -> Option<DomainId> {
    if home != local && env.l3.domain(home).probe(addr) {
        return Some(home);
    }
    let domains = env.machine.topology().domains();
    (0..domains)
        .map(|d| DomainId(d as u8))
        .find(|&d| d != local && d != home && env.l3.domain(d).probe(addr))
}
