//! The monitor interface: how a profiler observes an execution.
//!
//! The engine calls a [`Monitor`] synchronously for every observable action.
//! Each callback returns the number of *monitoring overhead cycles* to charge
//! to the acting thread's clock — this is how Table 2's overhead percentages
//! are reproduced: a sampling mechanism pays per-sample costs (signal
//! delivery, stack unwinding, `move_pages` queries) and, for instrumentation
//! based schemes like Soft-IBS, per-event costs.

use crate::event::{AllocInfo, MemoryEvent, PageFaultEvent};
use crate::func::Frame;
use numa_machine::{CpuId, DomainId};

/// Observer of a simulated execution. All methods have no-op defaults, so a
/// monitor implements only what it needs.
///
/// Methods may be called concurrently from different worker threads, but for
/// a fixed `tid` calls are strictly sequential (the engine is the only
/// caller and each virtual thread is driven by one worker).
pub trait Monitor: Send + Sync {
    /// A virtual thread came online, bound to `cpu` in `domain`.
    fn on_thread_start(&self, tid: usize, cpu: CpuId, domain: DomainId) {
        let _ = (tid, cpu, domain);
    }

    /// An allocation (heap, static, or stack) with the allocating call path.
    /// Returns overhead cycles (e.g. the cost of installing page protection
    /// for first-touch trapping).
    fn on_alloc(&self, info: &AllocInfo<'_>, stack: &[Frame]) -> u64 {
        let _ = (info, stack);
        0
    }

    /// A deallocation. Returns overhead cycles.
    fn on_free(&self, tid: usize, addr: u64) -> u64 {
        let _ = (tid, addr);
        0
    }

    /// `n` non-memory instructions retired by `tid`. Returns overhead
    /// cycles (e.g. samples that fire inside the block).
    fn on_compute(&self, tid: usize, n: u64, stack: &[Frame]) -> u64 {
        let _ = (tid, n, stack);
        0
    }

    /// A memory access completed. Returns overhead cycles.
    fn on_access(&self, ev: &MemoryEvent, stack: &[Frame]) -> u64 {
        let _ = (ev, stack);
        0
    }

    /// A protected page was touched for the first time (§6). Returns
    /// overhead cycles (the SIGSEGV handler's work).
    fn on_page_fault(&self, fault: &PageFaultEvent, stack: &[Frame]) -> u64 {
        let _ = (fault, stack);
        0
    }

    /// `exit_frame` was called on an empty call stack (a malformed
    /// replayed program). The engine already counted and absorbed the
    /// underflow; this hook lets a profiler surface it on the profile.
    fn on_stack_underflow(&self, tid: usize) {
        let _ = tid;
    }

    /// A virtual thread finished with its final clock value.
    fn on_thread_end(&self, tid: usize, clock: u64) {
        let _ = (tid, clock);
    }
}

/// Monitor that observes nothing and charges nothing — used for baseline
/// (unmonitored) runs when measuring overhead.
pub struct NullMonitor;

impl Monitor for NullMonitor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_monitor_charges_zero() {
        let m = NullMonitor;
        assert_eq!(m.on_free(0, 0), 0);
        assert_eq!(m.on_compute(0, 100, &[]), 0);
    }
}
