//! The program engine: fork-join execution of simulated multithreaded
//! programs.
//!
//! A [`Program`] owns one virtual thread per software thread, each pinned to
//! a hardware thread of the machine. Workloads are sequences of `serial`
//! (master-thread) and `parallel` (OpenMP-style) regions. After every region
//! the engine joins at a barrier: all thread clocks advance to the slowest
//! participant, which is how fork-join programs actually spend time.
//!
//! Two execution modes:
//!
//! * [`ExecMode::Parallel`] — one OS thread per virtual thread
//!   (`std::thread::scope`); shared L3s and contention counters are touched
//!   concurrently, so timings are realistic but not bit-reproducible.
//! * [`ExecMode::Sequential`] — virtual threads run one after another;
//!   fully deterministic, used by tests and by experiments that must
//!   reproduce exactly.

use crate::event::VarKind;
use crate::func::{FrameKind, FuncRegistry};
use crate::l3::L3Complex;
use crate::monitor::{Monitor, NullMonitor};
use crate::space::AddressSpace;
use crate::thread::{ThreadCtx, ThreadState};
use numa_machine::{CpuId, Machine};
use std::sync::Arc;

/// How parallel regions execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Real OS threads; fast and realistic, mildly nondeterministic.
    Parallel,
    /// One thread at a time; deterministic.
    Sequential,
}

/// Environment shared by all virtual threads of one program.
pub struct SharedEnv {
    pub(crate) machine: Machine,
    pub(crate) l3: L3Complex,
    pub(crate) space: AddressSpace,
    pub(crate) funcs: FuncRegistry,
    pub(crate) monitor: Arc<dyn Monitor>,
    pub(crate) num_threads: usize,
}

/// Aggregate execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Fork-join elapsed time: the synchronized clock after the last region.
    pub elapsed_cycles: u64,
    /// Elapsed time with all monitoring overhead removed from every
    /// thread's critical path (the "without monitoring" column of Table 2 —
    /// exact here because monitoring adds no memory traffic in the model).
    pub baseline_cycles: u64,
    /// Total instructions retired across threads.
    pub instructions: u64,
    /// Total memory accesses across threads.
    pub mem_accesses: u64,
}

impl ProgramStats {
    /// Monitoring overhead as a fraction of baseline time (Table 2's
    /// percentage).
    pub fn overhead_fraction(&self) -> f64 {
        if self.baseline_cycles == 0 {
            return 0.0;
        }
        (self.elapsed_cycles as f64 - self.baseline_cycles as f64) / self.baseline_cycles as f64
    }
}

/// A simulated multithreaded program execution.
pub struct Program {
    env: SharedEnv,
    threads: Vec<ThreadState>,
    mode: ExecMode,
    elapsed: u64,
    baseline_elapsed: u64,
    finished: bool,
}

impl Program {
    /// Create a program with `n_threads` software threads spread across the
    /// machine's domains round-robin (the paper's per-core binding), under
    /// `monitor`.
    pub fn new(
        machine: Machine,
        n_threads: usize,
        mode: ExecMode,
        monitor: Arc<dyn Monitor>,
    ) -> Self {
        let binding = machine.topology().spread_binding(n_threads);
        Self::with_binding(machine, binding, mode, monitor)
    }

    /// Create a program with an unmonitored (null) monitor.
    pub fn unmonitored(machine: Machine, n_threads: usize, mode: ExecMode) -> Self {
        Self::new(machine, n_threads, mode, Arc::new(NullMonitor))
    }

    /// Create a program with an explicit thread→CPU binding.
    pub fn with_binding(
        machine: Machine,
        binding: Vec<CpuId>,
        mode: ExecMode,
        monitor: Arc<dyn Monitor>,
    ) -> Self {
        assert!(!binding.is_empty(), "a program needs at least one thread");
        assert_eq!(
            machine.page_map().region_count(),
            0,
            "a Machine instance hosts one Program: its page map already              holds regions from a previous run — build a fresh Machine"
        );
        let l3 = L3Complex::new(
            machine.topology().domains(),
            crate::cache::CacheConfig::l3(),
        );
        let threads: Vec<ThreadState> = binding
            .iter()
            .enumerate()
            .map(|(tid, &cpu)| {
                let domain = machine.topology().domain_of_cpu(cpu);
                monitor.on_thread_start(tid, cpu, domain);
                ThreadState::new(tid, cpu, domain)
            })
            .collect();
        let num_threads = threads.len();
        Program {
            env: SharedEnv {
                machine,
                l3,
                space: AddressSpace::new(),
                funcs: FuncRegistry::new(),
                monitor,
                num_threads,
            },
            threads,
            mode,
            elapsed: 0,
            baseline_elapsed: 0,
            finished: false,
        }
    }

    pub fn machine(&self) -> &Machine {
        &self.env.machine
    }

    pub fn num_threads(&self) -> usize {
        self.env.num_threads
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Run `f` on the master thread (thread 0) inside a function frame named
    /// `name`; all other threads wait at the join.
    pub fn serial(&mut self, name: &str, f: impl FnOnce(&mut ThreadCtx<'_>)) {
        assert!(!self.finished, "program already finished");
        let starts: Vec<(u64, u64)> = self
            .threads
            .iter()
            .map(|t| (t.clock, t.monitor_cycles))
            .collect();
        {
            let env = &self.env;
            let st = &mut self.threads[0];
            let mut ctx = ThreadCtx { state: st, env };
            ctx.call(name, f);
        }
        self.join_region(&starts);
    }

    /// Run `f(tid, ctx)` on every thread inside a parallel-region frame
    /// named `name` (the OpenMP parallel region of the source program),
    /// then join.
    pub fn parallel(&mut self, name: &str, f: impl Fn(usize, &mut ThreadCtx<'_>) + Sync) {
        assert!(!self.finished, "program already finished");
        let starts: Vec<(u64, u64)> = self
            .threads
            .iter()
            .map(|t| (t.clock, t.monitor_cycles))
            .collect();
        let region_id = self.env.funcs.intern(name);
        match self.mode {
            ExecMode::Sequential => {
                let env = &self.env;
                for (tid, st) in self.threads.iter_mut().enumerate() {
                    let mut ctx = ThreadCtx { state: st, env };
                    ctx.enter_id(region_id, FrameKind::ParallelRegion);
                    f(tid, &mut ctx);
                    ctx.exit_frame();
                }
            }
            ExecMode::Parallel => {
                let env = &self.env;
                let f = &f;
                std::thread::scope(|s| {
                    for (tid, st) in self.threads.iter_mut().enumerate() {
                        s.spawn(move || {
                            let mut ctx = ThreadCtx { state: st, env };
                            ctx.enter_id(region_id, FrameKind::ParallelRegion);
                            f(tid, &mut ctx);
                            ctx.exit_frame();
                        });
                    }
                });
            }
        }
        self.join_region(&starts);
    }

    /// Fork-join barrier accounting: first charge memory-controller
    /// contention for the region (exactly, from the region's aggregate
    /// per-domain DRAM load — identical in sequential and parallel modes),
    /// then advance elapsed time by the slowest participant and
    /// synchronize every thread's clock to the barrier.
    fn join_region(&mut self, starts: &[(u64, u64)]) {
        self.charge_region_contention(starts.len());
        let mut max_delta = 0u64;
        let mut max_baseline_delta = 0u64;
        for (t, &(clock0, oh0)) in self.threads.iter().zip(starts) {
            let delta = t.clock - clock0;
            let oh_delta = t.monitor_cycles - oh0;
            max_delta = max_delta.max(delta);
            max_baseline_delta = max_baseline_delta.max(delta - oh_delta);
        }
        self.elapsed += max_delta;
        self.baseline_elapsed += max_baseline_delta;
        for t in &mut self.threads {
            t.clock = self.elapsed;
        }
    }

    /// Fork-join contention model (§2's bandwidth-saturation effect): a
    /// domain whose controller served far more than its fair share of the
    /// region's concurrent DRAM traffic serves it with inflated latency —
    /// up to ~5× when one domain takes everything. The overload factor of
    /// domain `d` is `share_d × active_threads / cpus_per_domain`, and
    /// every thread's clock is charged its own stalls scaled by the
    /// domain's multiplier.
    fn charge_region_contention(&mut self, _participants: usize) {
        let domains = self.env.machine.topology().domains();
        let mut totals = vec![0u64; domains];
        let mut active_threads = 0u64;
        for t in &self.threads {
            let mut any = false;
            for (d, s) in t.region_dram_stalls.iter().enumerate() {
                totals[d] += s;
                any |= *s > 0;
            }
            // Threads that did any work this region count as active
            // (concurrent) demand, DRAM-bound or not.
            if any || !t.region_dram_stalls.is_empty() {
                active_threads += 1;
            }
        }
        let grand: u64 = totals.iter().sum();
        if grand > 0 {
            let lat = self.env.machine.latency_model();
            let per_domain_cpus = self.env.machine.topology().cpus_per_domain() as f64;
            let mults: Vec<f64> = totals
                .iter()
                .map(|&c| {
                    let share = c as f64 / grand as f64;
                    let load = share * active_threads as f64 / per_domain_cpus;
                    lat.contention_multiplier_load(load)
                })
                .collect();
            for t in &mut self.threads {
                let extra: u64 = t
                    .region_dram_stalls
                    .iter()
                    .zip(&mults)
                    .map(|(&s, &m)| (s as f64 * (m - 1.0)).round() as u64)
                    .sum();
                t.clock += extra;
            }
        }
        for t in &mut self.threads {
            t.region_dram_stalls.clear();
        }
    }

    /// Declare the execution complete: notifies the monitor of final
    /// per-thread clocks. Further regions panic.
    pub fn finish(&mut self) -> ProgramStats {
        if !self.finished {
            self.finished = true;
            for t in &self.threads {
                self.env.monitor.on_thread_end(t.tid, t.clock);
            }
        }
        self.stats()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            elapsed_cycles: self.elapsed,
            baseline_cycles: self.baseline_elapsed,
            instructions: self.threads.iter().map(|t| t.instructions).sum(),
            mem_accesses: self.threads.iter().map(|t| t.mem_accesses).sum(),
        }
    }

    /// Per-thread instruction counts (ground truth for `lpi_NUMA`'s
    /// denominator via hardware counters, Eq. 3).
    pub fn per_thread_instructions(&self) -> Vec<u64> {
        self.threads.iter().map(|t| t.instructions).collect()
    }

    /// The function-name registry (needed to render call paths postmortem).
    pub fn func_registry(&self) -> &FuncRegistry {
        &self.env.funcs
    }

    /// Tear the program down, keeping only the function-name registry.
    /// Dropping the program here also drops its clone of the monitor `Arc`,
    /// so a profiler held behind `Arc` becomes uniquely owned again.
    pub fn into_func_registry(self) -> FuncRegistry {
        self.env.funcs
    }

    /// Approximate resident bytes of simulator structures (cache tag arrays,
    /// page map) — distinct from the *profiler's* footprint, which the paper
    /// bounds at 40 MB.
    pub fn simulator_footprint_bytes(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.l1.footprint_bytes() + t.l2.footprint_bytes())
            .sum::<usize>()
            + self.env.l3.footprint_bytes()
            + self.env.machine.page_map().footprint_bytes()
    }
}

/// Allocate a variable before any region runs (e.g. static data known at
/// load time): helper that runs a one-off serial region.
pub fn alloc_static(program: &mut Program, name: &str, bytes: u64) -> u64 {
    let mut addr = 0;
    program.serial("__static_init", |ctx| {
        addr = ctx.alloc_kind(
            name,
            bytes,
            numa_machine::PlacementPolicy::FirstTouch,
            VarKind::Static,
        );
    });
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemoryEvent;
    use crate::func::Frame;
    use numa_machine::{MachinePreset, PlacementPolicy};
    use parking_lot::Mutex;

    fn machine() -> Machine {
        Machine::from_preset(MachinePreset::AmdMagnyCours)
    }

    #[test]
    fn serial_region_runs_on_master() {
        let mut p = Program::unmonitored(machine(), 4, ExecMode::Sequential);
        p.serial("init", |ctx| {
            assert_eq!(ctx.tid(), 0);
            assert_eq!(ctx.domain().0, 0);
            ctx.compute(10);
        });
        let stats = p.finish();
        assert!(stats.elapsed_cycles >= 10);
        assert_eq!(stats.instructions, 10);
    }

    #[test]
    fn parallel_region_visits_every_thread() {
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let mut p = Program::unmonitored(machine(), 8, mode);
            let seen = Mutex::new(vec![false; 8]);
            p.parallel("work", |tid, ctx| {
                seen.lock()[tid] = true;
                ctx.compute(5);
            });
            assert!(seen.into_inner().iter().all(|&s| s));
        }
    }

    #[test]
    fn threads_spread_across_domains() {
        let p = Program::unmonitored(machine(), 8, ExecMode::Sequential);
        // Round-robin binding on 8 domains: thread i in domain i.
        let domains: Vec<u8> = (0..8)
            .map(|i| {
                p.machine()
                    .topology()
                    .domain_of_cpu(p.machine().topology().spread_binding(8)[i])
                    .0
            })
            .collect();
        assert_eq!(domains, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn elapsed_is_max_of_parallel_threads() {
        let mut p = Program::unmonitored(machine(), 4, ExecMode::Sequential);
        p.parallel("uneven", |tid, ctx| {
            ctx.compute((tid as u64 + 1) * 100);
        });
        let stats = p.finish();
        assert_eq!(stats.elapsed_cycles, 400);
        assert_eq!(stats.instructions, 100 + 200 + 300 + 400);
    }

    #[test]
    fn regions_accumulate_elapsed() {
        let mut p = Program::unmonitored(machine(), 2, ExecMode::Sequential);
        p.serial("a", |ctx| ctx.compute(50));
        p.parallel("b", |_, ctx| ctx.compute(100));
        assert_eq!(p.stats().elapsed_cycles, 150);
    }

    #[test]
    fn stack_underflow_is_a_counted_no_op() {
        struct Recorder(Mutex<Vec<usize>>);
        impl Monitor for Recorder {
            fn on_stack_underflow(&self, tid: usize) {
                self.0.lock().push(tid);
            }
        }
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let mut p = Program::new(machine(), 1, ExecMode::Sequential, rec.clone());
        p.serial("main", |ctx| {
            // A malformed replayed program: exits outnumber enters. The
            // first pop closes "main"; the next two underflow; the
            // region's own closing pop underflows a third time.
            ctx.exit_frame();
            ctx.exit_frame();
            ctx.exit_frame();
            assert_eq!(ctx.stack_underflows(), 2);
            assert!(ctx.stack().is_empty());
            // The context still works after the underflows.
            ctx.compute(5);
        });
        assert_eq!(rec.0.lock().as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn first_touch_allocation_and_access() {
        let mut p = Program::unmonitored(machine(), 2, ExecMode::Sequential);
        let mut base = 0;
        p.serial("alloc", |ctx| {
            base = ctx.alloc("arr", 2 * 4096, PlacementPolicy::FirstTouch);
            ctx.store(base, 8); // master (domain 0) touches first page
        });
        let m = p.machine().clone();
        assert_eq!(m.domain_of_addr(base).map(|d| d.0), Some(0));
        assert_eq!(m.domain_of_addr(base + 4096), None);
    }

    #[test]
    fn cache_hierarchy_produces_hits_on_reuse() {
        struct Recorder(Mutex<Vec<numa_machine::AccessLevel>>);
        impl Monitor for Recorder {
            fn on_access(&self, ev: &MemoryEvent, _stack: &[Frame]) -> u64 {
                self.0.lock().push(ev.level);
                0
            }
        }
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let mut p = Program::new(machine(), 1, ExecMode::Sequential, rec.clone());
        p.serial("main", |ctx| {
            let a = ctx.alloc("x", 4096, PlacementPolicy::FirstTouch);
            ctx.load(a, 8);
            ctx.load(a, 8);
            ctx.load(a + 8, 8); // same line
        });
        let levels = rec.0.lock().clone();
        assert_eq!(levels.len(), 3);
        assert!(levels[0].is_memory(), "cold access goes to DRAM");
        assert_eq!(levels[1], numa_machine::AccessLevel::L1);
        assert_eq!(levels[2], numa_machine::AccessLevel::L1);
    }

    #[test]
    fn remote_access_costs_more_than_local() {
        // Thread 1 (domain 1) reads data homed in domain 0.
        struct LatRec(Mutex<Vec<(bool, u32)>>);
        impl Monitor for LatRec {
            fn on_access(&self, ev: &MemoryEvent, _stack: &[Frame]) -> u64 {
                if ev.level.is_memory() {
                    self.0.lock().push((ev.is_remote_homed(), ev.latency));
                }
                0
            }
        }
        let rec = Arc::new(LatRec(Mutex::new(Vec::new())));
        let mut p = Program::new(machine(), 2, ExecMode::Sequential, rec.clone());
        let mut base = 0;
        p.serial("alloc", |ctx| {
            base = ctx.alloc(
                "arr",
                1 << 20,
                PlacementPolicy::Bind(numa_machine::DomainId(0)),
            );
        });
        p.parallel("read", |tid, ctx| {
            if tid == 1 {
                // Large strides so every access is a fresh DRAM access.
                for i in 0..64u64 {
                    ctx.load(base + i * 4096, 8);
                }
            }
        });
        p.parallel("read_local", |tid, ctx| {
            if tid == 0 {
                for i in 0..64u64 {
                    ctx.load(base + 2048 + i * 4096, 8);
                }
            }
        });
        let recs = rec.0.lock().clone();
        let remote: Vec<u32> = recs.iter().filter(|(r, _)| *r).map(|(_, l)| *l).collect();
        let local: Vec<u32> = recs.iter().filter(|(r, _)| !*r).map(|(_, l)| *l).collect();
        assert!(!remote.is_empty() && !local.is_empty());
        let avg = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(
            avg(&remote) > avg(&local) * 1.3,
            "remote {:.0} vs local {:.0}",
            avg(&remote),
            avg(&local)
        );
    }

    #[test]
    fn monitoring_overhead_is_separated() {
        struct Costly;
        impl Monitor for Costly {
            fn on_access(&self, _ev: &MemoryEvent, _stack: &[Frame]) -> u64 {
                100
            }
        }
        let mut p = Program::new(machine(), 1, ExecMode::Sequential, Arc::new(Costly));
        p.serial("main", |ctx| {
            let a = ctx.alloc("x", 4096, PlacementPolicy::FirstTouch);
            for _ in 0..10 {
                ctx.load(a, 8);
            }
        });
        let stats = p.finish();
        assert_eq!(stats.elapsed_cycles - stats.baseline_cycles, 1000);
        assert!(stats.overhead_fraction() > 0.0);
    }

    #[test]
    fn parallel_and_sequential_agree_on_instruction_counts() {
        let run = |mode| {
            let mut p = Program::unmonitored(machine(), 8, mode);
            let mut base = 0;
            p.serial("alloc", |ctx| {
                base = ctx.alloc("a", 1 << 20, PlacementPolicy::interleave_all(8));
            });
            p.parallel("sweep", |tid, ctx| {
                let chunk = (1 << 20) / 8u64;
                ctx.load_range(base + tid as u64 * chunk, chunk / 64, 8);
            });
            p.finish()
        };
        let seq = run(ExecMode::Sequential);
        let par = run(ExecMode::Parallel);
        assert_eq!(seq.instructions, par.instructions);
        assert_eq!(seq.mem_accesses, par.mem_accesses);
    }

    #[test]
    fn call_stack_nesting_visible_to_monitor() {
        struct StackDepth(Mutex<Vec<usize>>);
        impl Monitor for StackDepth {
            fn on_access(&self, _ev: &MemoryEvent, stack: &[Frame]) -> u64 {
                self.0.lock().push(stack.len());
                0
            }
        }
        let rec = Arc::new(StackDepth(Mutex::new(Vec::new())));
        let mut p = Program::new(machine(), 1, ExecMode::Sequential, rec.clone());
        p.serial("main", |ctx| {
            let a = ctx.alloc("x", 4096, PlacementPolicy::FirstTouch);
            ctx.load(a, 8); // depth: main
            ctx.call("inner", |ctx| {
                ctx.load(a, 8); // depth: main > inner
            });
        });
        assert_eq!(&*rec.0.lock(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn regions_after_finish_panic() {
        let mut p = Program::unmonitored(machine(), 1, ExecMode::Sequential);
        p.finish();
        p.serial("late", |_| {});
    }
}
