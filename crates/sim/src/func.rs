//! Function name interning and call-stack frames.
//!
//! Workloads announce their call structure with `ctx.call("name", |ctx| …)`;
//! the engine maintains a per-thread stack of [`Frame`]s that monitors read
//! when attributing samples to calling contexts (the paper's code-centric
//! attribution unwinds the call stack per sample; here the stack is already
//! explicit).

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Interned function (or region) name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// What a stack frame represents. Parallel regions are flagged so the
/// analyzer can scope address-centric views to a single OpenMP-style region
/// (as Figures 5 and 7 do).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FrameKind {
    /// An ordinary function call.
    Function,
    /// An OpenMP-style parallel region body.
    ParallelRegion,
    /// A loop inside a function (finer-grain code-centric attribution).
    Loop,
}

/// One entry of a thread's call stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Frame {
    pub func: FuncId,
    pub kind: FrameKind,
}

/// Thread-safe interner mapping names to [`FuncId`]s.
///
/// Lookup of an existing name takes a read lock only; workloads can also
/// pre-intern with [`FuncRegistry::intern`] and use
/// `ThreadCtx::enter_id` to keep the hot path lock-free-ish.
#[derive(Default)]
pub struct FuncRegistry {
    inner: RwLock<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, FuncId>,
}

impl FuncRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (stable for the registry's lifetime).
    pub fn intern(&self, name: &str) -> FuncId {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = FuncId(inner.names.len() as u32);
        let arc: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&arc));
        inner.by_name.insert(arc, id);
        id
    }

    /// Name for an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this registry.
    pub fn name(&self, id: FuncId) -> Arc<str> {
        Arc::clone(&self.inner.read().names[id.0 as usize])
    }

    /// Id for a name, if already interned.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.inner.read().by_name.get(name).copied()
    }

    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render a stack as `a > b > c` for reports and tests.
    pub fn render_stack(&self, stack: &[Frame]) -> String {
        stack
            .iter()
            .map(|f| self.name(f.func).to_string())
            .collect::<Vec<_>>()
            .join(" > ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let r = FuncRegistry::new();
        let a = r.intern("main");
        let b = r.intern("main");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        assert_eq!(&*r.name(a), "main");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let r = FuncRegistry::new();
        let a = r.intern("a");
        let b = r.intern("b");
        assert_ne!(a, b);
        assert_eq!(r.lookup("a"), Some(a));
        assert_eq!(r.lookup("missing"), None);
    }

    #[test]
    fn render_stack_joins_names() {
        let r = FuncRegistry::new();
        let main = r.intern("main");
        let f = r.intern("f");
        let stack = [
            Frame {
                func: main,
                kind: FrameKind::Function,
            },
            Frame {
                func: f,
                kind: FrameKind::ParallelRegion,
            },
        ];
        assert_eq!(r.render_stack(&stack), "main > f");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let r = Arc::new(FuncRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| r.intern(&format!("f{}", i % 10)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<FuncId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in &results[1..] {
            assert_eq!(w, &results[0]);
        }
        assert_eq!(r.len(), 10);
    }
}
