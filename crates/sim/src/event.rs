//! Events the engine delivers to monitors.

use numa_machine::{AccessLevel, CpuId, DomainId, PlacementPolicy};
use serde::{Deserialize, Serialize};

/// Kind of data object, for data-centric attribution. The paper handles heap
/// and static variables and lists stack variables as future work; the engine
/// tags all three so the profiler can monitor stack data too.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum VarKind {
    Heap,
    Static,
    Stack,
}

impl VarKind {
    pub fn name(self) -> &'static str {
        match self {
            VarKind::Heap => "heap",
            VarKind::Static => "static",
            VarKind::Stack => "stack",
        }
    }
}

/// One memory access, fully resolved by the machine model.
///
/// This is the simulated analogue of one address-sampling record: it carries
/// the effective address, the precise "instruction pointer" (innermost frame
/// plus line marker, delivered alongside via the call stack), the access
/// latency, and the data source — everything §3 lists as required for NUMA
/// profiling. Monitors see *every* access; sampling mechanisms decide which
/// become samples.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryEvent {
    /// Software thread index (0-based within the program).
    pub tid: usize,
    /// Hardware thread executing the access.
    pub cpu: CpuId,
    /// NUMA domain of `cpu`.
    pub thread_domain: DomainId,
    /// Effective address.
    pub addr: u64,
    /// Access width in bytes.
    pub size: u32,
    pub is_store: bool,
    /// Where the access was satisfied.
    pub level: AccessLevel,
    /// Home domain of the backing page (`move_pages` answer).
    pub home_domain: DomainId,
    /// Cycles the access took, including contention inflation.
    pub latency: u32,
    /// Source-line marker set by the workload via `ThreadCtx::at_line`.
    pub line: u32,
    /// True if this access bound the page (its first touch since
    /// allocation).
    pub first_touch_page: bool,
    /// The accessing thread's virtual clock when the access issued —
    /// lets monitors build time-series (trace) measurements.
    pub clock: u64,
}

impl MemoryEvent {
    /// Did this access touch data homed outside the accessing thread's
    /// domain? This is the predicate behind the `M_r` metric (§4.1) — note
    /// it deliberately ignores `level`: a cache hit on remotely-homed data
    /// still counts, which is the bias the paper's `lpi_NUMA` corrects for.
    pub fn is_remote_homed(&self) -> bool {
        self.home_domain != self.thread_domain
    }
}

/// An allocation announced to monitors.
#[derive(Clone, Debug)]
pub struct AllocInfo<'a> {
    pub tid: usize,
    /// Variable name as written in the source program.
    pub name: &'a str,
    pub addr: u64,
    pub bytes: u64,
    pub kind: VarKind,
    pub policy: &'a PlacementPolicy,
}

/// A first-touch page fault (the simulated SIGSEGV of §6), delivered
/// synchronously before the faulting access completes.
#[derive(Clone, Copy, Debug)]
pub struct PageFaultEvent {
    pub tid: usize,
    pub cpu: CpuId,
    pub thread_domain: DomainId,
    /// Faulting data address (the `siginfo` address of §6).
    pub addr: u64,
    pub is_store: bool,
    pub line: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread_domain: u8, home: u8) -> MemoryEvent {
        MemoryEvent {
            tid: 0,
            cpu: CpuId(0),
            thread_domain: DomainId(thread_domain),
            addr: 0x1000,
            size: 8,
            is_store: false,
            level: AccessLevel::L1,
            home_domain: DomainId(home),
            latency: 4,
            line: 0,
            first_touch_page: false,
            clock: 0,
        }
    }

    #[test]
    fn remote_homed_ignores_cache_level() {
        // L1 hit on remote-homed data is still "remote" for M_r — the bias
        // the paper documents in §4.1.
        assert!(ev(0, 1).is_remote_homed());
        assert!(!ev(2, 2).is_remote_homed());
    }
}
