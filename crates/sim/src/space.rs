//! Virtual address space allocator for simulated programs.
//!
//! A simple monotone bump allocator: addresses are never reused, which keeps
//! every sampled address unambiguous for the profiler's postmortem analysis
//! (real HPCToolkit must version reused ranges; simulation lets us sidestep
//! that without changing what the profiler computes).

use numa_machine::PAGE_SIZE;
use std::sync::atomic::{AtomicU64, Ordering};

/// Base of the simulated address space (arbitrary, nonzero so that 0 stays
/// an obviously-invalid address).
pub const SPACE_BASE: u64 = 0x1000_0000;

/// Minimum alignment of any allocation (one cache line).
pub const MIN_ALIGN: u64 = 64;

/// Monotone virtual-address allocator shared by all threads of a program.
pub struct AddressSpace {
    next: AtomicU64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace {
            next: AtomicU64::new(SPACE_BASE),
        }
    }

    /// Reserve `bytes` of address space. Allocations of a page or more are
    /// page-aligned (like `malloc` for large requests), so whole-variable
    /// page protection and per-page placement behave as they would for real
    /// large arrays; smaller allocations are cache-line aligned.
    pub fn allocate(&self, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-size allocation");
        let align = if bytes >= PAGE_SIZE {
            PAGE_SIZE
        } else {
            MIN_ALIGN
        };
        // fetch_update keeps the bump atomic under concurrent allocation.
        let mut base = 0;
        self.next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                base = cur.next_multiple_of(align);
                Some(base + bytes)
            })
            .expect("fetch_update closure always returns Some");
        base
    }

    /// Total address space consumed so far.
    pub fn used_bytes(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - SPACE_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_allocations_are_page_aligned() {
        let s = AddressSpace::new();
        s.allocate(100); // misalign the bump pointer
        let a = s.allocate(PAGE_SIZE * 3);
        assert_eq!(a % PAGE_SIZE, 0);
    }

    #[test]
    fn small_allocations_are_line_aligned_and_disjoint() {
        let s = AddressSpace::new();
        let a = s.allocate(10);
        let b = s.allocate(10);
        assert_eq!(a % MIN_ALIGN, 0);
        assert_eq!(b % MIN_ALIGN, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn addresses_never_reused() {
        let s = AddressSpace::new();
        let mut last = 0;
        for _ in 0..100 {
            let a = s.allocate(8);
            assert!(a > last);
            last = a;
        }
    }

    #[test]
    fn concurrent_allocations_never_overlap() {
        use std::sync::Arc;
        let s = Arc::new(AddressSpace::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..1000)
                    .map(|i| (s.allocate(64 + i % 128), 64 + i % 128))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<(u64, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?} {:?}", w[0], w[1]);
        }
    }
}
