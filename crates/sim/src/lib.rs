//! Execution engine for simulated multithreaded programs on a NUMA machine.
//!
//! Workloads are Rust closures that narrate their execution to the engine
//! through a [`ThreadCtx`]: call structure (`call`/`loop_scope`/parallel
//! regions), data objects (`alloc` with a placement policy), and individual
//! memory accesses (`load`/`store`) plus non-memory work (`compute`). The
//! engine resolves each access through private L1/L2 caches, the per-domain
//! shared L3s, and the machine's page map / latency / contention models,
//! producing a [`MemoryEvent`] stream that a [`Monitor`] (the profiler)
//! observes.
//!
//! Key simplifications relative to real hardware, none of which change what
//! the NUMA profiler observes qualitatively:
//!
//! * no cache-coherence invalidations (no data values are simulated, so
//!   coherence could only perturb timing second-order);
//! * 1-IPC in-order cores — latency simply accumulates on a per-thread
//!   virtual clock;
//! * SMT threads get private L1/L2 (real SMT siblings share them).

pub mod cache;
pub mod event;
pub mod func;
pub mod l3;
pub mod monitor;
pub mod program;
pub mod space;
pub mod thread;

pub use cache::{Cache, CacheConfig, LINE_SHIFT, LINE_SIZE};
pub use event::{AllocInfo, MemoryEvent, PageFaultEvent, VarKind};
pub use func::{Frame, FrameKind, FuncId, FuncRegistry};
pub use l3::{L3Complex, SharedL3};
pub use monitor::{Monitor, NullMonitor};
pub use program::{alloc_static, ExecMode, Program, ProgramStats, SharedEnv};
pub use space::AddressSpace;
pub use thread::{ThreadCtx, ThreadState, ALLOC_BASE_COST, FAULT_DELIVERY_COST};
