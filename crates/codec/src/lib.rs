//! Binary columnar encoding of [`NumaProfile`] — the one profile codec
//! every layer speaks.
//!
//! The JSON profile format is the *canonical* form: content ids are (and
//! remain) the FNV-1a hash of the canonical JSON, so mixed-format
//! corpora dedup and aggregate identically. This crate provides the
//! *transport and storage* form: a versioned, length-delimited,
//! sectioned binary layout that is ~3-4x smaller than the JSON and
//! decodes without any text parsing. The WAL, snapshots, the wire
//! protocol (`caps::BINARY_CODEC`), and streaming chunks all carry these
//! bytes; JSON survives as the interchange fallback for old peers.
//!
//! ## Layout (all integers big-endian)
//!
//! ```text
//! offset 0..4   magic    b"NPCB"
//! offset 4..6   version  u16 — format revision (currently 1)
//! offset 6..8   flags    u16 — must be zero
//! offset 8..    sections
//! ```
//!
//! Each section is `u8 id | u32 len | bytes`. Unknown section ids are
//! skipped on decode (forward compatibility); known ids must appear at
//! most once. A full profile carries five sections:
//!
//! * **RUN** (1): mechanism, capability bits, domain count, machine name.
//! * **FUNCS** (2): the interned function-name table.
//! * **VARS** (3): one row per monitored variable.
//! * **THREADS** (4): thread count, then *fixed-width scalar columns*
//!   (tids, cpus, domains, instructions, numa_events, stack_underflows —
//!   contiguous per metric, so readers can hand column slices straight
//!   to the engine without materializing per-thread structs), then one
//!   length-prefixed variable-size body per thread (totals, CCT,
//!   per-variable metrics, address ranges, trace).
//! * **FIRST_TOUCH** (5): the first-touch records.
//!
//! A streaming *thread batch* ([`encode_threads`]) is the same container
//! carrying only a THREADS section.
//!
//! ## Decode discipline
//!
//! Decoding never trusts a length or count it has not bounded against
//! the bytes actually present: section lengths are clamped to the
//! remaining buffer, fixed-width columns are validated as one
//! `count * width` check, and element counts only pre-reserve capacity
//! up to `remaining / min_element_size`. Malformed input yields a typed
//! [`CodecError`] — never a panic, never an attacker-sized allocation
//! (the same discipline as the WAL scanner's `body_len` clamp).

use numa_machine::{CpuId, DomainId};
use numa_profiler::{
    Cct, CctNode, FirstTouchRecord, MetricSet, NodeKey, NumaProfile, RangeKey, RangeScope,
    RangeStat, ThreadProfile, Trace, TracePoint, VarId, VarRecord,
};
use numa_sampling::{Capabilities, MechanismKind};
use numa_sim::{Frame, FrameKind, FuncId, VarKind};
use std::fmt;

/// Magic of every numa-codec buffer.
pub const CODEC_MAGIC: [u8; 4] = *b"NPCB";

/// Current format revision.
pub const CODEC_VERSION: u16 = 1;

/// Container header size (magic + version + flags).
pub const CODEC_HEADER_LEN: usize = 8;

const SEC_RUN: u8 = 1;
const SEC_FUNCS: u8 = 2;
const SEC_VARS: u8 = 3;
const SEC_THREADS: u8 = 4;
const SEC_FIRST_TOUCH: u8 = 5;

/// Why a buffer failed to decode. Every variant is a rejected input,
/// never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field being read.
    Truncated,
    /// The first four bytes are not [`CODEC_MAGIC`].
    BadMagic,
    /// The header carries a version this build does not read.
    UnsupportedVersion(u16),
    /// Framing or content inconsistency (bad enum tag, duplicate or
    /// missing section, count/length mismatch, invalid UTF-8, ...).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadMagic => write!(f, "not a numa-codec buffer (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "codec version {v} not supported (this build reads 1..={CODEC_VERSION})"
                )
            }
            CodecError::Malformed(what) => write!(f, "malformed codec buffer: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------
// Primitive reader/writer
// ---------------------------------------------------------------------

/// Forward-only bounds-checked reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-length-prefixed UTF-8 string.
    fn str_field(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Malformed("invalid utf-8"))
    }

    /// Capacity to pre-reserve for `count` elements of at least
    /// `min_size` bytes each: bounded by the bytes actually remaining,
    /// so a corrupt count can never size an allocation.
    fn clamped_capacity(&self, count: usize, min_size: usize) -> usize {
        count.min(self.remaining() / min_size.max(1))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string fits u32"));
    out.extend_from_slice(s.as_bytes());
}

/// Append one section: id, length placeholder, body, then backpatch the
/// length.
fn section(out: &mut Vec<u8>, id: u8, body: impl FnOnce(&mut Vec<u8>)) {
    out.push(id);
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    body(out);
    let len = u32::try_from(out.len() - at - 4).expect("section fits u32");
    out[at..at + 4].copy_from_slice(&len.to_be_bytes());
}

// ---------------------------------------------------------------------
// Leaf encoders/decoders
// ---------------------------------------------------------------------

fn mechanism_tag(m: MechanismKind) -> u8 {
    match m {
        MechanismKind::Ibs => 0,
        MechanismKind::Mrk => 1,
        MechanismKind::Pebs => 2,
        MechanismKind::Dear => 3,
        MechanismKind::PebsLl => 4,
        MechanismKind::SoftIbs => 5,
    }
}

fn mechanism_from(tag: u8) -> Result<MechanismKind> {
    Ok(match tag {
        0 => MechanismKind::Ibs,
        1 => MechanismKind::Mrk,
        2 => MechanismKind::Pebs,
        3 => MechanismKind::Dear,
        4 => MechanismKind::PebsLl,
        5 => MechanismKind::SoftIbs,
        _ => return Err(CodecError::Malformed("unknown mechanism")),
    })
}

fn capability_bits(c: Capabilities) -> u8 {
    (c.samples_all_instructions as u8)
        | (c.latency as u8) << 1
        | (c.data_source as u8) << 2
        | (c.precise_ip as u8) << 3
}

fn capabilities_from(bits: u8) -> Result<Capabilities> {
    if bits & !0b1111 != 0 {
        return Err(CodecError::Malformed("unknown capability bits"));
    }
    Ok(Capabilities {
        samples_all_instructions: bits & 1 != 0,
        latency: bits & 2 != 0,
        data_source: bits & 4 != 0,
        precise_ip: bits & 8 != 0,
    })
}

fn put_frame(out: &mut Vec<u8>, f: Frame) {
    put_u32(out, f.func.0);
    out.push(match f.kind {
        FrameKind::Function => 0,
        FrameKind::ParallelRegion => 1,
        FrameKind::Loop => 2,
    });
}

fn read_frame(r: &mut Reader<'_>) -> Result<Frame> {
    let func = FuncId(r.u32()?);
    let kind = match r.u8()? {
        0 => FrameKind::Function,
        1 => FrameKind::ParallelRegion,
        2 => FrameKind::Loop,
        _ => return Err(CodecError::Malformed("unknown frame kind")),
    };
    Ok(Frame { func, kind })
}

/// Frame encoded size (func u32 + kind u8).
const FRAME_LEN: usize = 5;

fn put_path(out: &mut Vec<u8>, path: &[Frame]) {
    put_u32(out, u32::try_from(path.len()).expect("path fits u32"));
    for &f in path {
        put_frame(out, f);
    }
}

fn read_path(r: &mut Reader<'_>) -> Result<Vec<Frame>> {
    let n = r.u32()? as usize;
    let mut path = Vec::with_capacity(r.clamped_capacity(n, FRAME_LEN));
    for _ in 0..n {
        path.push(read_frame(r)?);
    }
    Ok(path)
}

const LEVELS: usize = 6;

/// Minimum encoded [`MetricSet`] size (empty `per_domain`).
const METRICS_MIN_LEN: usize = 8 * 2 + 4 + 8 * 8 + LEVELS * 8;

fn put_metrics(out: &mut Vec<u8>, m: &MetricSet) {
    put_u64(out, m.m_local);
    put_u64(out, m.m_remote);
    put_u32(
        out,
        u32::try_from(m.per_domain.len()).expect("domains fit u32"),
    );
    for &d in &m.per_domain {
        put_u64(out, d);
    }
    put_u64(out, m.latency_total);
    put_u64(out, m.latency_remote);
    put_u64(out, m.latency_samples);
    put_u64(out, m.samples_mem);
    put_u64(out, m.samples_instr);
    put_u64(out, m.loads);
    put_u64(out, m.stores);
    for &h in &m.level_hist {
        put_u64(out, h);
    }
    put_u64(out, m.first_touch_samples);
}

fn read_metrics(r: &mut Reader<'_>) -> Result<MetricSet> {
    let m_local = r.u64()?;
    let m_remote = r.u64()?;
    let nd = r.u32()? as usize;
    let domain_bytes = nd
        .checked_mul(8)
        .ok_or(CodecError::Malformed("domain count"))?;
    let raw = r.take(domain_bytes)?;
    let per_domain = raw
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
        .collect();
    let latency_total = r.u64()?;
    let latency_remote = r.u64()?;
    let latency_samples = r.u64()?;
    let samples_mem = r.u64()?;
    let samples_instr = r.u64()?;
    let loads = r.u64()?;
    let stores = r.u64()?;
    let mut level_hist = [0u64; LEVELS];
    for slot in &mut level_hist {
        *slot = r.u64()?;
    }
    let first_touch_samples = r.u64()?;
    Ok(MetricSet {
        m_local,
        m_remote,
        per_domain,
        latency_total,
        latency_remote,
        latency_samples,
        samples_mem,
        samples_instr,
        loads,
        stores,
        level_hist,
        first_touch_samples,
    })
}

fn put_var(out: &mut Vec<u8>, v: &VarRecord) {
    put_u32(out, v.id.0);
    put_str(out, &v.name);
    put_u64(out, v.addr);
    put_u64(out, v.bytes);
    out.push(match v.kind {
        VarKind::Heap => 0,
        VarKind::Static => 1,
        VarKind::Stack => 2,
    });
    put_u64(out, v.alloc_tid as u64);
    put_u16(out, v.bins);
    out.push(v.freed as u8);
    put_path(out, &v.alloc_path);
}

/// Minimum encoded [`VarRecord`] size (empty name and path).
const VAR_MIN_LEN: usize = 4 + 4 + 8 + 8 + 1 + 8 + 2 + 1 + 4;

fn read_var(r: &mut Reader<'_>) -> Result<VarRecord> {
    let id = VarId(r.u32()?);
    let name = r.str_field()?.to_string();
    let addr = r.u64()?;
    let bytes = r.u64()?;
    let kind = match r.u8()? {
        0 => VarKind::Heap,
        1 => VarKind::Static,
        2 => VarKind::Stack,
        _ => return Err(CodecError::Malformed("unknown variable kind")),
    };
    let alloc_tid = read_usize(r)?;
    let bins = r.u16()?;
    let freed = read_bool(r)?;
    let alloc_path = read_path(r)?;
    Ok(VarRecord {
        id,
        name,
        addr,
        bytes,
        kind,
        alloc_tid,
        alloc_path,
        bins,
        freed,
    })
}

/// Minimum encoded [`FirstTouchRecord`] size (empty path).
const FIRST_TOUCH_MIN_LEN: usize = 4 + 8 + 2 + 1 + 8 + 1 + 4 + 4;

fn put_first_touch(out: &mut Vec<u8>, ft: &FirstTouchRecord) {
    put_u32(out, ft.var.0);
    put_u64(out, ft.tid as u64);
    put_u16(out, ft.cpu.0);
    out.push(ft.domain.0);
    put_u64(out, ft.addr);
    out.push(ft.is_store as u8);
    put_u32(out, ft.line);
    put_path(out, &ft.path);
}

fn read_first_touch(r: &mut Reader<'_>) -> Result<FirstTouchRecord> {
    let var = VarId(r.u32()?);
    let tid = read_usize(r)?;
    let cpu = CpuId(r.u16()?);
    let domain = DomainId(r.u8()?);
    let addr = r.u64()?;
    let is_store = read_bool(r)?;
    let line = r.u32()?;
    let path = read_path(r)?;
    Ok(FirstTouchRecord {
        var,
        tid,
        cpu,
        domain,
        addr,
        is_store,
        line,
        path,
    })
}

fn read_usize(r: &mut Reader<'_>) -> Result<usize> {
    usize::try_from(r.u64()?).map_err(|_| CodecError::Malformed("value exceeds usize"))
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Malformed("invalid bool")),
    }
}

// ---------------------------------------------------------------------
// Thread bodies
// ---------------------------------------------------------------------

fn put_thread_body(out: &mut Vec<u8>, t: &ThreadProfile) {
    put_metrics(out, &t.totals);
    // CCT: domain count, node count, then nodes in id order (root
    // first, parents before children — the tree's append-only
    // invariant).
    put_u32(
        out,
        u32::try_from(t.cct.domains()).expect("domains fit u32"),
    );
    put_u32(out, u32::try_from(t.cct.len()).expect("cct fits u32"));
    for node in t.cct.nodes() {
        match node.key {
            NodeKey::Root => out.push(0),
            NodeKey::Frame(f) => {
                out.push(1);
                put_frame(out, f);
            }
            NodeKey::Line(line) => {
                out.push(2);
                put_u32(out, line);
            }
        }
        put_u32(out, node.parent);
        put_metrics(out, &node.metrics);
    }
    put_u32(
        out,
        u32::try_from(t.var_metrics.len()).expect("var metrics fit u32"),
    );
    for (var, m) in &t.var_metrics {
        put_u32(out, var.0);
        put_metrics(out, m);
    }
    put_u32(out, u32::try_from(t.ranges.len()).expect("ranges fit u32"));
    for (key, stat) in &t.ranges {
        put_u32(out, key.var.0);
        put_u16(out, key.bin);
        match key.scope {
            RangeScope::Program => out.push(0),
            RangeScope::Region(f) => {
                out.push(1);
                put_u32(out, f.0);
            }
        }
        put_u64(out, stat.min_addr);
        put_u64(out, stat.max_addr);
        put_u64(out, stat.count);
        put_u64(out, stat.latency);
        put_u64(out, stat.latency_remote);
    }
    put_u64(out, t.trace.interval());
    put_u32(out, u32::try_from(t.trace.len()).expect("trace fits u32"));
    for p in t.trace.points() {
        put_u64(out, p.clock);
        put_u64(out, p.samples);
        put_u64(out, p.m_remote);
        put_u64(out, p.latency_remote);
    }
}

/// Minimum encoded CCT node size (root tag).
const NODE_MIN_LEN: usize = 1 + 4 + METRICS_MIN_LEN;

fn read_cct(r: &mut Reader<'_>) -> Result<Cct> {
    let domains = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(r.clamped_capacity(count, NODE_MIN_LEN));
    for _ in 0..count {
        let key = match r.u8()? {
            0 => NodeKey::Root,
            1 => NodeKey::Frame(read_frame(r)?),
            2 => NodeKey::Line(r.u32()?),
            _ => return Err(CodecError::Malformed("unknown cct node key")),
        };
        let parent = r.u32()?;
        let metrics = read_metrics(r)?;
        nodes.push(CctNode {
            key,
            parent,
            metrics,
        });
    }
    Cct::from_parts(nodes, domains).ok_or(CodecError::Malformed("invalid cct structure"))
}

/// Decode one thread body paired with its scalar-column row.
fn read_thread_body(body: &[u8], scalars: ThreadScalarRow) -> Result<ThreadProfile> {
    let mut r = Reader::new(body);
    let totals = read_metrics(&mut r)?;
    let cct = read_cct(&mut r)?;

    let nv = r.u32()? as usize;
    let mut var_metrics = Vec::with_capacity(r.clamped_capacity(nv, 4 + METRICS_MIN_LEN));
    for _ in 0..nv {
        let var = VarId(r.u32()?);
        let m = read_metrics(&mut r)?;
        var_metrics.push((var, m));
    }

    let nr = r.u32()? as usize;
    let mut ranges = Vec::with_capacity(r.clamped_capacity(nr, 4 + 2 + 1 + 5 * 8));
    for _ in 0..nr {
        let var = VarId(r.u32()?);
        let bin = r.u16()?;
        let scope = match r.u8()? {
            0 => RangeScope::Program,
            1 => RangeScope::Region(FuncId(r.u32()?)),
            _ => return Err(CodecError::Malformed("unknown range scope")),
        };
        let stat = RangeStat {
            min_addr: r.u64()?,
            max_addr: r.u64()?,
            count: r.u64()?,
            latency: r.u64()?,
            latency_remote: r.u64()?,
        };
        ranges.push((RangeKey { var, bin, scope }, stat));
    }

    let interval = r.u64()?;
    let np = r.u32()? as usize;
    let mut points = Vec::with_capacity(r.clamped_capacity(np, 4 * 8));
    for _ in 0..np {
        points.push(TracePoint {
            clock: r.u64()?,
            samples: r.u64()?,
            m_remote: r.u64()?,
            latency_remote: r.u64()?,
        });
    }
    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing bytes in thread body"));
    }
    Ok(ThreadProfile {
        tid: scalars.tid,
        cpu: scalars.cpu,
        domain: scalars.domain,
        cct,
        totals,
        instructions: scalars.instructions,
        numa_events: scalars.numa_events,
        var_metrics,
        ranges,
        trace: Trace::from_parts(interval, points),
        stack_underflows: scalars.stack_underflows,
    })
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Borrowed fields of a profile — what [`encode_parts`] serializes.
/// Streaming header chunks encode these with an empty thread slice.
pub struct ProfileParts<'a> {
    pub mechanism: MechanismKind,
    pub capabilities: Capabilities,
    pub domains: usize,
    pub machine_name: &'a str,
    pub func_names: &'a [String],
    pub vars: &'a [VarRecord],
    pub threads: &'a [ThreadProfile],
    pub first_touches: &'a [FirstTouchRecord],
}

impl<'a> From<&'a NumaProfile> for ProfileParts<'a> {
    fn from(p: &'a NumaProfile) -> Self {
        ProfileParts {
            mechanism: p.mechanism,
            capabilities: p.capabilities,
            domains: p.domains,
            machine_name: &p.machine_name,
            func_names: &p.func_names,
            vars: &p.vars,
            threads: &p.threads,
            first_touches: &p.first_touches,
        }
    }
}

fn put_container_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&CODEC_MAGIC);
    put_u16(out, CODEC_VERSION);
    put_u16(out, 0); // flags
}

fn put_threads_section(out: &mut Vec<u8>, threads: &[ThreadProfile]) {
    section(out, SEC_THREADS, |out| {
        put_u32(out, u32::try_from(threads.len()).expect("threads fit u32"));
        // Fixed-width scalar columns, one metric at a time, so each
        // column is a contiguous slice a reader can use in place.
        for t in threads {
            put_u64(out, t.tid as u64);
        }
        for t in threads {
            put_u16(out, t.cpu.0);
        }
        for t in threads {
            out.push(t.domain.0);
        }
        for t in threads {
            put_u64(out, t.instructions);
        }
        for t in threads {
            put_u64(out, t.numa_events);
        }
        for t in threads {
            put_u64(out, t.stack_underflows);
        }
        // Variable-size per-thread bodies, each length-prefixed.
        for t in threads {
            let at = out.len();
            out.extend_from_slice(&[0u8; 4]);
            put_thread_body(out, t);
            let len = u32::try_from(out.len() - at - 4).expect("thread body fits u32");
            out[at..at + 4].copy_from_slice(&len.to_be_bytes());
        }
    });
}

/// Encode a profile's borrowed parts. See [`encode_profile`].
pub fn encode_parts(p: &ProfileParts<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    put_container_header(&mut out);
    section(&mut out, SEC_RUN, |out| {
        out.push(mechanism_tag(p.mechanism));
        out.push(capability_bits(p.capabilities));
        put_u32(out, u32::try_from(p.domains).expect("domains fit u32"));
        put_str(out, p.machine_name);
    });
    section(&mut out, SEC_FUNCS, |out| {
        put_u32(
            out,
            u32::try_from(p.func_names.len()).expect("funcs fit u32"),
        );
        for name in p.func_names {
            put_str(out, name);
        }
    });
    section(&mut out, SEC_VARS, |out| {
        put_u32(out, u32::try_from(p.vars.len()).expect("vars fit u32"));
        for v in p.vars {
            put_var(out, v);
        }
    });
    put_threads_section(&mut out, p.threads);
    section(&mut out, SEC_FIRST_TOUCH, |out| {
        put_u32(
            out,
            u32::try_from(p.first_touches.len()).expect("first touches fit u32"),
        );
        for ft in p.first_touches {
            put_first_touch(out, ft);
        }
    });
    out
}

/// Encode a full profile to the binary format.
pub fn encode_profile(p: &NumaProfile) -> Vec<u8> {
    encode_parts(&ProfileParts::from(p))
}

/// Encode a streaming thread batch: a container carrying only a THREADS
/// section. The inverse of [`decode_threads`].
pub fn encode_threads(threads: &[ThreadProfile]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    put_container_header(&mut out);
    put_threads_section(&mut out, threads);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// One thread's row across the THREADS section's scalar columns.
#[derive(Clone, Copy, Debug)]
struct ThreadScalarRow {
    tid: usize,
    cpu: CpuId,
    domain: DomainId,
    instructions: u64,
    numa_events: u64,
    stack_underflows: u64,
}

/// Zero-copy view of a THREADS section: borrowed column slices plus the
/// per-thread body slices, validated but not decoded.
struct ThreadsView<'a> {
    count: usize,
    tids: &'a [u8],
    cpus: &'a [u8],
    domains: &'a [u8],
    instructions: &'a [u8],
    numa_events: &'a [u8],
    stack_underflows: &'a [u8],
    bodies: Vec<&'a [u8]>,
}

fn be_u64_column(raw: &[u8]) -> impl Iterator<Item = u64> + '_ {
    raw.chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
}

impl<'a> ThreadsView<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let count = r.u32()? as usize;
        let wide = |w: usize| {
            count
                .checked_mul(w)
                .ok_or(CodecError::Malformed("thread count"))
        };
        let tids = r.take(wide(8)?)?;
        let cpus = r.take(wide(2)?)?;
        let domains = r.take(wide(1)?)?;
        let instructions = r.take(wide(8)?)?;
        let numa_events = r.take(wide(8)?)?;
        let stack_underflows = r.take(wide(8)?)?;
        let mut bodies = Vec::with_capacity(r.clamped_capacity(count, 4));
        for _ in 0..count {
            let len = r.u32()? as usize;
            bodies.push(r.take(len)?);
        }
        if !r.is_empty() {
            return Err(CodecError::Malformed("trailing bytes in threads section"));
        }
        Ok(ThreadsView {
            count,
            tids,
            cpus,
            domains,
            instructions,
            numa_events,
            stack_underflows,
            bodies,
        })
    }

    fn scalar_row(&self, i: usize) -> Result<ThreadScalarRow> {
        let tid = usize::try_from(u64::from_be_bytes(
            self.tids[i * 8..i * 8 + 8].try_into().unwrap(),
        ))
        .map_err(|_| CodecError::Malformed("tid exceeds usize"))?;
        Ok(ThreadScalarRow {
            tid,
            cpu: CpuId(u16::from_be_bytes(
                self.cpus[i * 2..i * 2 + 2].try_into().unwrap(),
            )),
            domain: DomainId(self.domains[i]),
            instructions: u64::from_be_bytes(
                self.instructions[i * 8..i * 8 + 8].try_into().unwrap(),
            ),
            numa_events: u64::from_be_bytes(self.numa_events[i * 8..i * 8 + 8].try_into().unwrap()),
            stack_underflows: u64::from_be_bytes(
                self.stack_underflows[i * 8..i * 8 + 8].try_into().unwrap(),
            ),
        })
    }

    fn decode(&self) -> Result<Vec<ThreadProfile>> {
        let mut threads = Vec::with_capacity(self.count);
        for (i, body) in self.bodies.iter().enumerate() {
            threads.push(read_thread_body(body, self.scalar_row(i)?)?);
        }
        Ok(threads)
    }
}

/// Raw sections of one container, located but not decoded.
#[derive(Default)]
struct Sections<'a> {
    run: Option<&'a [u8]>,
    funcs: Option<&'a [u8]>,
    vars: Option<&'a [u8]>,
    threads: Option<&'a [u8]>,
    first_touch: Option<&'a [u8]>,
}

impl<'a> Sections<'a> {
    /// Validate the container header and locate each section. Unknown
    /// section ids are skipped; a duplicated known id is malformed.
    fn parse(bytes: &'a [u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4).map_err(|_| CodecError::BadMagic)?;
        if magic != CODEC_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u16()?;
        if version == 0 || version > CODEC_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        if r.u16()? != 0 {
            return Err(CodecError::Malformed("nonzero header flags"));
        }
        let mut sections = Sections::default();
        while !r.is_empty() {
            let id = r.u8()?;
            let len = r.u32()? as usize;
            let body = r.take(len)?;
            let slot = match id {
                SEC_RUN => &mut sections.run,
                SEC_FUNCS => &mut sections.funcs,
                SEC_VARS => &mut sections.vars,
                SEC_THREADS => &mut sections.threads,
                SEC_FIRST_TOUCH => &mut sections.first_touch,
                _ => continue, // a section from a future revision
            };
            if slot.is_some() {
                return Err(CodecError::Malformed("duplicate section"));
            }
            *slot = Some(body);
        }
        Ok(sections)
    }
}

/// A parsed-but-not-materialized profile: run metadata decoded, name
/// tables and rows located, thread scalar columns exposed as in-place
/// slices. [`ProfileView::to_profile`] materializes the full struct;
/// the column accessors serve readers (the engine's index builder) that
/// only need the per-thread scalars.
pub struct ProfileView<'a> {
    mechanism: MechanismKind,
    capabilities: Capabilities,
    domains: usize,
    machine_name: &'a str,
    funcs: &'a [u8],
    vars: &'a [u8],
    threads: ThreadsView<'a>,
    first_touch: &'a [u8],
}

impl<'a> ProfileView<'a> {
    /// Parse a full-profile container: header, section table, RUN
    /// section, and the THREADS section's column framing. Name tables,
    /// variable rows, thread bodies, and first-touch rows are located
    /// and bounds-checked but not decoded.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        let sections = Sections::parse(bytes)?;
        let run = sections
            .run
            .ok_or(CodecError::Malformed("missing run section"))?;
        let funcs = sections
            .funcs
            .ok_or(CodecError::Malformed("missing funcs section"))?;
        let vars = sections
            .vars
            .ok_or(CodecError::Malformed("missing vars section"))?;
        let threads_raw = sections
            .threads
            .ok_or(CodecError::Malformed("missing threads section"))?;
        let first_touch = sections
            .first_touch
            .ok_or(CodecError::Malformed("missing first-touch section"))?;

        let mut r = Reader::new(run);
        let mechanism = mechanism_from(r.u8()?)?;
        let capabilities = capabilities_from(r.u8()?)?;
        let domains = r.u32()? as usize;
        let machine_name = r.str_field()?;
        if !r.is_empty() {
            return Err(CodecError::Malformed("trailing bytes in run section"));
        }
        Ok(ProfileView {
            mechanism,
            capabilities,
            domains,
            machine_name,
            funcs,
            vars,
            threads: ThreadsView::parse(threads_raw)?,
            first_touch,
        })
    }

    pub fn mechanism(&self) -> MechanismKind {
        self.mechanism
    }

    pub fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    pub fn domains(&self) -> usize {
        self.domains
    }

    pub fn machine_name(&self) -> &'a str {
        self.machine_name
    }

    /// Threads in this container.
    pub fn thread_count(&self) -> usize {
        self.threads.count
    }

    /// The `instructions` scalar column, straight off the buffer.
    pub fn instructions(&self) -> impl Iterator<Item = u64> + '_ {
        be_u64_column(self.threads.instructions)
    }

    /// The `numa_events` scalar column, straight off the buffer.
    pub fn numa_events(&self) -> impl Iterator<Item = u64> + '_ {
        be_u64_column(self.threads.numa_events)
    }

    /// The `tid` scalar column, straight off the buffer.
    pub fn tids(&self) -> impl Iterator<Item = u64> + '_ {
        be_u64_column(self.threads.tids)
    }

    /// The `stack_underflows` scalar column, straight off the buffer.
    pub fn stack_underflows(&self) -> impl Iterator<Item = u64> + '_ {
        be_u64_column(self.threads.stack_underflows)
    }

    /// Materialize the full [`NumaProfile`] (CCT indices rebuilt).
    pub fn to_profile(&self) -> Result<NumaProfile> {
        let mut r = Reader::new(self.funcs);
        let nf = r.u32()? as usize;
        let mut func_names = Vec::with_capacity(r.clamped_capacity(nf, 4));
        for _ in 0..nf {
            func_names.push(r.str_field()?.to_string());
        }
        if !r.is_empty() {
            return Err(CodecError::Malformed("trailing bytes in funcs section"));
        }

        let mut r = Reader::new(self.vars);
        let nv = r.u32()? as usize;
        let mut vars = Vec::with_capacity(r.clamped_capacity(nv, VAR_MIN_LEN));
        for _ in 0..nv {
            vars.push(read_var(&mut r)?);
        }
        if !r.is_empty() {
            return Err(CodecError::Malformed("trailing bytes in vars section"));
        }

        let threads = self.threads.decode()?;

        let mut r = Reader::new(self.first_touch);
        let nt = r.u32()? as usize;
        let mut first_touches = Vec::with_capacity(r.clamped_capacity(nt, FIRST_TOUCH_MIN_LEN));
        for _ in 0..nt {
            first_touches.push(read_first_touch(&mut r)?);
        }
        if !r.is_empty() {
            return Err(CodecError::Malformed(
                "trailing bytes in first-touch section",
            ));
        }

        Ok(NumaProfile {
            mechanism: self.mechanism,
            capabilities: self.capabilities,
            domains: self.domains,
            machine_name: self.machine_name.to_string(),
            func_names,
            vars,
            threads,
            first_touches,
        })
    }
}

/// Decode a full profile ([`ProfileView::parse`] + materialize).
pub fn decode_profile(bytes: &[u8]) -> Result<NumaProfile> {
    ProfileView::parse(bytes)?.to_profile()
}

/// Decode a streaming thread batch (a container carrying a THREADS
/// section). The inverse of [`encode_threads`].
pub fn decode_threads(bytes: &[u8]) -> Result<Vec<ThreadProfile>> {
    let sections = Sections::parse(bytes)?;
    let raw = sections
        .threads
        .ok_or(CodecError::Malformed("missing threads section"))?;
    ThreadsView::parse(raw)?.decode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> NumaProfile {
        use numa_machine::{Machine, MachinePreset, PlacementPolicy};
        use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig};
        use numa_sampling::MechanismConfig;
        use numa_sim::{ExecMode, Program};
        use std::sync::Arc;

        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config =
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8)).with_trace(1000);
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
        let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
        let size = 1u64 << 18;
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("grid", size, PlacementPolicy::FirstTouch);
            ctx.store_range(base, size / 64, 64);
        });
        p.parallel("solve._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
        finish_profile(p, profiler)
    }

    #[test]
    fn round_trip_preserves_canonical_json() {
        let original = profile();
        let canonical = original.to_json();
        let bytes = encode_profile(&original);
        let decoded = decode_profile(&bytes).unwrap();
        assert_eq!(decoded.to_json(), canonical);
        assert!(
            bytes.len() < canonical.len(),
            "binary ({}) should be smaller than JSON ({})",
            bytes.len(),
            canonical.len()
        );
    }

    #[test]
    fn view_columns_match_materialized_threads() {
        let original = profile();
        let bytes = encode_profile(&original);
        let view = ProfileView::parse(&bytes).unwrap();
        assert_eq!(view.thread_count(), original.threads.len());
        assert_eq!(view.machine_name(), original.machine_name);
        assert_eq!(view.domains(), original.domains);
        let instr: Vec<u64> = view.instructions().collect();
        let events: Vec<u64> = view.numa_events().collect();
        let tids: Vec<u64> = view.tids().collect();
        for (i, t) in original.threads.iter().enumerate() {
            assert_eq!(instr[i], t.instructions);
            assert_eq!(events[i], t.numa_events);
            assert_eq!(tids[i], t.tid as u64);
        }
    }

    #[test]
    fn thread_batches_round_trip() {
        let original = profile();
        let bytes = encode_threads(&original.threads[1..3]);
        let decoded = decode_threads(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        for (a, b) in decoded.iter().zip(&original.threads[1..3]) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
        // A thread batch is not a full profile.
        assert_eq!(
            decode_profile(&bytes).unwrap_err(),
            CodecError::Malformed("missing run section")
        );
    }

    #[test]
    fn typed_errors_for_bad_headers() {
        assert_eq!(decode_profile(b"").unwrap_err(), CodecError::BadMagic);
        assert_eq!(
            decode_profile(b"XXXXXXXX").unwrap_err(),
            CodecError::BadMagic
        );
        let mut bytes = encode_profile(&profile());
        bytes[4] = 0xFF; // version
        assert!(matches!(
            decode_profile(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn truncation_at_every_section_boundary_is_typed() {
        let bytes = encode_profile(&profile());
        // Chop at a spread of prefixes, including every early boundary.
        for cut in (0..bytes.len().min(64)).chain((64..bytes.len()).step_by(97)) {
            let err = decode_profile(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn corrupt_count_is_rejected_not_allocated() {
        let mut bytes = encode_profile(&profile());
        // The THREADS section's count field: find the section and smash
        // its count to u32::MAX. Decode must reject it (Truncated) long
        // before allocating count-sized buffers.
        let mut off = CODEC_HEADER_LEN;
        while off + 5 <= bytes.len() {
            let id = bytes[off];
            let len = u32::from_be_bytes(bytes[off + 1..off + 5].try_into().unwrap()) as usize;
            if id == SEC_THREADS {
                bytes[off + 5..off + 9].copy_from_slice(&u32::MAX.to_be_bytes());
                break;
            }
            off += 5 + len;
        }
        assert!(decode_profile(&bytes).is_err());
    }
}
