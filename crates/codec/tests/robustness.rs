//! Adversarial-input properties for the codec: any single-byte flip or
//! truncation of an encoded profile either decodes to a typed
//! [`CodecError`] or round-trips to a well-formed profile — never a
//! panic, never an input-sized allocation (the counts that size
//! buffers are clamped against the bytes actually present, the same
//! discipline as the WAL scanner's `body_len` clamp).

use numa_codec::{decode_profile, decode_threads, encode_profile, encode_threads, ProfileView};
use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn profile() -> &'static NumaProfile {
    static P: OnceLock<NumaProfile> = OnceLock::new();
    P.get_or_init(|| {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config =
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8)).with_trace(500);
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
        let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
        let size = 1u64 << 18;
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("grid", size, PlacementPolicy::FirstTouch);
            ctx.store_range(base, size / 64, 64);
        });
        p.parallel("solve._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
        finish_profile(p, profiler)
    })
}

fn encoded() -> &'static Vec<u8> {
    static E: OnceLock<Vec<u8>> = OnceLock::new();
    E.get_or_init(|| encode_profile(profile()))
}

fn encoded_batch() -> &'static Vec<u8> {
    static E: OnceLock<Vec<u8>> = OnceLock::new();
    E.get_or_init(|| encode_threads(&profile().threads))
}

proptest! {
    /// Flipping any byte to any other value never panics, and whatever
    /// still decodes re-encodes cleanly (the decoder produced a
    /// well-formed profile, not a half-materialized one).
    #[test]
    fn single_byte_flips_never_panic(pos in 0usize..1 << 20, xor in 1usize..256) {
        let mut bytes = encoded().clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor as u8;
        if let Ok(decoded) = decode_profile(&bytes) {
            // A flip inside a name string or a metric value can survive
            // validation; the result must still be a complete profile.
            let _ = encode_profile(&decoded);
            let _ = decoded.to_json();
        }
    }

    /// Every proper prefix of a full-profile container is a typed
    /// error: the trailing section is required, so a truncated buffer
    /// can never silently decode to less data.
    #[test]
    fn truncations_are_typed_errors(cut in 0usize..1 << 20) {
        let bytes = encoded();
        let cut = cut % bytes.len();
        prop_assert!(decode_profile(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        // The view parser obeys the same bound (it validates the column
        // framing up front even though bodies stay undecoded).
        if let Ok(view) = ProfileView::parse(&bytes[..cut]) {
            prop_assert!(view.to_profile().is_err());
        }
    }

    /// Thread-batch containers (streaming chunks) hold the same line.
    #[test]
    fn thread_batch_flips_and_truncations_never_panic(
        pos in 0usize..1 << 20,
        xor in 1usize..256,
        cut in 0usize..1 << 20,
    ) {
        let mut bytes = encoded_batch().clone();
        let cut = cut % bytes.len();
        prop_assert!(decode_threads(&bytes[..cut]).is_err());
        let pos = pos % bytes.len();
        bytes[pos] ^= xor as u8;
        if let Ok(threads) = decode_threads(&bytes) {
            let _ = encode_threads(&threads);
        }
    }

    /// A corrupted length or count field must be rejected without
    /// sizing an allocation from it: smash four consecutive bytes (the
    /// width of every count/length in the format) to 0xFF and decode.
    /// If this ever allocated what the field claims, the test would
    /// attempt ~4 GiB per case and the suite would fall over.
    #[test]
    fn corrupt_length_words_do_not_allocate(pos in 0usize..1 << 20) {
        let mut bytes = encoded().clone();
        let pos = pos % bytes.len().saturating_sub(4).max(1);
        bytes[pos..pos + 4].copy_from_slice(&[0xFF; 4]);
        if let Ok(decoded) = decode_profile(&bytes) {
            let _ = decoded.to_json();
        }
    }
}
