//! Deterministic fault injection for the durability stack.
//!
//! The store's WAL + snapshot layer performs a small, fixed vocabulary
//! of filesystem operations: open/create a file, append bytes, flush,
//! fsync, truncate, seek, rename, and fsync the containing directory.
//! [`Storage`] (and its per-file handle [`StorageFile`]) captures that
//! vocabulary as a trait so the persistence code can run against:
//!
//! * [`StdStorage`] — the production passthrough over `std::fs`.
//! * [`FaultyStorage`] — the same operations, but driven by a
//!   [`FaultSpec`] schedule that deterministically fails the Nth sync,
//!   short-writes the Nth write, errors the Nth rename, or returns
//!   ENOSPC once a byte budget is spent. A [`FaultyStorage::kill`]
//!   switch fails *everything* from that moment on, simulating the
//!   process dying mid-operation: bytes already handed to `write_all`
//!   survive (exactly like a SIGKILL, where the OS keeps the page
//!   cache), later operations never happen.
//! * [`RecordingStorage`] — a decorator that logs every operation in
//!   order, so tests can assert *ordering* properties (e.g. "the
//!   directory fsync happens after the snapshot rename and before the
//!   WAL truncate") instead of only end states.
//!
//! Schedules are deterministic: the same [`FaultSpec`] against the same
//! operation sequence injects the same faults, which is what lets a
//! proptest matrix replay a failing seed exactly.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One open file handle: the operations the WAL writer and snapshot
/// writer perform on a file.
// `len()` here is a fallible size query (it mirrors `File::metadata`),
// so a clippy-style `is_empty` companion has no meaningful contract.
#[allow(clippy::len_without_is_empty)]
pub trait StorageFile: Send {
    /// Read up to `buf.len()` bytes at the current position.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write every byte of `buf` at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush userspace buffers to the OS.
    fn flush(&mut self) -> io::Result<()>;
    /// Force file contents (and the metadata needed to read them) to
    /// stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Reposition the read/write cursor.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
    /// Current file size in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// Fill `buf` exactly, or report how many bytes were available.
    /// `Ok(n < buf.len())` is a clean end-of-file, not an error.
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read(&mut buf[filled..])? {
                0 => break,
                n => filled += n,
            }
        }
        Ok(filled)
    }
}

/// The filesystem operations the persistence layer performs, behind a
/// trait so tests can substitute a fault-injecting implementation.
pub trait Storage: Send + Sync {
    /// Open `path` for reading and appending, creating it if absent.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Create `path` fresh (truncating any existing file), write-only.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open `path` for reading; `Ok(None)` when it does not exist.
    fn open_read(&self, path: &Path) -> io::Result<Option<Box<dyn StorageFile>>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsync the directory itself, making renames/creates within it
    /// durable. This is what turns an atomic rename into a *power-loss
    /// atomic* one.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// StdStorage: the production passthrough
// ---------------------------------------------------------------------

/// Production storage: every operation maps 1:1 onto `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdStorage;

struct StdFile(File);

impl StorageFile for StdFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Storage for StdStorage {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }

    fn open_read(&self, path: &Path) -> io::Result<Option<Box<dyn StorageFile>>> {
        match File::open(path) {
            Ok(f) => Ok(Some(Box::new(StdFile(f)))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX
        // idiom for making renames/creates inside it durable.
        File::open(dir)?.sync_all()
    }
}

// ---------------------------------------------------------------------
// Fault schedule
// ---------------------------------------------------------------------

/// SplitMix64 step — the same tiny deterministic generator the vendored
/// proptest uses, so seeds here need no external crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic fault schedule. All counters are 1-based and count
/// operations across every file of one [`FaultyStorage`]; `None`
/// disables that fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fail the Nth sync (`sync_data` and `sync_dir` share the count).
    pub fail_sync: Option<u64>,
    /// On the Nth `write_all`, persist only the first `keep` bytes and
    /// then error — a torn write.
    pub short_write: Option<(u64, u64)>,
    /// Fail the Nth rename (the file is left un-renamed).
    pub fail_rename: Option<u64>,
    /// Total byte budget: once cumulative written bytes would exceed
    /// it, writes persist up to the budget and then fail with
    /// `ErrorKind::StorageFull` — a full disk.
    pub enospc_after: Option<u64>,
}

impl FaultSpec {
    /// Derive a schedule from a seed. Each fault class is enabled with
    /// ~1/2 probability and given a small deterministic trigger point,
    /// so a few hundred seeds cover singletons and combinations of
    /// every class (including the fault-free schedule).
    pub fn seeded(seed: u64) -> FaultSpec {
        let mut s = seed;
        let mut next = || splitmix64(&mut s);
        let fail_sync = (next() % 2 == 0).then(|| 1 + next() % 12);
        let short_write = (next() % 2 == 0).then(|| (1 + next() % 16, next() % 48));
        let fail_rename = (next() % 4 == 0).then(|| 1 + next() % 3);
        let enospc_after = (next() % 4 == 0).then(|| 256 + next() % (48 << 10));
        FaultSpec {
            fail_sync,
            short_write,
            fail_rename,
            enospc_after,
        }
    }

    /// Parse a CLI schedule: comma-separated `sync=N`, `write=N:KEEP`,
    /// `rename=N`, `enospc=BYTES` terms (e.g. `"enospc=16384"`,
    /// `"sync=2,rename=1"`).
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for term in spec.split(',').filter(|t| !t.is_empty()) {
            let (key, value) = term
                .split_once('=')
                .ok_or_else(|| format!("fault term {term:?} is not key=value"))?;
            let parse = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("fault term {term:?}: {e}"))
            };
            match key {
                "sync" => out.fail_sync = Some(parse(value)?),
                "rename" => out.fail_rename = Some(parse(value)?),
                "enospc" => out.enospc_after = Some(parse(value)?),
                "write" => {
                    let (n, keep) = value
                        .split_once(':')
                        .ok_or_else(|| format!("fault term {term:?} wants write=N:KEEP"))?;
                    out.short_write = Some((parse(n)?, parse(keep)?));
                }
                _ => return Err(format!("unknown fault class {key:?} in {term:?}")),
            }
        }
        Ok(out)
    }

    /// Whether this schedule injects anything at all.
    pub fn is_noop(&self) -> bool {
        *self == FaultSpec::default()
    }
}

// ---------------------------------------------------------------------
// FaultyStorage
// ---------------------------------------------------------------------

/// Shared between the storage and every file handle it opened.
struct FaultCtl {
    spec: FaultSpec,
    killed: AtomicBool,
    counts: Mutex<FaultCounts>,
}

#[derive(Default)]
struct FaultCounts {
    writes: u64,
    syncs: u64,
    renames: u64,
    bytes_written: u64,
    injected: u64,
}

impl FaultCtl {
    fn check_alive(&self) -> io::Result<()> {
        if self.killed.load(Ordering::SeqCst) {
            Err(io::Error::other("injected crash: storage is dead"))
        } else {
            Ok(())
        }
    }
}

/// What a faulty write should do, decided under the counts lock.
enum WriteAction {
    Full,
    /// Persist this prefix, then fail with the given error.
    Torn(usize, io::Error),
}

/// Fault-injecting storage over [`StdStorage`], driven by a
/// [`FaultSpec`]. Clone-cheap handles are not provided — share it as
/// `Arc<FaultyStorage>` (which coerces to `Arc<dyn Storage>`) so tests
/// keep a handle for [`FaultyStorage::kill`] and counters.
pub struct FaultyStorage {
    inner: StdStorage,
    ctl: Arc<FaultCtl>,
}

impl FaultyStorage {
    pub fn new(spec: FaultSpec) -> FaultyStorage {
        FaultyStorage {
            inner: StdStorage,
            ctl: Arc::new(FaultCtl {
                spec,
                killed: AtomicBool::new(false),
                counts: Mutex::new(FaultCounts::default()),
            }),
        }
    }

    /// Simulate the process dying: every operation from now on fails
    /// immediately. Bytes already written stay (the OS survives a
    /// SIGKILL); syncs, renames, and truncates never happen.
    pub fn kill(&self) {
        self.ctl.killed.store(true, Ordering::SeqCst);
    }

    /// Whether [`FaultyStorage::kill`] has been called.
    pub fn is_killed(&self) -> bool {
        self.ctl.killed.load(Ordering::SeqCst)
    }

    /// How many faults the schedule has injected so far (kill excluded).
    pub fn injected(&self) -> u64 {
        self.ctl.counts.lock().injected
    }
}

struct FaultyFile {
    inner: Box<dyn StorageFile>,
    ctl: Arc<FaultCtl>,
}

impl FaultyFile {
    /// Count one write of `len` bytes and decide its fate.
    fn plan_write(&self, len: usize) -> WriteAction {
        let mut c = self.ctl.counts.lock();
        c.writes += 1;
        if let Some(budget) = self.ctl.spec.enospc_after {
            if c.bytes_written + len as u64 > budget {
                let keep = budget.saturating_sub(c.bytes_written) as usize;
                c.bytes_written += keep as u64;
                c.injected += 1;
                return WriteAction::Torn(
                    keep,
                    io::Error::new(
                        io::ErrorKind::StorageFull,
                        "injected ENOSPC: no space left on device",
                    ),
                );
            }
        }
        if let Some((nth, keep)) = self.ctl.spec.short_write {
            if c.writes == nth {
                let keep = (keep as usize).min(len);
                c.bytes_written += keep as u64;
                c.injected += 1;
                return WriteAction::Torn(
                    keep,
                    io::Error::new(
                        io::ErrorKind::WriteZero,
                        format!("injected short write: {keep} of {len} bytes"),
                    ),
                );
            }
        }
        c.bytes_written += len as u64;
        WriteAction::Full
    }
}

impl StorageFile for FaultyFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.ctl.check_alive()?;
        self.inner.read(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.ctl.check_alive()?;
        match self.plan_write(buf.len()) {
            WriteAction::Full => self.inner.write_all(buf),
            WriteAction::Torn(keep, err) => {
                self.inner.write_all(&buf[..keep])?;
                Err(err)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.ctl.check_alive()?;
        self.inner.flush()
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.ctl.check_alive()?;
        fail_nth_sync(&self.ctl)?;
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.ctl.check_alive()?;
        self.inner.set_len(len)
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.ctl.check_alive()?;
        self.inner.seek(pos)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.ctl.check_alive()?;
        self.inner.len()
    }
}

fn fail_nth_sync(ctl: &FaultCtl) -> io::Result<()> {
    let mut c = ctl.counts.lock();
    c.syncs += 1;
    if ctl.spec.fail_sync == Some(c.syncs) {
        c.injected += 1;
        return Err(io::Error::other("injected fsync failure"));
    }
    Ok(())
}

impl Storage for FaultyStorage {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.ctl.check_alive()?;
        Ok(Box::new(FaultyFile {
            inner: self.inner.open_rw(path)?,
            ctl: Arc::clone(&self.ctl),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.ctl.check_alive()?;
        Ok(Box::new(FaultyFile {
            inner: self.inner.create(path)?,
            ctl: Arc::clone(&self.ctl),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Option<Box<dyn StorageFile>>> {
        self.ctl.check_alive()?;
        Ok(self.inner.open_read(path)?.map(|f| {
            Box::new(FaultyFile {
                inner: f,
                ctl: Arc::clone(&self.ctl),
            }) as Box<dyn StorageFile>
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.ctl.check_alive()?;
        {
            let mut c = self.ctl.counts.lock();
            c.renames += 1;
            if self.ctl.spec.fail_rename == Some(c.renames) {
                c.injected += 1;
                return Err(io::Error::other("injected rename failure"));
            }
        }
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.ctl.check_alive()?;
        fail_nth_sync(&self.ctl)?;
        self.inner.sync_dir(dir)
    }
}

// ---------------------------------------------------------------------
// RecordingStorage
// ---------------------------------------------------------------------

/// Decorator that logs every operation (by file name, not full path) in
/// the order the persistence layer issued it, for ordering assertions
/// like "rename is followed by a directory fsync before any truncate".
pub struct RecordingStorage {
    inner: Arc<dyn Storage>,
    ops: Arc<Mutex<Vec<String>>>,
}

impl RecordingStorage {
    pub fn new(inner: Arc<dyn Storage>) -> RecordingStorage {
        RecordingStorage {
            inner,
            ops: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The operations recorded so far, in issue order.
    pub fn ops(&self) -> Vec<String> {
        self.ops.lock().clone()
    }

    fn log(&self, op: String) {
        self.ops.lock().push(op);
    }
}

fn name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

struct RecordingFile {
    inner: Box<dyn StorageFile>,
    name: String,
    ops: Arc<Mutex<Vec<String>>>,
}

impl RecordingFile {
    fn log(&self, op: String) {
        self.ops.lock().push(op);
    }
}

impl StorageFile for RecordingFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.log(format!("write({}, {})", self.name, buf.len()));
        self.inner.write_all(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.log(format!("sync_data({})", self.name));
        self.inner.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.log(format!("set_len({}, {len})", self.name));
        self.inner.set_len(len)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl Storage for RecordingStorage {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.log(format!("open_rw({})", name_of(path)));
        Ok(Box::new(RecordingFile {
            inner: self.inner.open_rw(path)?,
            name: name_of(path),
            ops: Arc::clone(&self.ops),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.log(format!("create({})", name_of(path)));
        Ok(Box::new(RecordingFile {
            inner: self.inner.create(path)?,
            name: name_of(path),
            ops: Arc::clone(&self.ops),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Option<Box<dyn StorageFile>>> {
        Ok(self.inner.open_read(path)?.map(|f| {
            Box::new(RecordingFile {
                inner: f,
                name: name_of(path),
                ops: Arc::clone(&self.ops),
            }) as Box<dyn StorageFile>
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.log(format!("rename({} -> {})", name_of(from), name_of(to)));
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.log("sync_dir".to_string());
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("numa-faults-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_storage_round_trips() {
        let dir = scratch("std");
        let path = dir.join("a.bin");
        let storage = StdStorage;
        let mut f = storage.open_rw(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert_eq!(f.len().unwrap(), 5);
        drop(f);
        let mut r = storage.open_read(&path).unwrap().unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(r.read_exact_or_eof(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert!(storage.open_read(&dir.join("absent")).unwrap().is_none());
        storage.rename(&path, &dir.join("b.bin")).unwrap();
        storage.sync_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_persists_the_prefix_then_errors() {
        let dir = scratch("short");
        let storage = FaultyStorage::new(FaultSpec {
            short_write: Some((2, 3)),
            ..FaultSpec::default()
        });
        let path = dir.join("w.bin");
        let mut f = storage.open_rw(&path).unwrap();
        f.write_all(b"first").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"firstsec");
        assert_eq!(storage.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_budget_is_cumulative_and_sticky() {
        let dir = scratch("enospc");
        let storage = FaultyStorage::new(FaultSpec {
            enospc_after: Some(6),
            ..FaultSpec::default()
        });
        let mut f = storage.open_rw(&dir.join("w.bin")).unwrap();
        f.write_all(b"1234").unwrap();
        let err = f.write_all(b"5678").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The budget stays spent: later writes keep failing.
        let err = f.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(std::fs::read(dir.join("w.bin")).unwrap(), b"123456");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nth_sync_fails_once_counting_files_and_dirs_together() {
        let dir = scratch("sync");
        let storage = FaultyStorage::new(FaultSpec {
            fail_sync: Some(2),
            ..FaultSpec::default()
        });
        let mut f = storage.open_rw(&dir.join("w.bin")).unwrap();
        f.sync_data().unwrap();
        assert!(storage.sync_dir(&dir).is_err());
        f.sync_data().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_fails_everything_but_keeps_written_bytes() {
        let dir = scratch("kill");
        let storage = FaultyStorage::new(FaultSpec::default());
        let path = dir.join("w.bin");
        let mut f = storage.open_rw(&path).unwrap();
        f.write_all(b"durable").unwrap();
        storage.kill();
        assert!(f.write_all(b"lost").is_err());
        assert!(f.sync_data().is_err());
        assert!(f.set_len(0).is_err());
        assert!(storage.rename(&path, &dir.join("x")).is_err());
        assert!(storage.open_rw(&path).is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recording_storage_logs_ops_in_order() {
        let dir = scratch("rec");
        let rec = RecordingStorage::new(Arc::new(StdStorage));
        let tmp = dir.join("s.tmp");
        let mut f = rec.create(&tmp).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        drop(f);
        rec.rename(&tmp, &dir.join("s.bin")).unwrap();
        rec.sync_dir(&dir).unwrap();
        assert_eq!(
            rec.ops(),
            vec![
                "create(s.tmp)".to_string(),
                "write(s.tmp, 3)".to_string(),
                "sync_data(s.tmp)".to_string(),
                "rename(s.tmp -> s.bin)".to_string(),
                "sync_dir".to_string(),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_specs_are_deterministic_and_diverse() {
        for seed in 0..64u64 {
            assert_eq!(FaultSpec::seeded(seed), FaultSpec::seeded(seed));
        }
        let distinct: std::collections::HashSet<String> = (0..64u64)
            .map(|s| format!("{:?}", FaultSpec::seeded(s)))
            .collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct schedules",
            distinct.len()
        );
        assert!((0..64u64).any(|s| FaultSpec::seeded(s).is_noop()));
    }

    #[test]
    fn spec_parsing_round_trips_cli_terms() {
        assert_eq!(
            FaultSpec::parse("enospc=16384").unwrap(),
            FaultSpec {
                enospc_after: Some(16384),
                ..FaultSpec::default()
            }
        );
        assert_eq!(
            FaultSpec::parse("sync=2,rename=1,write=5:10").unwrap(),
            FaultSpec {
                fail_sync: Some(2),
                fail_rename: Some(1),
                short_write: Some((5, 10)),
                enospc_after: None,
            }
        );
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("sync").is_err());
        assert!(FaultSpec::parse("").unwrap().is_noop());
    }
}
