//! Multi-profile analysis store: the batch layer above the per-run
//! analyzer.
//!
//! The paper's workflow analyzes one measurement at a time
//! (`hpcrun-sim` → `hpcprof-sim`). Real tuning sessions accumulate
//! *many* runs — variants, thread counts, machines — and re-derive the
//! same expensive artifacts (reports, views, diffs) over and over. This
//! crate adds:
//!
//! * **Content-addressed ingestion** ([`ProfileStore::ingest_batch`],
//!   [`ProfileStore::ingest_dir`]): serialized [`NumaProfile`] JSON is
//!   parsed in parallel with rayon and stored under the FNV-1a hash of
//!   its canonical serialization, so duplicate runs dedup to one copy.
//! * **Cross-run merging** ([`ProfileStore::aggregate`]): pooled
//!   [`MetricSet`](numa_profiler::MetricSet)s, per-variable totals keyed by name (VarIds are not
//!   stable across runs), and normalized \[min,max\]-reduced address
//!   coverage — the §7.2 reduction lifted from threads to runs.
//! * **Memoized queries** ([`ProfileStore::query`]): derived artifacts
//!   are cached in a sharded LRU keyed by `(scope hash, query)` with
//!   hit/miss/insertion/eviction counters ([`ProfileStore::stats`]).
//!
//! The CLI front end is `hpcstore-sim` in the `numa-tools` crate.

mod aggregate;
mod cache;
mod hash;
pub mod snapshot;
pub mod wal;

pub use aggregate::{aggregate, CrossRunAggregate, VarAggregate};
pub use cache::{CacheStats, MemoCache};
pub use hash::{fnv1a, mix, ProfileId};

use numa_analysis::{analyze, diff, full_text_report, render_cct, Analyzer};
use numa_engine::Engine;
use numa_profiler::{NumaProfile, RangeScope};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Store-level failures. Parse failures during batch ingestion do not
/// abort the batch — they are collected per input in [`BatchReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Input bytes were not a valid profile.
    Parse { label: String, message: String },
    /// A query referenced a profile id the store does not hold.
    UnknownProfile(ProfileId),
    /// A reference (id prefix or label) matched nothing.
    NoMatch(String),
    /// A reference matched more than one stored profile. Candidates are
    /// `(id, label)` pairs so callers can disambiguate.
    Ambiguous {
        needle: String,
        candidates: Vec<(ProfileId, String)>,
    },
    /// A set-level query was issued against an empty store.
    EmptyStore,
    /// A query referenced a variable the profile never recorded.
    UnknownVariable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Parse { label, message } => {
                write!(f, "cannot parse profile {label:?}: {message}")
            }
            StoreError::UnknownProfile(id) => write!(f, "no profile {id} in the store"),
            StoreError::NoMatch(needle) => write!(f, "{needle:?} matches no stored profile"),
            StoreError::Ambiguous { needle, candidates } => {
                write!(
                    f,
                    "{needle:?} is ambiguous: {} profiles match",
                    candidates.len()
                )?;
                for (id, label) in candidates.iter().take(8) {
                    write!(f, "\n  {id}  {label}")?;
                }
                if candidates.len() > 8 {
                    write!(f, "\n  ... and {} more", candidates.len() - 8)?;
                }
                Ok(())
            }
            StoreError::EmptyStore => write!(f, "the store holds no profiles"),
            StoreError::UnknownVariable(name) => {
                write!(f, "variable {name:?} not present in the profile")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One ingested profile: the parsed measurement plus its identity.
pub struct StoredProfile {
    pub id: ProfileId,
    /// Where the profile came from (file name, CLI label, ...). Purely
    /// informational; identity is `id`.
    pub label: String,
    /// The parsed measurement, behind an `Arc` so analyzers and the
    /// attribution engine share the one stored copy.
    pub profile: Arc<NumaProfile>,
    /// Size of the canonical serialization, for footprint accounting.
    pub json_bytes: usize,
    /// Attribution engine (interned symbols + columnar index), built on
    /// first query and shared by every analyzer handed out afterwards.
    engine: OnceLock<Arc<Engine>>,
}

impl StoredProfile {
    fn new(id: ProfileId, label: String, profile: NumaProfile, json_bytes: usize) -> Self {
        StoredProfile {
            id,
            label,
            profile: Arc::new(profile),
            json_bytes,
            engine: OnceLock::new(),
        }
    }

    /// The shared [`Engine`] over this profile. The index is built at
    /// most once; callers get a cheap `Arc` clone, never a profile copy.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(
            self.engine
                .get_or_init(|| Arc::new(Engine::new(Arc::clone(&self.profile)))),
        )
    }
}

/// One row of [`ProfileStore::entries`]: the listing-relevant facts
/// about a stored profile, snapshotted atomically.
#[derive(Clone, Debug)]
pub struct ProfileListEntry {
    pub id: ProfileId,
    pub label: String,
    pub threads: usize,
    pub json_bytes: usize,
}

/// Outcome of one batch ingestion.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Ids of newly added profiles, in input order.
    pub added: Vec<ProfileId>,
    /// Inputs that hashed to an already-stored profile.
    pub deduplicated: usize,
    /// Inputs that failed to parse: (label, error message).
    pub rejected: Vec<(String, String)>,
    /// Inputs that could not be read at all: (label, I/O error). Only
    /// populated by file-based ingestion ([`ProfileStore::ingest_dir`]);
    /// an unreadable file skips that file, never the batch.
    pub io_errors: Vec<(String, String)>,
}

impl BatchReport {
    /// Fold another report (e.g. one directory chunk) into this one.
    pub fn merge(&mut self, other: BatchReport) {
        self.added.extend(other.added);
        self.deduplicated += other.deduplicated;
        self.rejected.extend(other.rejected);
        self.io_errors.extend(other.io_errors);
    }
}

/// A derived artifact, memoized by the store.
#[derive(Debug)]
pub enum Artifact {
    Text(String),
    Aggregate(CrossRunAggregate),
}

impl Artifact {
    /// The textual form every artifact can render to.
    pub fn text(&self) -> String {
        match self {
            Artifact::Text(s) => s.clone(),
            Artifact::Aggregate(a) => a.render(),
        }
    }

    pub fn as_aggregate(&self) -> Option<&CrossRunAggregate> {
        match self {
            Artifact::Aggregate(a) => Some(a),
            Artifact::Text(_) => None,
        }
    }
}

/// A memoizable query. Float-free and hashable by construction so it
/// can key the cache directly.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// Data-centric report (JSON) for one profile.
    ReportJson(ProfileId),
    /// Full text report for one profile: verdict, hot variables, and
    /// their address-centric views.
    TextReport(ProfileId),
    /// Code-centric view: the merged CCT with NUMA metrics. Subtrees
    /// below `min_share_permille`/1000 of program cost are elided.
    CodeView {
        profile: ProfileId,
        min_share_permille: u16,
    },
    /// Address-centric view (JSON) of one variable, by source name.
    AddressView { profile: ProfileId, var: String },
    /// Pairwise diff of two runs, rendered as text.
    Diff { before: ProfileId, after: ProfileId },
    /// Cross-run aggregate over the whole stored set.
    Aggregate,
    /// Top-n hottest variables across the whole stored set.
    TopVariables(usize),
}

impl Query {
    /// Which profiles the artifact is derived from: single ids for
    /// targeted queries, the whole set for pooled ones.
    fn scope(&self, store: &ProfileStore) -> u64 {
        match self {
            Query::ReportJson(id)
            | Query::TextReport(id)
            | Query::CodeView { profile: id, .. }
            | Query::AddressView { profile: id, .. } => mix(0, id.0),
            Query::Diff { before, after } => mix(mix(0, before.0), after.0),
            Query::Aggregate | Query::TopVariables(_) => store.set_hash(),
        }
    }
}

#[derive(Default)]
struct Shelf {
    profiles: Vec<Arc<StoredProfile>>,
    by_id: HashMap<ProfileId, usize>,
    /// Order-insensitive combined hash of the stored ids.
    set_hash: u64,
}

/// Tuning knobs for durable stores ([`ProfileStore::open_durable`]).
#[derive(Clone, Debug)]
pub struct PersistOptions {
    /// Compact (snapshot + reset the WAL) once the WAL exceeds this many
    /// bytes. The compaction cost is proportional to the whole corpus,
    /// so this trades replay time against snapshot churn.
    pub snapshot_wal_bytes: u64,
    /// `fsync` the WAL after every append (and the snapshot after every
    /// compaction). Off by default: flushing to the OS already survives
    /// a SIGKILL of the daemon; `fsync` additionally survives power loss
    /// at a large per-append cost.
    pub fsync: bool,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            snapshot_wal_bytes: 4 << 20,
            fsync: false,
        }
    }
}

/// Persistence counters: what recovery found at startup plus runtime
/// append/compaction activity. All zeros for in-memory stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Whether the store is backed by a data directory.
    pub durable: bool,
    /// Records loaded from the snapshot at startup.
    pub snapshot_records_loaded: u64,
    /// Records replayed from the WAL at startup.
    pub wal_records_replayed: u64,
    /// Torn/corrupt WAL tail bytes dropped at startup.
    pub wal_truncated_bytes: u64,
    /// Torn/corrupt snapshot tail bytes dropped at startup.
    pub snapshot_truncated_bytes: u64,
    /// Replayed records whose JSON no longer parsed (checksum held, so
    /// this indicates a profile-format change, not bit rot).
    pub replay_parse_failures: u64,
    /// Records appended to the WAL since startup.
    pub wal_appends: u64,
    /// Current WAL size in bytes (file header included).
    pub wal_bytes: u64,
    /// Snapshot compactions performed since startup (flushes included).
    pub snapshots_written: u64,
    /// Append/compaction I/O failures (the store keeps serving from
    /// memory; durability of the affected records is lost).
    pub io_errors: u64,
}

/// Live persistence state: the WAL appender plus its counters, guarded
/// by one mutex so appends and compactions serialize.
struct Persistence {
    dir: PathBuf,
    wal: wal::WalWriter,
    opts: PersistOptions,
    stats: PersistStats,
}

/// The store: profiles plus the memo cache over them, optionally backed
/// by a WAL + snapshot data directory.
pub struct ProfileStore {
    shelf: RwLock<Shelf>,
    cache: MemoCache<(u64, Query), Artifact>,
    dedup_hits: AtomicU64,
    parse_failures: AtomicU64,
    /// `None` for in-memory stores. Lock order: `persist` may be taken
    /// first with `shelf` read-locked inside it (compaction does this);
    /// never acquire `persist` while holding `shelf`.
    persist: Mutex<Option<Persistence>>,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Files per [`ProfileStore::ingest_dir`] read-and-parse chunk: bounds
/// buffered bytes while still letting rayon parse a chunk in parallel.
const INGEST_DIR_CHUNK: usize = 32;

impl ProfileStore {
    /// Default number of memoized artifacts.
    pub const DEFAULT_CACHE_CAPACITY: usize = 256;

    pub fn new() -> Self {
        Self::with_cache_capacity(Self::DEFAULT_CACHE_CAPACITY)
    }

    pub fn with_cache_capacity(capacity: usize) -> Self {
        ProfileStore {
            shelf: RwLock::new(Shelf::default()),
            cache: MemoCache::new(capacity),
            dedup_hits: AtomicU64::new(0),
            parse_failures: AtomicU64::new(0),
            persist: Mutex::new(None),
        }
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Open a durable store on `dir`: load the snapshot, replay the WAL
    /// (truncating at the first torn/corrupt record), and attach an
    /// appender so every later ingest is logged before it is
    /// acknowledged. Recovery counts are available via
    /// [`ProfileStore::persist_stats`].
    pub fn open_durable(
        dir: &Path,
        cache_capacity: usize,
        opts: PersistOptions,
    ) -> io::Result<ProfileStore> {
        std::fs::create_dir_all(dir)?;
        let store = Self::with_cache_capacity(cache_capacity);
        let mut stats = PersistStats {
            durable: true,
            ..PersistStats::default()
        };

        let snap = snapshot::load_snapshot(dir)?;
        stats.snapshot_records_loaded = snap.records.len() as u64;
        stats.snapshot_truncated_bytes = snap.truncated_bytes;
        let log = wal::scan_file(&wal::wal_path(dir), wal::WAL_MAGIC)?;
        stats.wal_records_replayed = log.records.len() as u64;
        stats.wal_truncated_bytes = log.truncated_bytes;

        // Replay snapshot first, then the log on top; content addressing
        // dedups records present in both. Persistence is not attached
        // yet, so replayed inserts do not re-append to the WAL.
        let inputs: Vec<(String, String)> = snap
            .records
            .into_iter()
            .chain(log.records)
            .map(|r| (r.label, r.json))
            .collect();
        let report = store.ingest_batch(&inputs);
        stats.replay_parse_failures = report.rejected.len() as u64;

        let writer = wal::WalWriter::open_after(&wal::wal_path(dir), log.valid_len, opts.fsync)?;
        stats.wal_bytes = writer.len();
        *store.persist.lock() = Some(Persistence {
            dir: dir.to_path_buf(),
            wal: writer,
            opts,
            stats,
        });
        Ok(store)
    }

    /// Whether this store is backed by a data directory.
    pub fn is_durable(&self) -> bool {
        self.persist.lock().is_some()
    }

    /// Persistence counters (all-zero default for in-memory stores).
    pub fn persist_stats(&self) -> PersistStats {
        self.persist
            .lock()
            .as_ref()
            .map(|p| p.stats)
            .unwrap_or_default()
    }

    /// Force a snapshot compaction now: write the whole corpus to the
    /// snapshot atomically and reset the WAL. A no-op for in-memory
    /// stores. Call on daemon shutdown so restart recovery is a pure
    /// snapshot load.
    pub fn flush(&self) -> io::Result<()> {
        let mut guard = self.persist.lock();
        match guard.as_mut() {
            None => Ok(()),
            Some(p) => self.compact(p),
        }
    }

    /// Append one newly inserted profile to the WAL, compacting when the
    /// log outgrows the configured bound. I/O failures are counted and
    /// reported, not propagated: the store keeps serving from memory.
    fn persist_append(&self, label: &str, json: &str, id: ProfileId) {
        let mut guard = self.persist.lock();
        let Some(p) = guard.as_mut() else { return };
        match p.wal.append(label, json, id.0) {
            Ok(_) => {
                p.stats.wal_appends += 1;
                p.stats.wal_bytes = p.wal.len();
            }
            Err(e) => {
                p.stats.io_errors += 1;
                eprintln!("numa-store: WAL append for {label:?} failed: {e}");
                return;
            }
        }
        if p.wal.len() >= p.opts.snapshot_wal_bytes {
            if let Err(e) = self.compact(p) {
                p.stats.io_errors += 1;
                eprintln!("numa-store: snapshot compaction failed: {e}");
            }
        }
    }

    /// Snapshot the whole corpus and reset the WAL. Caller holds the
    /// `persist` mutex; the shelf is only read-locked briefly to clone
    /// the profile `Arc`s, and any insert racing past that point simply
    /// lands in both the snapshot and the fresh WAL (deduped on
    /// replay).
    fn compact(&self, p: &mut Persistence) -> io::Result<()> {
        let profiles = self.shelf.read().profiles.clone();
        let entries: Vec<(String, String, u64)> = profiles
            .iter()
            .map(|sp| (sp.label.clone(), sp.profile.to_json(), sp.id.0))
            .collect();
        snapshot::write_snapshot(&p.dir, &entries)?;
        p.wal.reset()?;
        p.stats.snapshots_written += 1;
        p.stats.wal_bytes = p.wal.len();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Ingest an already-parsed profile. Returns its id and whether it
    /// was new (`false` = content-identical profile already stored).
    /// On durable stores the profile is in the WAL (flushed to the OS)
    /// before this returns.
    pub fn ingest_profile(&self, label: &str, profile: NumaProfile) -> (ProfileId, bool) {
        let (id, canonical) = ProfileId::of(&profile);
        let sp = Arc::new(StoredProfile::new(
            id,
            label.to_string(),
            profile,
            canonical.len(),
        ));
        let added = self.insert(sp, &canonical);
        (id, added)
    }

    /// Ingest one serialized profile.
    pub fn ingest_bytes(&self, label: &str, json: &str) -> Result<(ProfileId, bool), StoreError> {
        match NumaProfile::from_json(json) {
            Ok(profile) => Ok(self.ingest_profile(label, profile)),
            Err(e) => {
                self.parse_failures.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Parse {
                    label: label.to_string(),
                    message: e.to_string(),
                })
            }
        }
    }

    /// Ingest a batch of `(label, json)` inputs. Parsing and content
    /// hashing — the expensive part — run in parallel under rayon (the
    /// active thread pool; see `ThreadPool::install`); insertion is a
    /// short sequential tail. Bad inputs are reported, not fatal.
    pub fn ingest_batch(&self, inputs: &[(String, String)]) -> BatchReport {
        use rayon::prelude::*;
        // Parsed profile paired with its canonical JSON (kept for the
        // WAL append), or the (label, error) rejection.
        type Parsed = Result<(Arc<StoredProfile>, String), (String, String)>;
        let parsed: Vec<Parsed> = inputs
            .par_iter()
            .map(|(label, json)| match NumaProfile::from_json(json) {
                Ok(profile) => {
                    let (id, canonical) = ProfileId::of(&profile);
                    let sp = StoredProfile::new(id, label.clone(), profile, canonical.len());
                    Ok((Arc::new(sp), canonical))
                }
                Err(e) => Err((label.clone(), e.to_string())),
            })
            .collect_vec();
        let mut report = BatchReport::default();
        for item in parsed {
            match item {
                Ok((sp, canonical)) => {
                    let id = sp.id;
                    if self.insert(sp, &canonical) {
                        report.added.push(id);
                    } else {
                        report.deduplicated += 1;
                    }
                }
                Err(rej) => {
                    self.parse_failures.fetch_add(1, Ordering::Relaxed);
                    report.rejected.push(rej);
                }
            }
        }
        report
    }

    /// Ingest every `*.json` file in a directory (sorted by file name,
    /// so batch reports are deterministic). Files are read in bounded
    /// chunks — the whole directory is never buffered at once — and an
    /// unreadable file is recorded in [`BatchReport::io_errors`] instead
    /// of aborting the batch. Only listing the directory itself fails
    /// the call.
    pub fn ingest_dir(&self, dir: &Path) -> std::io::Result<BatchReport> {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut report = BatchReport::default();
        for chunk in files.chunks(INGEST_DIR_CHUNK) {
            let mut inputs = Vec::with_capacity(chunk.len());
            for f in chunk {
                let label = f
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| f.display().to_string());
                match std::fs::read_to_string(f) {
                    Ok(json) => inputs.push((label, json)),
                    Err(e) => report.io_errors.push((label, e.to_string())),
                }
            }
            report.merge(self.ingest_batch(&inputs));
        }
        Ok(report)
    }

    fn insert(&self, sp: Arc<StoredProfile>, canonical: &str) -> bool {
        let (id, label) = (sp.id, sp.label.clone());
        let added = {
            let mut shelf = self.shelf.write();
            if shelf.by_id.contains_key(&sp.id) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                let idx = shelf.profiles.len();
                // XOR fold: the set hash must not depend on insertion
                // order, so ingesting the same corpus from a directory
                // or a stream yields the same scope key for pooled
                // queries.
                shelf.set_hash ^= mix(0x9e37_79b9_7f4a_7c15, sp.id.0);
                shelf.by_id.insert(sp.id, idx);
                shelf.profiles.push(sp);
                true
            }
        };
        // WAL append happens outside the shelf lock (see the `persist`
        // field's lock-order note) but before the ingest returns, so an
        // acknowledged profile is always on disk.
        if added {
            self.persist_append(&label, canonical, id);
        }
        added
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    pub fn len(&self) -> usize {
        self.shelf.read().profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids in insertion order.
    pub fn ids(&self) -> Vec<ProfileId> {
        self.shelf.read().profiles.iter().map(|p| p.id).collect()
    }

    /// Listing rows in insertion order, taken under one lock so callers
    /// (the daemon's `list` op, CLIs) see an atomic snapshot rather
    /// than racing `ids()` against `get()`.
    pub fn entries(&self) -> Vec<ProfileListEntry> {
        self.shelf
            .read()
            .profiles
            .iter()
            .map(|p| ProfileListEntry {
                id: p.id,
                label: p.label.clone(),
                threads: p.profile.threads.len(),
                json_bytes: p.json_bytes,
            })
            .collect()
    }

    pub fn get(&self, id: ProfileId) -> Option<Arc<StoredProfile>> {
        let shelf = self.shelf.read();
        shelf
            .by_id
            .get(&id)
            .map(|&i| Arc::clone(&shelf.profiles[i]))
    }

    /// Resolve a CLI-style reference: a hex id prefix or a label.
    ///
    /// A needle matching several stored profiles (a short hex prefix,
    /// or a label two runs share) is a typed
    /// [`StoreError::Ambiguous`] listing every candidate — never a
    /// silent first-match pick. A full 16-digit id always resolves
    /// unambiguously, even if it collides with another profile's label.
    pub fn resolve(&self, needle: &str) -> Result<Arc<StoredProfile>, StoreError> {
        let shelf = self.shelf.read();
        let matches: Vec<&Arc<StoredProfile>> = shelf
            .profiles
            .iter()
            .filter(|p| p.label == needle || p.id.to_string().starts_with(needle))
            .collect();
        match matches.as_slice() {
            [] => Err(StoreError::NoMatch(needle.to_string())),
            [one] => Ok(Arc::clone(one)),
            many => {
                if let Some(exact) = many.iter().find(|p| p.id.to_string() == needle) {
                    return Ok(Arc::clone(exact));
                }
                Err(StoreError::Ambiguous {
                    needle: needle.to_string(),
                    candidates: many.iter().map(|p| (p.id, p.label.clone())).collect(),
                })
            }
        }
    }

    /// Order-insensitive content hash of the stored set; pooled cache
    /// entries are scoped under it, so any ingestion that changes the
    /// set automatically invalidates them (old entries age out via LRU).
    pub fn set_hash(&self) -> u64 {
        self.shelf.read().set_hash
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Answer a query, memoized. The artifact is built at most once per
    /// `(scope, query)` key and shared via `Arc` thereafter.
    pub fn query(&self, q: Query) -> Result<Arc<Artifact>, StoreError> {
        let scope = q.scope(self);
        self.cache
            .get_or_try_insert((scope, q.clone()), || self.build(&q))
    }

    /// Uncached artifact construction. Per-profile analyses borrow the
    /// stored profile through its shared [`Engine`] — no profile is ever
    /// cloned; the memo cache amortizes the analysis itself.
    fn build(&self, q: &Query) -> Result<Artifact, StoreError> {
        match q {
            Query::ReportJson(id) => {
                let a = self.analyzer(*id)?;
                Ok(Artifact::Text(analyze(&a).to_json()))
            }
            Query::TextReport(id) => {
                let a = self.analyzer(*id)?;
                Ok(Artifact::Text(full_text_report(&a)))
            }
            Query::CodeView {
                profile,
                min_share_permille,
            } => {
                let a = self.analyzer(*profile)?;
                Ok(Artifact::Text(render_cct(
                    &a,
                    *min_share_permille as f64 / 1000.0,
                )))
            }
            Query::AddressView { profile, var } => {
                let a = self.analyzer(*profile)?;
                let id = a
                    .var_named(var)
                    .ok_or_else(|| StoreError::UnknownVariable(var.clone()))?;
                Ok(Artifact::Text(numa_analysis::export_address_view(
                    &a,
                    id,
                    RangeScope::Program,
                )))
            }
            Query::Diff { before, after } => {
                let b = self.analyzer(*before)?;
                let a = self.analyzer(*after)?;
                Ok(Artifact::Text(diff(&b, &a).render()))
            }
            Query::Aggregate => {
                let profiles = self.snapshot()?;
                Ok(Artifact::Aggregate(aggregate(&profiles)))
            }
            Query::TopVariables(n) => {
                let profiles = self.snapshot()?;
                Ok(Artifact::Text(aggregate(&profiles).top_variables(*n)))
            }
        }
    }

    /// Cross-run aggregate over the current set (memoized).
    pub fn aggregate(&self) -> Result<Arc<Artifact>, StoreError> {
        self.query(Query::Aggregate)
    }

    fn analyzer(&self, id: ProfileId) -> Result<Analyzer, StoreError> {
        let sp = self.get(id).ok_or(StoreError::UnknownProfile(id))?;
        Ok(Analyzer::from_engine(sp.engine()))
    }

    fn snapshot(&self) -> Result<Vec<Arc<StoredProfile>>, StoreError> {
        let shelf = self.shelf.read();
        if shelf.profiles.is_empty() {
            return Err(StoreError::EmptyStore);
        }
        Ok(shelf.profiles.clone())
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every memoized artifact (counters persist). Used to measure
    /// cold-path cost and to bound memory in long sessions.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    pub fn stats(&self) -> StoreStats {
        let (profiles, json_bytes, set_hash) = {
            let shelf = self.shelf.read();
            (
                shelf.profiles.len(),
                shelf.profiles.iter().map(|p| p.json_bytes).sum(),
                shelf.set_hash,
            )
        };
        StoreStats {
            profiles,
            json_bytes,
            set_hash,
            deduplicated: self.dedup_hits.load(Ordering::Relaxed),
            parse_failures: self.parse_failures.load(Ordering::Relaxed),
            cached_artifacts: self.cache.len(),
            cache: self.cache.stats(),
            persist: self.persist_stats(),
        }
    }
}

/// Snapshot of store accounting.
#[derive(Clone, Copy, Debug)]
pub struct StoreStats {
    pub profiles: usize,
    /// Total canonical-JSON footprint of the stored set.
    pub json_bytes: usize,
    /// Order-insensitive content hash of the stored set (see
    /// [`ProfileStore::set_hash`]); two stores holding the same corpus
    /// report the same value, which is how recovery is verified.
    pub set_hash: u64,
    /// Ingest attempts that deduplicated against an existing profile.
    pub deduplicated: u64,
    pub parse_failures: u64,
    pub cached_artifacts: usize,
    pub cache: CacheStats,
    pub persist: PersistStats,
}

impl StoreStats {
    pub fn render(&self) -> String {
        let mut out = format!(
            "profiles: {} ({} KiB canonical JSON), set hash {:016x}\n\
             ingest: {} deduplicated, {} parse failure(s)\n\
             cache: {} artifact(s) resident; {} hit(s), {} miss(es), \
             {} insertion(s), {} eviction(s) ({:.0}% hit rate)\n",
            self.profiles,
            self.json_bytes / 1024,
            self.set_hash,
            self.deduplicated,
            self.parse_failures,
            self.cached_artifacts,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.hit_rate() * 100.0
        );
        if self.persist.durable {
            let p = &self.persist;
            out.push_str(&format!(
                "persistence: recovered {} snapshot + {} wal record(s), \
                 {} truncated byte(s), {} stale parse(s); \
                 {} append(s) ({} KiB wal), {} snapshot(s) written, {} io error(s)\n",
                p.snapshot_records_loaded,
                p.wal_records_replayed,
                p.wal_truncated_bytes + p.snapshot_truncated_bytes,
                p.replay_parse_failures,
                p.wal_appends,
                p.wal_bytes / 1024,
                p.snapshots_written,
                p.io_errors,
            ));
        } else {
            out.push_str("persistence: off (in-memory store)\n");
        }
        out
    }
}
