//! Multi-profile analysis store: the batch layer above the per-run
//! analyzer.
//!
//! The paper's workflow analyzes one measurement at a time
//! (`hpcrun-sim` → `hpcprof-sim`). Real tuning sessions accumulate
//! *many* runs — variants, thread counts, machines — and re-derive the
//! same expensive artifacts (reports, views, diffs) over and over. This
//! crate adds:
//!
//! * **Content-addressed ingestion** ([`ProfileStore::ingest_batch`],
//!   [`ProfileStore::ingest_dir`]): serialized [`NumaProfile`] JSON is
//!   parsed in parallel with rayon and stored under the FNV-1a hash of
//!   its canonical serialization, so duplicate runs dedup to one copy.
//! * **Cross-run merging** ([`ProfileStore::aggregate`]): pooled
//!   [`MetricSet`]s, per-variable totals keyed by name (VarIds are not
//!   stable across runs), and normalized [min,max]-reduced address
//!   coverage — the §7.2 reduction lifted from threads to runs.
//! * **Memoized queries** ([`ProfileStore::query`]): derived artifacts
//!   are cached in a sharded LRU keyed by `(scope hash, query)` with
//!   hit/miss/insertion/eviction counters ([`ProfileStore::stats`]).
//!
//! The CLI front end is `hpcstore-sim` in the `numa-tools` crate.

mod aggregate;
mod cache;
mod hash;

pub use aggregate::{aggregate, CrossRunAggregate, VarAggregate};
pub use cache::{CacheStats, MemoCache};
pub use hash::{fnv1a, mix, ProfileId};

use numa_analysis::{analyze, diff, full_text_report, render_cct, Analyzer};
use numa_profiler::{NumaProfile, RangeScope};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Store-level failures. Parse failures during batch ingestion do not
/// abort the batch — they are collected per input in [`BatchReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Input bytes were not a valid profile.
    Parse { label: String, message: String },
    /// A query referenced a profile id the store does not hold.
    UnknownProfile(ProfileId),
    /// A set-level query was issued against an empty store.
    EmptyStore,
    /// A query referenced a variable the profile never recorded.
    UnknownVariable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Parse { label, message } => {
                write!(f, "cannot parse profile {label:?}: {message}")
            }
            StoreError::UnknownProfile(id) => write!(f, "no profile {id} in the store"),
            StoreError::EmptyStore => write!(f, "the store holds no profiles"),
            StoreError::UnknownVariable(name) => {
                write!(f, "variable {name:?} not present in the profile")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One ingested profile: the parsed measurement plus its identity.
pub struct StoredProfile {
    pub id: ProfileId,
    /// Where the profile came from (file name, CLI label, ...). Purely
    /// informational; identity is `id`.
    pub label: String,
    pub profile: NumaProfile,
    /// Size of the canonical serialization, for footprint accounting.
    pub json_bytes: usize,
}

/// One row of [`ProfileStore::entries`]: the listing-relevant facts
/// about a stored profile, snapshotted atomically.
#[derive(Clone, Debug)]
pub struct ProfileListEntry {
    pub id: ProfileId,
    pub label: String,
    pub threads: usize,
    pub json_bytes: usize,
}

/// Outcome of one batch ingestion.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Ids of newly added profiles, in input order.
    pub added: Vec<ProfileId>,
    /// Inputs that hashed to an already-stored profile.
    pub deduplicated: usize,
    /// Inputs that failed to parse: (label, error message).
    pub rejected: Vec<(String, String)>,
}

/// A derived artifact, memoized by the store.
#[derive(Debug)]
pub enum Artifact {
    Text(String),
    Aggregate(CrossRunAggregate),
}

impl Artifact {
    /// The textual form every artifact can render to.
    pub fn text(&self) -> String {
        match self {
            Artifact::Text(s) => s.clone(),
            Artifact::Aggregate(a) => a.render(),
        }
    }

    pub fn as_aggregate(&self) -> Option<&CrossRunAggregate> {
        match self {
            Artifact::Aggregate(a) => Some(a),
            Artifact::Text(_) => None,
        }
    }
}

/// A memoizable query. Float-free and hashable by construction so it
/// can key the cache directly.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// Data-centric report (JSON) for one profile.
    ReportJson(ProfileId),
    /// Full text report for one profile: verdict, hot variables, and
    /// their address-centric views.
    TextReport(ProfileId),
    /// Code-centric view: the merged CCT with NUMA metrics. Subtrees
    /// below `min_share_permille`/1000 of program cost are elided.
    CodeView {
        profile: ProfileId,
        min_share_permille: u16,
    },
    /// Address-centric view (JSON) of one variable, by source name.
    AddressView { profile: ProfileId, var: String },
    /// Pairwise diff of two runs, rendered as text.
    Diff { before: ProfileId, after: ProfileId },
    /// Cross-run aggregate over the whole stored set.
    Aggregate,
    /// Top-n hottest variables across the whole stored set.
    TopVariables(usize),
}

impl Query {
    /// Which profiles the artifact is derived from: single ids for
    /// targeted queries, the whole set for pooled ones.
    fn scope(&self, store: &ProfileStore) -> u64 {
        match self {
            Query::ReportJson(id)
            | Query::TextReport(id)
            | Query::CodeView { profile: id, .. }
            | Query::AddressView { profile: id, .. } => mix(0, id.0),
            Query::Diff { before, after } => mix(mix(0, before.0), after.0),
            Query::Aggregate | Query::TopVariables(_) => store.set_hash(),
        }
    }
}

#[derive(Default)]
struct Shelf {
    profiles: Vec<Arc<StoredProfile>>,
    by_id: HashMap<ProfileId, usize>,
    /// Order-insensitive combined hash of the stored ids.
    set_hash: u64,
}

/// The store: profiles plus the memo cache over them.
pub struct ProfileStore {
    shelf: RwLock<Shelf>,
    cache: MemoCache<(u64, Query), Artifact>,
    dedup_hits: AtomicU64,
    parse_failures: AtomicU64,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Default number of memoized artifacts.
const DEFAULT_CACHE_CAPACITY: usize = 256;

impl ProfileStore {
    pub fn new() -> Self {
        Self::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    pub fn with_cache_capacity(capacity: usize) -> Self {
        ProfileStore {
            shelf: RwLock::new(Shelf::default()),
            cache: MemoCache::new(capacity),
            dedup_hits: AtomicU64::new(0),
            parse_failures: AtomicU64::new(0),
        }
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Ingest an already-parsed profile. Returns its id and whether it
    /// was new (`false` = content-identical profile already stored).
    pub fn ingest_profile(&self, label: &str, profile: NumaProfile) -> (ProfileId, bool) {
        let (id, canonical) = ProfileId::of(&profile);
        let added = self.insert(Arc::new(StoredProfile {
            id,
            label: label.to_string(),
            profile,
            json_bytes: canonical.len(),
        }));
        (id, added)
    }

    /// Ingest one serialized profile.
    pub fn ingest_bytes(&self, label: &str, json: &str) -> Result<(ProfileId, bool), StoreError> {
        match NumaProfile::from_json(json) {
            Ok(profile) => Ok(self.ingest_profile(label, profile)),
            Err(e) => {
                self.parse_failures.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Parse {
                    label: label.to_string(),
                    message: e.to_string(),
                })
            }
        }
    }

    /// Ingest a batch of `(label, json)` inputs. Parsing and content
    /// hashing — the expensive part — run in parallel under rayon (the
    /// active thread pool; see `ThreadPool::install`); insertion is a
    /// short sequential tail. Bad inputs are reported, not fatal.
    pub fn ingest_batch(&self, inputs: &[(String, String)]) -> BatchReport {
        use rayon::prelude::*;
        let parsed: Vec<Result<Arc<StoredProfile>, (String, String)>> = inputs
            .par_iter()
            .map(|(label, json)| match NumaProfile::from_json(json) {
                Ok(profile) => {
                    let (id, canonical) = ProfileId::of(&profile);
                    Ok(Arc::new(StoredProfile {
                        id,
                        label: label.clone(),
                        profile,
                        json_bytes: canonical.len(),
                    }))
                }
                Err(e) => Err((label.clone(), e.to_string())),
            })
            .collect_vec();
        let mut report = BatchReport::default();
        for item in parsed {
            match item {
                Ok(sp) => {
                    let id = sp.id;
                    if self.insert(sp) {
                        report.added.push(id);
                    } else {
                        report.deduplicated += 1;
                    }
                }
                Err(rej) => {
                    self.parse_failures.fetch_add(1, Ordering::Relaxed);
                    report.rejected.push(rej);
                }
            }
        }
        report
    }

    /// Ingest every `*.json` file in a directory (sorted by file name,
    /// so batch reports are deterministic).
    pub fn ingest_dir(&self, dir: &Path) -> std::io::Result<BatchReport> {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut inputs = Vec::with_capacity(files.len());
        for f in &files {
            let label = f
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| f.display().to_string());
            inputs.push((label, std::fs::read_to_string(f)?));
        }
        Ok(self.ingest_batch(&inputs))
    }

    fn insert(&self, sp: Arc<StoredProfile>) -> bool {
        let mut shelf = self.shelf.write();
        if shelf.by_id.contains_key(&sp.id) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let idx = shelf.profiles.len();
        // XOR fold: the set hash must not depend on insertion order, so
        // ingesting the same corpus from a directory or a stream yields
        // the same scope key for pooled queries.
        shelf.set_hash ^= mix(0x9e37_79b9_7f4a_7c15, sp.id.0);
        shelf.by_id.insert(sp.id, idx);
        shelf.profiles.push(sp);
        true
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    pub fn len(&self) -> usize {
        self.shelf.read().profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids in insertion order.
    pub fn ids(&self) -> Vec<ProfileId> {
        self.shelf.read().profiles.iter().map(|p| p.id).collect()
    }

    /// Listing rows in insertion order, taken under one lock so callers
    /// (the daemon's `list` op, CLIs) see an atomic snapshot rather
    /// than racing `ids()` against `get()`.
    pub fn entries(&self) -> Vec<ProfileListEntry> {
        self.shelf
            .read()
            .profiles
            .iter()
            .map(|p| ProfileListEntry {
                id: p.id,
                label: p.label.clone(),
                threads: p.profile.threads.len(),
                json_bytes: p.json_bytes,
            })
            .collect()
    }

    pub fn get(&self, id: ProfileId) -> Option<Arc<StoredProfile>> {
        let shelf = self.shelf.read();
        shelf
            .by_id
            .get(&id)
            .map(|&i| Arc::clone(&shelf.profiles[i]))
    }

    /// Resolve a CLI-style reference: a hex id prefix or a label.
    pub fn resolve(&self, needle: &str) -> Option<Arc<StoredProfile>> {
        let shelf = self.shelf.read();
        shelf
            .profiles
            .iter()
            .find(|p| p.id.to_string().starts_with(needle) || p.label == needle)
            .map(Arc::clone)
    }

    /// Order-insensitive content hash of the stored set; pooled cache
    /// entries are scoped under it, so any ingestion that changes the
    /// set automatically invalidates them (old entries age out via LRU).
    pub fn set_hash(&self) -> u64 {
        self.shelf.read().set_hash
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Answer a query, memoized. The artifact is built at most once per
    /// `(scope, query)` key and shared via `Arc` thereafter.
    pub fn query(&self, q: Query) -> Result<Arc<Artifact>, StoreError> {
        let scope = q.scope(self);
        self.cache
            .get_or_try_insert((scope, q.clone()), || self.build(&q))
    }

    /// Uncached artifact construction. Per-profile analyses clone the
    /// stored profile into an [`Analyzer`]; that cost (plus the analysis
    /// itself) is exactly what the memo cache amortizes.
    fn build(&self, q: &Query) -> Result<Artifact, StoreError> {
        match q {
            Query::ReportJson(id) => {
                let a = self.analyzer(*id)?;
                Ok(Artifact::Text(analyze(&a).to_json()))
            }
            Query::TextReport(id) => {
                let a = self.analyzer(*id)?;
                Ok(Artifact::Text(full_text_report(&a)))
            }
            Query::CodeView {
                profile,
                min_share_permille,
            } => {
                let a = self.analyzer(*profile)?;
                Ok(Artifact::Text(render_cct(
                    &a,
                    *min_share_permille as f64 / 1000.0,
                )))
            }
            Query::AddressView { profile, var } => {
                let a = self.analyzer(*profile)?;
                let id = a
                    .profile()
                    .var_by_name(var)
                    .map(|rec| rec.id)
                    .ok_or_else(|| StoreError::UnknownVariable(var.clone()))?;
                Ok(Artifact::Text(numa_analysis::export_address_view(
                    &a,
                    id,
                    RangeScope::Program,
                )))
            }
            Query::Diff { before, after } => {
                let b = self.analyzer(*before)?;
                let a = self.analyzer(*after)?;
                Ok(Artifact::Text(diff(&b, &a).render()))
            }
            Query::Aggregate => {
                let profiles = self.snapshot()?;
                Ok(Artifact::Aggregate(aggregate(&profiles)))
            }
            Query::TopVariables(n) => {
                let profiles = self.snapshot()?;
                Ok(Artifact::Text(aggregate(&profiles).top_variables(*n)))
            }
        }
    }

    /// Cross-run aggregate over the current set (memoized).
    pub fn aggregate(&self) -> Result<Arc<Artifact>, StoreError> {
        self.query(Query::Aggregate)
    }

    fn analyzer(&self, id: ProfileId) -> Result<Analyzer, StoreError> {
        let sp = self.get(id).ok_or(StoreError::UnknownProfile(id))?;
        Ok(Analyzer::new(sp.profile.clone()))
    }

    fn snapshot(&self) -> Result<Vec<Arc<StoredProfile>>, StoreError> {
        let shelf = self.shelf.read();
        if shelf.profiles.is_empty() {
            return Err(StoreError::EmptyStore);
        }
        Ok(shelf.profiles.clone())
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every memoized artifact (counters persist). Used to measure
    /// cold-path cost and to bound memory in long sessions.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    pub fn stats(&self) -> StoreStats {
        let shelf = self.shelf.read();
        StoreStats {
            profiles: shelf.profiles.len(),
            json_bytes: shelf.profiles.iter().map(|p| p.json_bytes).sum(),
            deduplicated: self.dedup_hits.load(Ordering::Relaxed),
            parse_failures: self.parse_failures.load(Ordering::Relaxed),
            cached_artifacts: self.cache.len(),
            cache: self.cache.stats(),
        }
    }
}

/// Snapshot of store accounting.
#[derive(Clone, Copy, Debug)]
pub struct StoreStats {
    pub profiles: usize,
    /// Total canonical-JSON footprint of the stored set.
    pub json_bytes: usize,
    /// Ingest attempts that deduplicated against an existing profile.
    pub deduplicated: u64,
    pub parse_failures: u64,
    pub cached_artifacts: usize,
    pub cache: CacheStats,
}

impl StoreStats {
    pub fn render(&self) -> String {
        format!(
            "profiles: {} ({} KiB canonical JSON)\n\
             ingest: {} deduplicated, {} parse failure(s)\n\
             cache: {} artifact(s) resident; {} hit(s), {} miss(es), \
             {} insertion(s), {} eviction(s) ({:.0}% hit rate)\n",
            self.profiles,
            self.json_bytes / 1024,
            self.deduplicated,
            self.parse_failures,
            self.cached_artifacts,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.hit_rate() * 100.0
        )
    }
}
