//! Multi-profile analysis store: the batch layer above the per-run
//! analyzer.
//!
//! The paper's workflow analyzes one measurement at a time
//! (`hpcrun-sim` → `hpcprof-sim`). Real tuning sessions accumulate
//! *many* runs — variants, thread counts, machines — and re-derive the
//! same expensive artifacts (reports, views, diffs) over and over. This
//! crate adds:
//!
//! * **Content-addressed ingestion** ([`ProfileStore::ingest_batch`],
//!   [`ProfileStore::ingest_dir`]): serialized [`NumaProfile`] JSON is
//!   parsed in parallel with rayon and stored under the FNV-1a hash of
//!   its canonical serialization, so duplicate runs dedup to one copy.
//! * **Hash-sharded shelves**: profiles live in N shard shelves keyed
//!   by `content_hash & (N-1)`, each behind its own `RwLock`, so
//!   concurrent ingests and queries touching different shards never
//!   contend. All CPU work — canonicalization, FNV-1a hashing, serde —
//!   happens *before* any lock is taken; a shard write lock covers one
//!   hash-map insert and a vec push.
//! * **Cross-run merging** ([`ProfileStore::aggregate`]): pooled
//!   [`MetricSet`](numa_profiler::MetricSet)s, per-variable totals keyed by name (VarIds are not
//!   stable across runs), and normalized \[min,max\]-reduced address
//!   coverage — the §7.2 reduction lifted from threads to runs.
//! * **Memoized queries** ([`ProfileStore::query`]): derived artifacts
//!   are cached in a sharded LRU keyed by `(scope hash, query)` with
//!   hit/miss/insertion/eviction counters ([`ProfileStore::stats`]).
//! * **Group-commit durability** ([`ProfileStore::open_durable`]): WAL
//!   appends are queued to a dedicated persister thread that batches
//!   pending records and flushes once per batch (see the `persist`
//!   module docs); startup replay parses records in parallel and
//!   inserts them shard-by-shard in parallel.
//!
//! The CLI front end is `hpcstore-sim` in the `numa-tools` crate.

mod aggregate;
mod cache;
mod hash;
mod persist;
pub mod snapshot;
pub mod stream;
pub mod wal;

pub use aggregate::{aggregate, CrossRunAggregate, VarAggregate};
pub use cache::{CacheStats, MemoCache};
pub use hash::{fnv1a, mix, ProfileId};

use numa_analysis::{analyze, diff, full_text_report, render_cct, Analyzer};
use numa_engine::{Engine, ThreadScalars};
use numa_obs::{trace, Counter, Registry};
use numa_profiler::{NumaProfile, RangeScope};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Store-level failures. Parse failures during batch ingestion do not
/// abort the batch — they are collected per input in [`BatchReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Input bytes were not a valid profile.
    Parse { label: String, message: String },
    /// A query referenced a profile id the store does not hold.
    UnknownProfile(ProfileId),
    /// A reference (id prefix or label) matched nothing.
    NoMatch(String),
    /// A reference matched more than one stored profile. Candidates are
    /// `(id, label)` pairs so callers can disambiguate.
    Ambiguous {
        needle: String,
        candidates: Vec<(ProfileId, String)>,
    },
    /// A set-level query was issued against an empty store.
    EmptyStore,
    /// A query referenced a variable the profile never recorded.
    UnknownVariable(String),
    /// A durable store could not log the operation: the WAL append or
    /// its group commit failed, the uncommitted log tail was rolled
    /// back, and the operation was **not** applied — the caller may
    /// retry once the underlying condition (full disk, I/O error)
    /// clears. An ingest is never acknowledged-then-dropped.
    Persist { message: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Parse { label, message } => {
                write!(f, "cannot parse profile {label:?}: {message}")
            }
            StoreError::UnknownProfile(id) => write!(f, "no profile {id} in the store"),
            StoreError::NoMatch(needle) => write!(f, "{needle:?} matches no stored profile"),
            StoreError::Ambiguous { needle, candidates } => {
                write!(
                    f,
                    "{needle:?} is ambiguous: {} profiles match",
                    candidates.len()
                )?;
                for (id, label) in candidates.iter().take(8) {
                    write!(f, "\n  {id}  {label}")?;
                }
                if candidates.len() > 8 {
                    write!(f, "\n  ... and {} more", candidates.len() - 8)?;
                }
                Ok(())
            }
            StoreError::EmptyStore => write!(f, "the store holds no profiles"),
            StoreError::UnknownVariable(name) => {
                write!(f, "variable {name:?} not present in the profile")
            }
            StoreError::Persist { message } => {
                write!(f, "ingest not durable (operation rolled back): {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One ingested profile: the parsed measurement plus its identity.
pub struct StoredProfile {
    pub id: ProfileId,
    /// Where the profile came from (file name, CLI label, ...). Purely
    /// informational; identity is `id`. An `Arc<str>` so listings and
    /// candidate rows share it instead of cloning the string.
    pub label: Arc<str>,
    /// The parsed measurement, behind an `Arc` so analyzers and the
    /// attribution engine share the one stored copy.
    pub profile: Arc<NumaProfile>,
    /// Size of the canonical serialization, for footprint accounting.
    pub json_bytes: usize,
    /// Attribution engine (interned symbols + columnar index), built on
    /// first query and shared by every analyzer handed out afterwards.
    engine: OnceLock<Arc<Engine>>,
    /// Per-thread scalar columns a binary decode extracted, waiting for
    /// the engine build to consume them (see [`StoredProfile::engine`]).
    /// `None` for JSON-ingested profiles.
    scalars: Mutex<Option<ThreadScalars>>,
}

impl StoredProfile {
    fn new(id: ProfileId, label: &str, profile: NumaProfile, json_bytes: usize) -> Self {
        StoredProfile {
            id,
            label: Arc::from(label),
            profile: Arc::new(profile),
            json_bytes,
            engine: OnceLock::new(),
            scalars: Mutex::new(None),
        }
    }

    /// [`StoredProfile::new`] carrying the scalar columns a binary
    /// decode already extracted, so the engine build skips re-walking
    /// the per-thread structs for them.
    fn with_scalars(
        id: ProfileId,
        label: &str,
        profile: NumaProfile,
        json_bytes: usize,
        scalars: ThreadScalars,
    ) -> Self {
        let sp = Self::new(id, label, profile, json_bytes);
        *sp.scalars.lock() = Some(scalars);
        sp
    }

    /// The shared [`Engine`] over this profile. The index is built at
    /// most once; callers get a cheap `Arc` clone, never a profile copy.
    /// A binary ingest's pre-extracted scalar columns are consumed by
    /// the one build that happens.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(self.engine.get_or_init(|| {
            let profile = Arc::clone(&self.profile);
            match self.scalars.lock().take() {
                Some(scalars) => Arc::new(Engine::with_scalars(profile, scalars)),
                None => Arc::new(Engine::new(profile)),
            }
        }))
    }
}

/// One row of [`ProfileStore::entries`]: the listing-relevant facts
/// about a stored profile. The label is a shared `Arc<str>` — listing
/// never clones profile contents or label bytes.
#[derive(Clone, Debug)]
pub struct ProfileListEntry {
    pub id: ProfileId,
    pub label: Arc<str>,
    pub threads: usize,
    pub json_bytes: usize,
}

/// Outcome of one batch ingestion.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Ids of newly added profiles, in input order.
    pub added: Vec<ProfileId>,
    /// Inputs that hashed to an already-stored profile.
    pub deduplicated: usize,
    /// Inputs that failed to parse: (label, typed error — always
    /// [`StoreError::Parse`]). Typed, not stringly: callers telling a
    /// bad input apart from a failed disk no longer match on message
    /// prose.
    pub rejected: Vec<(String, StoreError)>,
    /// Inputs that could not be read at all: (label, I/O error). Only
    /// populated by file-based ingestion ([`ProfileStore::ingest_dir`]);
    /// an unreadable file skips that file, never the batch.
    pub io_errors: Vec<(String, String)>,
    /// Inputs that parsed but could not be made durable: (label, typed
    /// error — always [`StoreError::Persist`]). The profile was **not**
    /// added — the WAL group holding it failed and was rolled back, so
    /// the input can be retried once the underlying condition clears.
    pub persist_failures: Vec<(String, StoreError)>,
}

impl BatchReport {
    /// Fold another report (e.g. one directory chunk) into this one.
    pub fn merge(&mut self, other: BatchReport) {
        self.added.extend(other.added);
        self.deduplicated += other.deduplicated;
        self.rejected.extend(other.rejected);
        self.io_errors.extend(other.io_errors);
        self.persist_failures.extend(other.persist_failures);
    }
}

/// A derived artifact, memoized by the store.
#[derive(Debug)]
pub enum Artifact {
    Text(String),
    Aggregate(CrossRunAggregate),
}

impl Artifact {
    /// The textual form every artifact can render to.
    pub fn text(&self) -> String {
        match self {
            Artifact::Text(s) => s.clone(),
            Artifact::Aggregate(a) => a.render(),
        }
    }

    pub fn as_aggregate(&self) -> Option<&CrossRunAggregate> {
        match self {
            Artifact::Aggregate(a) => Some(a),
            Artifact::Text(_) => None,
        }
    }
}

/// A memoizable query. Float-free and hashable by construction so it
/// can key the cache directly.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// Data-centric report (JSON) for one profile.
    ReportJson(ProfileId),
    /// Full text report for one profile: verdict, hot variables, and
    /// their address-centric views.
    TextReport(ProfileId),
    /// Code-centric view: the merged CCT with NUMA metrics. Subtrees
    /// below `min_share_permille`/1000 of program cost are elided.
    CodeView {
        profile: ProfileId,
        min_share_permille: u16,
    },
    /// Address-centric view (JSON) of one variable, by source name.
    AddressView { profile: ProfileId, var: String },
    /// Pairwise diff of two runs, rendered as text.
    Diff { before: ProfileId, after: ProfileId },
    /// Cross-run aggregate over the whole stored set.
    Aggregate,
    /// Top-n hottest variables across the whole stored set.
    TopVariables(usize),
}

impl Query {
    /// Scope hash for queries over explicitly named profiles. Pooled
    /// queries (`Aggregate`, `TopVariables`) have no fixed scope — it is
    /// the hash of the set snapshot they run over (see
    /// [`ProfileStore::query`]).
    fn fixed_scope(&self) -> Option<u64> {
        match self {
            Query::ReportJson(id)
            | Query::TextReport(id)
            | Query::CodeView { profile: id, .. }
            | Query::AddressView { profile: id, .. } => Some(mix(0, id.0)),
            Query::Diff { before, after } => Some(mix(mix(0, before.0), after.0)),
            Query::Aggregate | Query::TopVariables(_) => None,
        }
    }
}

/// Salt folded with each id into the order-insensitive set hash.
const SET_HASH_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Order-insensitive XOR-fold of the ids in `profiles` — equals
/// [`ProfileStore::set_hash`] whenever `profiles` is the full set.
fn pooled_scope(profiles: &[Arc<StoredProfile>]) -> u64 {
    profiles
        .iter()
        .fold(0, |h, sp| h ^ mix(SET_HASH_SALT, sp.id.0))
}

/// One shard's shelf: the profiles whose content hash maps here.
#[derive(Default)]
struct Shelf {
    /// `(global insertion sequence, profile)` — the sequence restores
    /// cross-shard insertion order in listings.
    profiles: Vec<(u64, Arc<StoredProfile>)>,
    by_id: HashMap<ProfileId, usize>,
    /// Order-insensitive combined hash of this shard's ids.
    set_hash: u64,
}

/// A shard: its shelf plus contention accounting.
#[derive(Default)]
struct Shard {
    shelf: RwLock<Shelf>,
    ingests: Counter,
    read_contended: Counter,
    write_contended: Counter,
}

impl Shard {
    /// Read-lock the shelf, counting the acquisition as contended when
    /// it could not be granted immediately.
    fn read(&self) -> parking_lot::RwLockReadGuard<'_, Shelf> {
        match self.shelf.try_read() {
            Some(g) => g,
            None => {
                self.read_contended.inc();
                self.shelf.read()
            }
        }
    }

    /// Write-lock the shelf, counting contended acquisitions.
    fn write(&self) -> parking_lot::RwLockWriteGuard<'_, Shelf> {
        match self.shelf.try_write() {
            Some(g) => g,
            None => {
                self.write_contended.inc();
                self.shelf.write()
            }
        }
    }
}

/// The sharded shelf set, shared with the persister thread (snapshot
/// compaction reads the corpus through it).
struct ShardSet {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: usize,
    /// Global insertion sequence, stamped outside any lock.
    seq: AtomicU64,
}

impl ShardSet {
    fn new(n: usize) -> ShardSet {
        ShardSet {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: n - 1,
            seq: AtomicU64::new(0),
        }
    }

    /// The shard a profile id maps to: `content_hash & (N-1)`.
    fn of(&self, id: ProfileId) -> &Shard {
        &self.shards[id.0 as usize & self.mask]
    }

    /// Every stored profile, sorted by id — a deterministic order that
    /// does not depend on the shard count or insertion interleaving, so
    /// snapshots and pooled aggregates are reproducible.
    fn corpus_sorted(&self) -> Vec<Arc<StoredProfile>> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shelf = shard.read();
            all.extend(shelf.profiles.iter().map(|(_, sp)| Arc::clone(sp)));
        }
        all.sort_by_key(|sp| sp.id.0);
        all
    }
}

/// Sizing knobs for [`ProfileStore::with_config`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Memoized artifacts held by the LRU cache.
    pub cache_capacity: usize,
    /// Shard count; rounded up to a power of two and clamped to
    /// `1..=256`. One shard reproduces the old single-lock store.
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            cache_capacity: ProfileStore::DEFAULT_CACHE_CAPACITY,
            shards: ProfileStore::DEFAULT_SHARDS,
        }
    }
}

/// Tuning knobs for durable stores ([`ProfileStore::open_durable`]).
#[derive(Clone, Debug)]
pub struct PersistOptions {
    /// Compact (snapshot + reset the WAL) once the WAL exceeds this many
    /// bytes. The compaction cost is proportional to the whole corpus,
    /// so this trades replay time against snapshot churn.
    pub snapshot_wal_bytes: u64,
    /// `fsync` the WAL once per group commit (and the snapshot after
    /// every compaction). Off by default: flushing to the OS already
    /// survives a SIGKILL of the daemon; `fsync` additionally survives
    /// power loss at a large per-commit cost.
    pub fsync: bool,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            snapshot_wal_bytes: 4 << 20,
            fsync: false,
        }
    }
}

/// Persistence counters: what recovery found at startup plus runtime
/// append/compaction activity. All zeros for in-memory stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Whether the store is backed by a data directory.
    pub durable: bool,
    /// Records loaded from the snapshot at startup.
    pub snapshot_records_loaded: u64,
    /// Records replayed from the WAL at startup.
    pub wal_records_replayed: u64,
    /// Torn/corrupt WAL tail bytes dropped at startup.
    pub wal_truncated_bytes: u64,
    /// Torn/corrupt snapshot tail bytes dropped at startup.
    pub snapshot_truncated_bytes: u64,
    /// Replayed records whose JSON no longer parsed (checksum held, so
    /// this indicates a profile-format change, not bit rot).
    pub replay_parse_failures: u64,
    /// Records appended to the WAL since startup.
    pub wal_appends: u64,
    /// Group commits: WAL flushes that made a batch of appends durable.
    /// `wal_appends / wal_group_commits` is the achieved batching
    /// factor (1.0 when every ingest commits alone).
    pub wal_group_commits: u64,
    /// Current WAL size in bytes (file header included).
    pub wal_bytes: u64,
    /// Snapshot compactions performed since startup (flushes included).
    pub snapshots_written: u64,
    /// Append/compaction I/O failures. A failed append fails its whole
    /// commit group: the log tail is rolled back and every affected
    /// ingest returns [`StoreError::Persist`] instead of being
    /// acknowledged. The store keeps serving reads from memory.
    pub io_errors: u64,
    /// Streaming sessions whose seal replayed to a complete profile at
    /// startup.
    pub sessions_recovered: u64,
    /// Streaming sessions dropped at startup: unsealed (the client or
    /// daemon died mid-stream) or sealed but incomplete/corrupt.
    pub sessions_dropped: u64,
    /// Session chunk records seen in the snapshot + WAL at startup.
    pub session_chunks_replayed: u64,
}

/// Per-shard accounting row in [`StoreStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Profiles resident in this shard.
    pub profiles: usize,
    /// Ingests that landed in this shard (dedup hits excluded).
    pub ingests: u64,
    /// Shelf read-lock acquisitions that had to block.
    pub read_contended: u64,
    /// Shelf write-lock acquisitions that had to block.
    pub write_contended: u64,
}

/// The store: hash-sharded profiles plus the memo cache over them,
/// optionally backed by a WAL + snapshot data directory.
pub struct ProfileStore {
    shards: Arc<ShardSet>,
    cache: MemoCache<(u64, Query), Artifact>,
    dedup_hits: Counter,
    parse_failures: Counter,
    /// Group-commit persister; unset for in-memory stores. Ingest paths
    /// never hold a shelf lock while talking to it.
    persist: OnceLock<persist::Persister>,
    /// Encoded WAL chunk records of open streaming sessions, keyed by
    /// session id. Shared with the persister thread: a snapshot
    /// compaction resets the WAL (the only place staged chunks live),
    /// so it re-stages these into the fresh log. Entries are dropped on
    /// seal/abort/reap via [`ProfileStore::discard_session`].
    session_log: Arc<parking_lot::Mutex<HashMap<u64, Vec<Vec<u8>>>>>,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ProfileStore {
    /// Stop the persister (committing anything queued) and join it, so
    /// a dropped store leaves the WAL exactly as acknowledged.
    fn drop(&mut self) {
        if let Some(p) = self.persist.get() {
            p.stop();
        }
    }
}

/// Files per [`ProfileStore::ingest_dir`] read-and-parse chunk: bounds
/// buffered bytes while still letting rayon parse a chunk in parallel.
const INGEST_DIR_CHUNK: usize = 32;

/// One recovered profile record headed for replay — the JSON form
/// persist v1/v2 wrote, or the binary columnar form v3 writes.
enum ReplayRecord {
    Json(wal::WalRecord),
    Bin(wal::BinProfileRecord),
}

impl ProfileStore {
    /// Default number of memoized artifacts.
    pub const DEFAULT_CACHE_CAPACITY: usize = 256;

    /// Default shard count. Eight shards keep the per-shard lock nearly
    /// uncontended for typical daemon worker pools while costing a few
    /// hundred bytes of fixed overhead.
    pub const DEFAULT_SHARDS: usize = 8;

    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    pub fn with_cache_capacity(capacity: usize) -> Self {
        Self::with_config(StoreConfig {
            cache_capacity: capacity,
            ..StoreConfig::default()
        })
    }

    pub fn with_config(config: StoreConfig) -> Self {
        let shards = config.shards.clamp(1, 256).next_power_of_two();
        ProfileStore {
            shards: Arc::new(ShardSet::new(shards)),
            cache: MemoCache::new(config.cache_capacity),
            dedup_hits: Counter::new(),
            parse_failures: Counter::new(),
            persist: OnceLock::new(),
            session_log: Arc::new(parking_lot::Mutex::new(HashMap::new())),
        }
    }

    /// Number of shard shelves (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.shards.len()
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Open a durable store on `dir` with the default shard count: load
    /// the snapshot, replay the WAL (truncating at the first
    /// torn/corrupt record), and attach the group-commit persister so
    /// every later ingest is logged before it is acknowledged. Recovery
    /// counts are available via [`ProfileStore::persist_stats`].
    pub fn open_durable(
        dir: &Path,
        cache_capacity: usize,
        opts: PersistOptions,
    ) -> io::Result<ProfileStore> {
        Self::open_durable_config(
            dir,
            StoreConfig {
                cache_capacity,
                ..StoreConfig::default()
            },
            opts,
        )
    }

    /// [`ProfileStore::open_durable`] with explicit store sizing.
    /// Replay parses snapshot + WAL records in parallel, partitions them
    /// by destination shard, and inserts each shard's group under one
    /// write lock — shards replay concurrently.
    pub fn open_durable_config(
        dir: &Path,
        config: StoreConfig,
        opts: PersistOptions,
    ) -> io::Result<ProfileStore> {
        Self::open_durable_config_with(dir, config, opts, Arc::new(numa_faults::StdStorage))
    }

    /// [`ProfileStore::open_durable_config`] over an explicit
    /// [`numa_faults::Storage`] backend. Production callers use
    /// [`numa_faults::StdStorage`] (what the plain constructors do);
    /// tests and the `--fault-spec` daemon flag pass a
    /// [`numa_faults::FaultyStorage`] to inject I/O failures into every
    /// persistence path — recovery scans, WAL appends, snapshot
    /// compaction, directory fsyncs — without touching this code.
    pub fn open_durable_config_with(
        dir: &Path,
        config: StoreConfig,
        opts: PersistOptions,
        storage: Arc<dyn numa_faults::Storage>,
    ) -> io::Result<ProfileStore> {
        std::fs::create_dir_all(dir)?;
        let store = Self::with_config(config);
        let mut base = PersistStats {
            durable: true,
            ..PersistStats::default()
        };

        let snap = snapshot::load_snapshot_with(&*storage, dir)?;
        base.snapshot_records_loaded = snap.entries.len() as u64;
        base.snapshot_truncated_bytes = snap.truncated_bytes;
        let log = wal::scan_file_with(&*storage, &wal::wal_path(dir), wal::WAL_MAGIC)?;
        base.wal_records_replayed = log.entries.len() as u64;
        base.wal_truncated_bytes = log.truncated_bytes;

        // Replay snapshot first, then the log on top; content addressing
        // dedups records present in both. The persister is not attached
        // yet, so replayed inserts do not re-append to the WAL. Sealed
        // streaming sessions reassemble into ordinary profile records;
        // unsealed or incomplete ones are dropped wholesale — a client
        // (or this daemon) that died mid-stream never half-ingests.
        let mut records: Vec<ReplayRecord> = Vec::new();
        let mut chunks: HashMap<u64, std::collections::BTreeMap<u64, wal::ChunkData>> =
            HashMap::new();
        let mut seals: Vec<wal::SealRecord> = Vec::new();
        for entry in snap.entries.into_iter().chain(log.entries) {
            match entry {
                wal::WalEntry::Profile(r) => records.push(ReplayRecord::Json(r)),
                wal::WalEntry::ProfileBin(r) => records.push(ReplayRecord::Bin(r)),
                wal::WalEntry::Chunk(c) => {
                    base.session_chunks_replayed += 1;
                    // BTreeMap insert dedups chunks re-staged by a
                    // compaction that raced the original append.
                    chunks
                        .entry(c.session)
                        .or_default()
                        .insert(c.seq, c.payload);
                }
                wal::WalEntry::Seal(s) => seals.push(s),
            }
        }
        for seal in seals {
            let parts = chunks.remove(&seal.session).unwrap_or_default();
            match Self::assemble_sealed(&seal, parts) {
                Some(record) => {
                    base.sessions_recovered += 1;
                    records.push(ReplayRecord::Json(record));
                }
                None => base.sessions_dropped += 1,
            }
        }
        base.sessions_dropped += chunks.len() as u64; // chunks with no seal
        base.replay_parse_failures = store.replay(records);

        let writer =
            wal::WalWriter::open_with(&*storage, &wal::wal_path(dir), log.valid_len, opts.fsync)?;
        // The compaction corpus closure runs on the persister thread: it
        // clones profile `Arc`s under brief shard read locks, then
        // serializes outside any lock (in parallel under rayon).
        let shards = Arc::clone(&store.shards);
        let corpus: persist::CorpusFn = Box::new(move || {
            use rayon::prelude::*;
            let profiles = shards.corpus_sorted();
            profiles
                .par_iter()
                .map(|sp| {
                    // Snapshots are always written in the binary codec —
                    // compaction is where a JSON-era corpus migrates
                    // forward to persist v3.
                    (
                        sp.label.to_string(),
                        numa_codec::encode_profile(&sp.profile),
                        sp.id.0,
                        sp.json_bytes as u32,
                    )
                })
                .collect_vec()
        });
        let session_log = Arc::clone(&store.session_log);
        let retained: persist::RetainedFn = Box::new(move || {
            let log = session_log.lock();
            log.iter()
                .flat_map(|(session, records)| records.iter().map(|r| (*session, r.clone())))
                .collect()
        });
        let persister = persist::Persister::spawn(
            dir.to_path_buf(),
            writer,
            opts,
            base,
            storage,
            corpus,
            retained,
        )?;
        let _ = store.persist.set(persister);
        Ok(store)
    }

    /// Reassemble one sealed session recovered from disk. `None` (drop
    /// the session) when chunks are missing, fail to parse, do not
    /// assemble, or the assembled canonical JSON does not hash to the
    /// seal's content hash. Chunks decode from whichever staging format
    /// (JSON or binary) each was appended in — a session may mix them.
    fn assemble_sealed(
        seal: &wal::SealRecord,
        parts: std::collections::BTreeMap<u64, wal::ChunkData>,
    ) -> Option<wal::WalRecord> {
        // Chunks past the sealed count are orphans of appends whose ack
        // reported failure (the record hit disk but its group did not
        // commit); the seal's prefix is what was acknowledged, so only
        // it counts.
        let parts: std::collections::BTreeMap<u64, wal::ChunkData> = parts
            .into_iter()
            .filter(|(seq, _)| *seq < seal.chunks)
            .collect();
        if parts.len() as u64 != seal.chunks {
            return None; // missing chunks
        }
        let chunks: Vec<stream::ChunkPayload> = parts
            .values()
            .map(stream::ChunkPayload::from_chunk_data)
            .collect::<Option<Vec<_>>>()?;
        let profile = stream::assemble(chunks).ok()?;
        let (id, canonical) = ProfileId::of(&profile);
        if id.0 != seal.content_hash {
            return None; // assembled bytes disagree with the sealed hash
        }
        Some(wal::WalRecord {
            label: seal.label.clone(),
            json: canonical,
            content_hash: id.0,
        })
    }

    /// Rebuild the in-memory set from recovered records: parse and
    /// canonicalize in parallel (the expensive part), stamp insertion
    /// sequence numbers in file order, then insert per shard in
    /// parallel — one write lock per shard for its whole group. Returns
    /// the number of records that no longer parse.
    ///
    /// Binary (persist-v3) records skip re-canonicalization: their
    /// content hash was computed at ingest time and the record is
    /// checksum-protected, so the recorded id and JSON footprint are
    /// trusted as-is — the replay cost is one columnar decode.
    fn replay(&self, records: Vec<ReplayRecord>) -> u64 {
        use rayon::prelude::*;
        if records.is_empty() {
            return 0;
        }
        let parsed: Vec<Option<Arc<StoredProfile>>> = records
            .par_iter()
            .map(|r| match r {
                ReplayRecord::Json(r) => NumaProfile::from_json(&r.json).ok().map(|profile| {
                    let (id, canonical) = ProfileId::of(&profile);
                    Arc::new(StoredProfile::new(id, &r.label, profile, canonical.len()))
                }),
                ReplayRecord::Bin(r) => {
                    let view = numa_codec::ProfileView::parse(&r.bytes).ok()?;
                    let scalars = ThreadScalars {
                        instructions: view.instructions().collect(),
                        numa_events: view.numa_events().collect(),
                    };
                    let profile = view.to_profile().ok()?;
                    Some(Arc::new(StoredProfile::with_scalars(
                        ProfileId(r.content_hash),
                        &r.label,
                        profile,
                        r.json_len as usize,
                        scalars,
                    )))
                }
            })
            .collect_vec();
        let failures = parsed.iter().filter(|p| p.is_none()).count() as u64;

        let mut by_shard: Vec<Vec<(u64, Arc<StoredProfile>)>> =
            (0..self.shards.shards.len()).map(|_| Vec::new()).collect();
        for sp in parsed.into_iter().flatten() {
            let seq = self.shards.seq.fetch_add(1, Ordering::Relaxed);
            by_shard[sp.id.0 as usize & self.shards.mask].push((seq, sp));
        }
        let deduped: u64 = by_shard
            .par_iter()
            .map(|group| {
                let mut dups = 0u64;
                let Some((_, first)) = group.first() else {
                    return 0;
                };
                let shard = self.shards.of(first.id);
                let mut shelf = shard.write();
                for (seq, sp) in group {
                    if shelf.by_id.contains_key(&sp.id) {
                        dups += 1;
                    } else {
                        shelf.set_hash ^= mix(SET_HASH_SALT, sp.id.0);
                        let slot = shelf.profiles.len();
                        shelf.by_id.insert(sp.id, slot);
                        shelf.profiles.push((*seq, Arc::clone(sp)));
                        shard.ingests.inc();
                    }
                }
                dups
            })
            .collect_vec()
            .into_iter()
            .sum();
        self.dedup_hits.add(deduped);
        failures
    }

    /// Whether this store is backed by a data directory.
    pub fn is_durable(&self) -> bool {
        self.persist.get().is_some()
    }

    /// Persistence counters (all-zero default for in-memory stores).
    pub fn persist_stats(&self) -> PersistStats {
        self.persist.get().map(|p| p.stats()).unwrap_or_default()
    }

    /// Adopt every store counter into `registry` under the
    /// `numa_store_` prefix: the memo-cache and ingest counters are
    /// cloned handles of the hot-path storage, per-shard rows become
    /// `{shard="N"}` labeled series, and persistence stats are closure
    /// collectors over [`ProfileStore::persist_stats`] (they read the
    /// persister's own accounting at scrape time).
    pub fn register_metrics(self: &Arc<Self>, registry: &Registry) {
        self.cache.register_metrics(registry);
        registry.counter(
            "numa_store_dedup_hits_total",
            "Ingests dropped because an identical profile was already stored.",
            &[],
            self.dedup_hits.clone(),
        );
        registry.counter(
            "numa_store_parse_failures_total",
            "Ingest payloads rejected as unparseable.",
            &[],
            self.parse_failures.clone(),
        );
        for (i, shard) in self.shards.shards.iter().enumerate() {
            let label = i.to_string();
            registry.counter(
                "numa_store_shard_ingests_total",
                "Fresh profiles inserted, by shard.",
                &[("shard", &label)],
                shard.ingests.clone(),
            );
            registry.counter(
                "numa_store_shard_read_contended_total",
                "Shelf read-lock acquisitions that had to block, by shard.",
                &[("shard", &label)],
                shard.read_contended.clone(),
            );
            registry.counter(
                "numa_store_shard_write_contended_total",
                "Shelf write-lock acquisitions that had to block, by shard.",
                &[("shard", &label)],
                shard.write_contended.clone(),
            );
        }
        let store = Arc::clone(self);
        registry.gauge_fn(
            "numa_store_profiles",
            "Profiles resident in the store.",
            &[],
            move || store.len() as i64,
        );
        let store = Arc::clone(self);
        registry.gauge_fn(
            "numa_store_cached_artifacts",
            "Artifacts resident in the memo cache.",
            &[],
            move || store.cache.len() as i64,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_wal_appends_total",
            "Records appended to the WAL since startup.",
            &[],
            move || store.persist_stats().wal_appends,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_wal_group_commits_total",
            "WAL group commits since startup.",
            &[],
            move || store.persist_stats().wal_group_commits,
        );
        let store = Arc::clone(self);
        registry.gauge_fn(
            "numa_store_wal_bytes",
            "Current WAL size in bytes (header included).",
            &[],
            move || store.persist_stats().wal_bytes as i64,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_snapshots_written_total",
            "Snapshot compactions performed since startup.",
            &[],
            move || store.persist_stats().snapshots_written,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_persist_io_errors_total",
            "WAL append / compaction I/O failures.",
            &[],
            move || store.persist_stats().io_errors,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_snapshot_records_loaded",
            "Records loaded from the snapshot at startup.",
            &[],
            move || store.persist_stats().snapshot_records_loaded,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_wal_records_replayed",
            "Records replayed from the WAL at startup.",
            &[],
            move || store.persist_stats().wal_records_replayed,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_sessions_recovered_total",
            "Streaming sessions recovered whole at startup.",
            &[],
            move || store.persist_stats().sessions_recovered,
        );
        let store = Arc::clone(self);
        registry.counter_fn(
            "numa_store_sessions_dropped_total",
            "Streaming sessions dropped at startup (unsealed or corrupt).",
            &[],
            move || store.persist_stats().sessions_dropped,
        );
    }

    /// Force a snapshot compaction now: write the whole corpus to the
    /// snapshot atomically and reset the WAL. A no-op for in-memory
    /// stores. Call on daemon shutdown so restart recovery is a pure
    /// snapshot load.
    pub fn flush(&self) -> io::Result<()> {
        match self.persist.get() {
            None => Ok(()),
            Some(p) => p.flush(),
        }
    }

    /// Log profiles about to be inserted and block until the
    /// group-commit persister has them flushed. `fresh` rows are
    /// `(label, codec bytes, id, canonical json length)`; record
    /// encoding happens here, on the ingest thread, outside every lock.
    /// Returns one result per row, in input order: `Err` means the
    /// row's commit group failed and was rolled back — the caller must
    /// **not** insert that profile (ack ⇒ durable). In-memory stores
    /// report every row `Ok`.
    fn persist_batch(
        &self,
        fresh: &[(&str, &[u8], ProfileId, u32)],
    ) -> Vec<Result<(), StoreError>> {
        let Some(p) = self.persist.get() else {
            return fresh.iter().map(|_| Ok(())).collect();
        };
        let records: Vec<Vec<u8>> = fresh
            .iter()
            .map(|(label, bytes, id, json_len)| {
                wal::encode_bin_record(label, bytes, id.0, *json_len)
            })
            .collect();
        let started = std::time::Instant::now();
        let results = p.append_all(records);
        trace::note_wal_ack_us(started.elapsed().as_micros() as u64);
        results
            .into_iter()
            .map(|r| {
                r.map_err(|e| StoreError::Persist {
                    message: e.to_string(),
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Streaming sessions
    // ------------------------------------------------------------------

    /// Stage one chunk of an open streaming session in the WAL and block
    /// until the group-commit persister has it flushed — an acknowledged
    /// chunk survives a SIGKILL of the daemon (it replays if and only if
    /// its session later seals). A no-op for in-memory stores.
    ///
    /// On a persistence failure the chunk is un-staged (the seal's
    /// chunk count must only cover durable chunks) and
    /// [`StoreError::Persist`] is returned; the caller should roll the
    /// session's in-memory state back in step so a retry of the same
    /// sequence number is possible.
    pub fn stage_chunk(&self, session: u64, seq: u64, payload: &str) -> Result<(), StoreError> {
        self.stage_chunk_data(session, seq, &wal::ChunkData::Json(payload.to_string()))
    }

    /// [`ProfileStore::stage_chunk`] for a binary-codec chunk payload
    /// (see [`stream::ChunkPayload::to_binary`]).
    pub fn stage_chunk_binary(
        &self,
        session: u64,
        seq: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        self.stage_chunk_data(session, seq, &wal::ChunkData::Binary(payload.to_vec()))
    }

    fn stage_chunk_data(
        &self,
        session: u64,
        seq: u64,
        payload: &wal::ChunkData,
    ) -> Result<(), StoreError> {
        let Some(p) = self.persist.get() else {
            return Ok(());
        };
        let record = wal::encode_chunk_record(session, seq, payload);
        // Staged before the append so a compaction racing it re-stages
        // the chunk into the fresh log rather than losing it.
        self.session_log
            .lock()
            .entry(session)
            .or_default()
            .push(record.clone());
        let started = std::time::Instant::now();
        let appended = p.append_all(vec![record]).pop();
        trace::note_wal_ack_us(started.elapsed().as_micros() as u64);
        match appended {
            Some(Err(e)) => {
                let mut log = self.session_log.lock();
                if let Some(records) = log.get_mut(&session) {
                    records.pop();
                    if records.is_empty() {
                        log.remove(&session);
                    }
                }
                Err(StoreError::Persist {
                    message: e.to_string(),
                })
            }
            _ => Ok(()),
        }
    }

    /// Commit a sealed streaming session: insert the assembled profile
    /// and append the seal record that makes the staged chunks
    /// replayable. The result is indistinguishable from
    /// [`ProfileStore::ingest_profile`] of the same profile — same id,
    /// same set hash, same aggregate text. Returns `(id, newly_added)`;
    /// a dedup (`false`) appends no seal, and either way the session's
    /// staged chunks are discarded.
    ///
    /// The insert precedes the seal append so a compaction racing the
    /// commit always captures the profile in its snapshot corpus; if
    /// the seal append then fails, the insert is rolled back, the
    /// session is discarded, and [`StoreError::Persist`] is returned —
    /// the commit was **not** acknowledged-then-dropped, and the client
    /// can re-stream. If an earlier failed compaction lost the
    /// session's staged chunks (the persister refuses the seal), the
    /// commit falls back to persisting the assembled profile as an
    /// ordinary record, restoring the durability the chunks lost.
    pub fn commit_sealed(
        &self,
        session: u64,
        label: &str,
        profile: NumaProfile,
    ) -> Result<(ProfileId, bool), StoreError> {
        let (id, canonical) = ProfileId::of(&profile);
        let sp = Arc::new(StoredProfile::new(id, label, profile, canonical.len()));
        // Kept for the rare poisoned-session fallback below, which
        // needs the profile after the insert consumed `sp`.
        let profile = Arc::clone(&sp.profile);
        let added = self.insert(sp);
        if !added {
            self.discard_session(session);
            return Ok((id, false));
        }
        let Some(p) = self.persist.get() else {
            self.discard_session(session);
            return Ok((id, true));
        };
        let seal = {
            let mut log = self.session_log.lock();
            let records = log.entry(session).or_default();
            let seal = wal::encode_seal_record(session, records.len() as u64, id.0, label);
            // Keep the seal alongside the chunks until the commit is
            // settled: a compaction racing it re-stages chunks *and*
            // seal together, so the sealed session survives the WAL
            // reset even before the seal append is processed.
            records.push(seal.clone());
            seal
        };
        match p.append_seal(seal, session) {
            Ok(()) => {
                self.discard_session(session);
                Ok((id, true))
            }
            Err(persist::AppendError::SessionPoisoned) => {
                // The chunks this seal counts on are gone from the WAL.
                // The assembled profile is in hand, so persist it as an
                // ordinary record instead of sealing.
                self.discard_session(session);
                let bytes = numa_codec::encode_profile(&profile);
                let row = (label, bytes.as_slice(), id, canonical.len() as u32);
                match self.persist_batch(&[row]).pop() {
                    Some(Err(e)) => {
                        self.remove(id);
                        Err(e)
                    }
                    _ => Ok((id, true)),
                }
            }
            Err(e) => {
                self.remove(id);
                self.discard_session(session);
                Err(StoreError::Persist {
                    message: e.to_string(),
                })
            }
        }
    }

    /// Drop a session's staged chunk records (on seal, abort, or lease
    /// reap). Chunks already written to the WAL stay there but are
    /// sealless, so replay discards them; the next compaction stops
    /// re-staging them and physically reclaims the space.
    pub fn discard_session(&self, session: u64) {
        self.session_log.lock().remove(&session);
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Ingest an already-parsed profile. Returns its id and whether it
    /// was new (`false` = content-identical profile already stored).
    ///
    /// On durable stores the profile becomes visible first, then is
    /// WAL-committed (flushed to the OS, group-committed) before the
    /// call returns — insert-then-persist. The order matters: a
    /// snapshot compaction racing this ingest clones the store's
    /// corpus and then *resets the WAL*, so a record persisted before
    /// its insert could be wiped from the log while still missing from
    /// the snapshot — acknowledged yet unrecoverable. Inserting first
    /// guarantees any compaction that discards this profile's WAL
    /// record has already captured the profile itself. A persistence
    /// failure rolls the insert back and returns
    /// [`StoreError::Persist`]; the WAL tail was truncated too, so the
    /// ingest can simply be retried. (A concurrent identical ingest
    /// can dedup against an insert whose persistence then fails — it
    /// reports `(id, false)` for a profile that ends up absent; closing
    /// that window would serialize all ingest on one lock.)
    pub fn ingest_profile(
        &self,
        label: &str,
        profile: NumaProfile,
    ) -> Result<(ProfileId, bool), StoreError> {
        let (id, canonical) = ProfileId::of(&profile);
        let sp = Arc::new(StoredProfile::new(id, label, profile, canonical.len()));
        // Encoded before the insert consumes `sp`; only durable stores
        // pay for it.
        let bytes = if self.persist.get().is_some() {
            numa_codec::encode_profile(&sp.profile)
        } else {
            Vec::new()
        };
        if !self.insert(sp) {
            return Ok((id, false));
        }
        let row = (label, bytes.as_slice(), id, canonical.len() as u32);
        if let Some(Err(e)) = self.persist_batch(&[row]).pop() {
            self.remove(id);
            return Err(e);
        }
        Ok((id, true))
    }

    /// Ingest one serialized profile.
    pub fn ingest_bytes(&self, label: &str, json: &str) -> Result<(ProfileId, bool), StoreError> {
        match NumaProfile::from_json(json) {
            Ok(profile) => self.ingest_profile(label, profile),
            Err(e) => {
                self.parse_failures.inc();
                Err(StoreError::Parse {
                    label: label.to_string(),
                    message: e.to_string(),
                })
            }
        }
    }

    /// Ingest one binary-codec profile container (the
    /// `caps::BINARY_CODEC` wire path). Identity is still the FNV-1a
    /// hash of the canonical JSON — a profile ingested as JSON and the
    /// same profile ingested as codec bytes dedup to one copy with one
    /// id — but the client's own bytes are what get persisted (no
    /// re-encode), and the decoded scalar columns are handed to the
    /// engine build.
    pub fn ingest_binary(
        &self,
        label: &str,
        bytes: &[u8],
    ) -> Result<(ProfileId, bool), StoreError> {
        let view = match numa_codec::ProfileView::parse(bytes) {
            Ok(v) => v,
            Err(e) => {
                self.parse_failures.inc();
                return Err(StoreError::Parse {
                    label: label.to_string(),
                    message: e.to_string(),
                });
            }
        };
        let scalars = ThreadScalars {
            instructions: view.instructions().collect(),
            numa_events: view.numa_events().collect(),
        };
        let profile = match view.to_profile() {
            Ok(p) => p,
            Err(e) => {
                self.parse_failures.inc();
                return Err(StoreError::Parse {
                    label: label.to_string(),
                    message: e.to_string(),
                });
            }
        };
        let (id, canonical) = ProfileId::of(&profile);
        let sp = Arc::new(StoredProfile::with_scalars(
            id,
            label,
            profile,
            canonical.len(),
            scalars,
        ));
        if !self.insert(sp) {
            return Ok((id, false));
        }
        let row = (label, bytes, id, canonical.len() as u32);
        if let Some(Err(e)) = self.persist_batch(&[row]).pop() {
            self.remove(id);
            return Err(e);
        }
        Ok((id, true))
    }

    /// Ingest a batch of `(label, json)` inputs. Parsing and content
    /// hashing — the expensive part — run in parallel under rayon (the
    /// active thread pool; see `ThreadPool::install`); insertion is a
    /// short sequential tail of per-shard lock grabs. On durable stores
    /// the whole batch is enqueued to the persister at once and waits
    /// for a single group commit. Bad inputs are reported, not fatal.
    pub fn ingest_batch(&self, inputs: &[(String, String)]) -> BatchReport {
        use rayon::prelude::*;
        let durable = self.persist.get().is_some();
        // Parsed profile paired with its canonical-JSON length and its
        // codec bytes (the WAL record body; empty for in-memory
        // stores), or the (label, typed error) rejection.
        type Parsed = Result<(Arc<StoredProfile>, u32, Vec<u8>), (String, StoreError)>;
        let parsed: Vec<Parsed> = inputs
            .par_iter()
            .map(|(label, json)| match NumaProfile::from_json(json) {
                Ok(profile) => {
                    let (id, canonical) = ProfileId::of(&profile);
                    let sp = StoredProfile::new(id, label, profile, canonical.len());
                    let bytes = if durable {
                        numa_codec::encode_profile(&sp.profile)
                    } else {
                        Vec::new()
                    };
                    Ok((Arc::new(sp), canonical.len() as u32, bytes))
                }
                Err(e) => Err((
                    label.clone(),
                    StoreError::Parse {
                        label: label.clone(),
                        message: e.to_string(),
                    },
                )),
            })
            .collect_vec();
        let mut report = BatchReport::default();
        // Insert-then-persist, same reasoning as `ingest_profile`: the
        // fresh profiles become visible first (so a racing compaction's
        // snapshot always has them), then the whole batch is
        // WAL-committed as one group. A row the persister failed is
        // rolled back out of the store and reported, never silently
        // kept as ingested-but-volatile.
        let mut fresh: Vec<(Arc<StoredProfile>, u32, Vec<u8>)> = Vec::new();
        for item in parsed {
            match item {
                Ok((sp, json_len, bytes)) => {
                    if self.insert(Arc::clone(&sp)) {
                        fresh.push((sp, json_len, bytes));
                    } else {
                        // An identical input earlier in this batch (or a
                        // racing ingest) won.
                        report.deduplicated += 1;
                    }
                }
                Err(rej) => {
                    self.parse_failures.inc();
                    report.rejected.push(rej);
                }
            }
        }
        let rows: Vec<(&str, &[u8], ProfileId, u32)> = fresh
            .iter()
            .map(|(sp, json_len, bytes)| (&*sp.label, bytes.as_slice(), sp.id, *json_len))
            .collect();
        let results = self.persist_batch(&rows);
        for ((sp, _, _), result) in fresh.into_iter().zip(results) {
            match result {
                Ok(()) => report.added.push(sp.id),
                Err(e) => {
                    self.remove(sp.id);
                    report.persist_failures.push((sp.label.to_string(), e));
                }
            }
        }
        report
    }

    /// Ingest every `*.json` file in a directory (sorted by file name,
    /// so batch reports are deterministic). Files are read in bounded
    /// chunks — the whole directory is never buffered at once — and an
    /// unreadable file is recorded in [`BatchReport::io_errors`] instead
    /// of aborting the batch. Only listing the directory itself fails
    /// the call.
    pub fn ingest_dir(&self, dir: &Path) -> std::io::Result<BatchReport> {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut report = BatchReport::default();
        for chunk in files.chunks(INGEST_DIR_CHUNK) {
            let mut inputs = Vec::with_capacity(chunk.len());
            for f in chunk {
                // Labels come from the file name. A non-UTF-8 name would
                // lossy-convert to replacement characters, so two
                // distinct files could collide onto one label; suffix
                // such labels with the FNV-1a hash of the *raw* name
                // bytes to keep them distinguishable.
                let label = match f.file_name() {
                    Some(n) => match n.to_str() {
                        Some(utf8) => utf8.to_owned(),
                        None => format!(
                            "{}#{:016x}",
                            n.to_string_lossy(),
                            fnv1a(n.as_encoded_bytes())
                        ),
                    },
                    None => f.display().to_string(),
                };
                match std::fs::read_to_string(f) {
                    Ok(json) => inputs.push((label, json)),
                    Err(e) => report.io_errors.push((label, e.to_string())),
                }
            }
            report.merge(self.ingest_batch(&inputs));
        }
        Ok(report)
    }

    /// Insert into the owning shard. Everything expensive (hashing,
    /// canonicalization, allocation) already happened; the write lock
    /// covers a hash-map probe, an insert, and a vec push.
    fn insert(&self, sp: Arc<StoredProfile>) -> bool {
        let seq = self.shards.seq.fetch_add(1, Ordering::Relaxed);
        trace::note_shard((sp.id.0 as usize & self.shards.mask) as u32);
        let shard = self.shards.of(sp.id);
        let mut shelf = shard.write();
        if shelf.by_id.contains_key(&sp.id) {
            drop(shelf);
            self.dedup_hits.inc();
            false
        } else {
            // XOR fold: the set hash must not depend on insertion
            // order, so ingesting the same corpus from a directory
            // or a stream yields the same scope key for pooled
            // queries.
            shelf.set_hash ^= mix(SET_HASH_SALT, sp.id.0);
            let slot = shelf.profiles.len();
            shelf.by_id.insert(sp.id, slot);
            shelf.profiles.push((seq, sp));
            drop(shelf);
            shard.ingests.inc();
            true
        }
    }

    /// Roll back an insert whose persistence failed (see
    /// [`ProfileStore::commit_sealed`]). O(shard size) — only the
    /// error path pays it.
    fn remove(&self, id: ProfileId) -> bool {
        let shard = self.shards.of(id);
        let mut shelf = shard.write();
        let Some(slot) = shelf.by_id.remove(&id) else {
            return false;
        };
        shelf.profiles.remove(slot);
        for idx in shelf.by_id.values_mut() {
            if *idx > slot {
                *idx -= 1;
            }
        }
        shelf.set_hash ^= mix(SET_HASH_SALT, id.0);
        true
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    pub fn len(&self) -> usize {
        self.shards
            .shards
            .iter()
            .map(|s| s.read().profiles.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids in insertion order (merged across shards by their global
    /// insertion sequence).
    pub fn ids(&self) -> Vec<ProfileId> {
        let mut rows: Vec<(u64, ProfileId)> = Vec::new();
        for shard in &self.shards.shards {
            let shelf = shard.read();
            rows.extend(shelf.profiles.iter().map(|(seq, sp)| (*seq, sp.id)));
        }
        rows.sort_unstable_by_key(|(seq, _)| *seq);
        rows.into_iter().map(|(_, id)| id).collect()
    }

    /// Listing rows in insertion order. Each shard is snapshotted under
    /// its own read lock; rows are cheap `(id, Arc<str> label, counts)`
    /// tuples — no profile contents are cloned.
    pub fn entries(&self) -> Vec<ProfileListEntry> {
        let mut rows: Vec<(u64, ProfileListEntry)> = Vec::new();
        for shard in &self.shards.shards {
            let shelf = shard.read();
            rows.extend(shelf.profiles.iter().map(|(seq, sp)| {
                (
                    *seq,
                    ProfileListEntry {
                        id: sp.id,
                        label: Arc::clone(&sp.label),
                        threads: sp.profile.threads.len(),
                        json_bytes: sp.json_bytes,
                    },
                )
            }));
        }
        rows.sort_unstable_by_key(|(seq, _)| *seq);
        rows.into_iter().map(|(_, e)| e).collect()
    }

    pub fn get(&self, id: ProfileId) -> Option<Arc<StoredProfile>> {
        let shelf = self.shards.of(id).read();
        shelf
            .by_id
            .get(&id)
            .map(|&i| Arc::clone(&shelf.profiles[i].1))
    }

    /// Resolve a CLI-style reference: a hex id prefix or a label.
    ///
    /// A needle matching several stored profiles (a short hex prefix,
    /// or a label two runs share) is a typed
    /// [`StoreError::Ambiguous`] listing every candidate — never a
    /// silent first-match pick. A full 16-digit id always resolves
    /// unambiguously, even if it collides with another profile's label.
    pub fn resolve(&self, needle: &str) -> Result<Arc<StoredProfile>, StoreError> {
        let mut matches: Vec<(u64, Arc<StoredProfile>)> = Vec::new();
        for shard in &self.shards.shards {
            let shelf = shard.read();
            matches.extend(
                shelf
                    .profiles
                    .iter()
                    .filter(|(_, p)| &*p.label == needle || p.id.to_string().starts_with(needle))
                    .map(|(seq, p)| (*seq, Arc::clone(p))),
            );
        }
        matches.sort_unstable_by_key(|(seq, _)| *seq);
        match matches.as_slice() {
            [] => Err(StoreError::NoMatch(needle.to_string())),
            [(_, one)] => Ok(Arc::clone(one)),
            many => {
                if let Some((_, exact)) = many.iter().find(|(_, p)| p.id.to_string() == needle) {
                    return Ok(Arc::clone(exact));
                }
                Err(StoreError::Ambiguous {
                    needle: needle.to_string(),
                    candidates: many
                        .iter()
                        .map(|(_, p)| (p.id, p.label.to_string()))
                        .collect(),
                })
            }
        }
    }

    /// Order-insensitive content hash of the stored set (the XOR of the
    /// per-shard hashes); pooled cache entries are scoped under it, so
    /// any ingestion that changes the set automatically invalidates them
    /// (old entries age out via LRU).
    pub fn set_hash(&self) -> u64 {
        self.shards
            .shards
            .iter()
            .map(|s| s.read().set_hash)
            .fold(0, |a, b| a ^ b)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Answer a query, memoized. The artifact is built at most once per
    /// `(scope, query)` key and shared via `Arc` thereafter.
    ///
    /// Pooled queries snapshot the set once and key the cache by the
    /// hash of *that snapshot*, so the cached artifact always matches
    /// its scope key even when ingests race the query.
    pub fn query(&self, q: Query) -> Result<Arc<Artifact>, StoreError> {
        match q.fixed_scope() {
            Some(scope) => self
                .cache
                .get_or_try_insert((scope, q.clone()), || self.build(&q)),
            None => {
                let profiles = self.snapshot()?;
                let scope = pooled_scope(&profiles);
                self.cache.get_or_try_insert((scope, q.clone()), || {
                    Ok(match &q {
                        Query::TopVariables(n) => {
                            Artifact::Text(aggregate(&profiles).top_variables(*n))
                        }
                        _ => Artifact::Aggregate(aggregate(&profiles)),
                    })
                })
            }
        }
    }

    /// Uncached artifact construction for fixed-scope queries.
    /// Per-profile analyses borrow the stored profile through its shared
    /// [`Engine`] — no profile is ever cloned; the memo cache amortizes
    /// the analysis itself.
    fn build(&self, q: &Query) -> Result<Artifact, StoreError> {
        match q {
            Query::ReportJson(id) => {
                let a = self.analyzer(*id)?;
                Ok(Artifact::Text(analyze(&a).to_json()))
            }
            Query::TextReport(id) => {
                let a = self.analyzer(*id)?;
                Ok(Artifact::Text(full_text_report(&a)))
            }
            Query::CodeView {
                profile,
                min_share_permille,
            } => {
                let a = self.analyzer(*profile)?;
                Ok(Artifact::Text(render_cct(
                    &a,
                    *min_share_permille as f64 / 1000.0,
                )))
            }
            Query::AddressView { profile, var } => {
                let a = self.analyzer(*profile)?;
                let id = a
                    .var_named(var)
                    .ok_or_else(|| StoreError::UnknownVariable(var.clone()))?;
                Ok(Artifact::Text(numa_analysis::export_address_view(
                    &a,
                    id,
                    RangeScope::Program,
                )))
            }
            Query::Diff { before, after } => {
                let b = self.analyzer(*before)?;
                let a = self.analyzer(*after)?;
                Ok(Artifact::Text(diff(&b, &a).render()))
            }
            Query::Aggregate => {
                let profiles = self.snapshot()?;
                Ok(Artifact::Aggregate(aggregate(&profiles)))
            }
            Query::TopVariables(n) => {
                let profiles = self.snapshot()?;
                Ok(Artifact::Text(aggregate(&profiles).top_variables(*n)))
            }
        }
    }

    /// Cross-run aggregate over the current set (memoized).
    pub fn aggregate(&self) -> Result<Arc<Artifact>, StoreError> {
        self.query(Query::Aggregate)
    }

    fn analyzer(&self, id: ProfileId) -> Result<Analyzer, StoreError> {
        let sp = self.get(id).ok_or(StoreError::UnknownProfile(id))?;
        Ok(Analyzer::from_engine(sp.engine()))
    }

    /// The current corpus, sorted by id (a deterministic order across
    /// shard counts and interleavings).
    fn snapshot(&self) -> Result<Vec<Arc<StoredProfile>>, StoreError> {
        let profiles = self.shards.corpus_sorted();
        if profiles.is_empty() {
            return Err(StoreError::EmptyStore);
        }
        Ok(profiles)
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every memoized artifact (counters persist). Used to measure
    /// cold-path cost and to bound memory in long sessions.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Per-shard accounting rows (profiles resident, ingests served,
    /// contended lock acquisitions).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .shards
            .iter()
            .map(|s| ShardStats {
                profiles: s.read().profiles.len(),
                ingests: s.ingests.get(),
                read_contended: s.read_contended.get(),
                write_contended: s.write_contended.get(),
            })
            .collect()
    }

    pub fn stats(&self) -> StoreStats {
        let shards = self.shard_stats();
        let (mut profiles, mut json_bytes, mut set_hash) = (0usize, 0usize, 0u64);
        for shard in &self.shards.shards {
            let shelf = shard.read();
            profiles += shelf.profiles.len();
            json_bytes += shelf
                .profiles
                .iter()
                .map(|(_, p)| p.json_bytes)
                .sum::<usize>();
            set_hash ^= shelf.set_hash;
        }
        StoreStats {
            profiles,
            json_bytes,
            set_hash,
            deduplicated: self.dedup_hits.get(),
            parse_failures: self.parse_failures.get(),
            cached_artifacts: self.cache.len(),
            cache: self.cache.stats(),
            persist: self.persist_stats(),
            shards,
        }
    }
}

/// Snapshot of store accounting.
#[derive(Clone, Debug)]
pub struct StoreStats {
    pub profiles: usize,
    /// Total canonical-JSON footprint of the stored set.
    pub json_bytes: usize,
    /// Order-insensitive content hash of the stored set (see
    /// [`ProfileStore::set_hash`]); two stores holding the same corpus
    /// report the same value, which is how recovery is verified.
    pub set_hash: u64,
    /// Ingest attempts that deduplicated against an existing profile.
    pub deduplicated: u64,
    pub parse_failures: u64,
    pub cached_artifacts: usize,
    pub cache: CacheStats,
    pub persist: PersistStats,
    /// One row per shard shelf.
    pub shards: Vec<ShardStats>,
}

impl StoreStats {
    pub fn render(&self) -> String {
        let mut out = format!(
            "profiles: {} ({} KiB canonical JSON), set hash {:016x}\n\
             ingest: {} deduplicated, {} parse failure(s)\n\
             cache: {} artifact(s) resident; {} hit(s), {} miss(es), \
             {} insertion(s), {} eviction(s) ({:.0}% hit rate)\n",
            self.profiles,
            self.json_bytes / 1024,
            self.set_hash,
            self.deduplicated,
            self.parse_failures,
            self.cached_artifacts,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.hit_rate() * 100.0
        );
        if self.persist.durable {
            let p = &self.persist;
            out.push_str(&format!(
                "persistence: recovered {} snapshot + {} wal record(s), \
                 {} truncated byte(s), {} stale parse(s); \
                 {} append(s) in {} group commit(s) ({} KiB wal), \
                 {} snapshot(s) written, {} io error(s)\n",
                p.snapshot_records_loaded,
                p.wal_records_replayed,
                p.wal_truncated_bytes + p.snapshot_truncated_bytes,
                p.replay_parse_failures,
                p.wal_appends,
                p.wal_group_commits,
                p.wal_bytes / 1024,
                p.snapshots_written,
                p.io_errors,
            ));
            out.push_str(&format!(
                "sessions: {} recovered, {} dropped, {} chunk record(s) replayed\n",
                p.sessions_recovered, p.sessions_dropped, p.session_chunks_replayed,
            ));
        } else {
            out.push_str("persistence: off (in-memory store)\n");
        }
        out.push_str(&format!("shards: {}\n", self.shards.len()));
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "  shard {i:>2}: {} profile(s), {} ingest(s), \
                 {} contended read(s), {} contended write(s)\n",
                s.profiles, s.ingests, s.read_contended, s.write_contended,
            ));
        }
        out
    }
}
