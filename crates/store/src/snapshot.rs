//! Compacted snapshots of the full stored corpus.
//!
//! A snapshot is the same record stream as the WAL (see [`crate::wal`])
//! under a different magic, holding one record per stored profile. It
//! is written *power-loss atomically*: to a `.tmp` sibling, synced,
//! renamed over the live file, and then the containing directory is
//! fsynced — the rename itself lives in directory metadata, so without
//! that last sync a power loss after a "successful" compaction could
//! resurrect the old snapshot against an already-truncated WAL and lose
//! acknowledged records. A crash mid-snapshot leaves the previous
//! snapshot intact. After a successful snapshot the WAL is reset: the
//! snapshot-plus-empty-log pair is equivalent to the old
//! snapshot-plus-full-log pair.
//!
//! Recovery loads the snapshot first, then replays the WAL on top;
//! content-addressed ingestion dedups any overlap (a record present in
//! both because a crash interleaved an append with a compaction).

use crate::wal::{
    encode_bin_record, encode_file_header, scan_file_with, RecordScan, SNAPSHOT_MAGIC,
};
use numa_faults::{StdStorage, Storage};
use std::io;
use std::path::{Path, PathBuf};

/// Snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// One profile row a snapshot persists: label, binary-codec payload,
/// content hash (FNV-1a of the canonical JSON — format-independent),
/// and the canonical JSON's byte length (memory accounting on replay).
pub type SnapshotRow = (String, Vec<u8>, u64, u32);

/// Path of the snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Write a snapshot of `entries` atomically. Rows are written as
/// binary-codec records (persist v3) — this is where compaction
/// rewrites any JSON-era records forward. Returns the snapshot's byte
/// size.
pub fn write_snapshot(dir: &Path, entries: &[SnapshotRow]) -> io::Result<u64> {
    write_snapshot_with(&StdStorage, dir, entries)
}

/// [`write_snapshot`] through an explicit [`Storage`]. The sequence is
/// write `.tmp` → sync the file → rename over the live snapshot → sync
/// the directory; the final directory fsync is what makes the rename
/// durable, so a caller that truncates the WAL after this returns can
/// never pair a truncated log with the old snapshot.
pub fn write_snapshot_with(
    storage: &dyn Storage,
    dir: &Path,
    entries: &[SnapshotRow],
) -> io::Result<u64> {
    let live = snapshot_path(dir);
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let mut bytes = 0u64;
    {
        let mut f = storage.create(&tmp)?;
        let header = encode_file_header(SNAPSHOT_MAGIC);
        f.write_all(&header)?;
        bytes += header.len() as u64;
        for (label, payload, hash, json_len) in entries {
            let record = encode_bin_record(label, payload, *hash, *json_len);
            f.write_all(&record)?;
            bytes += record.len() as u64;
        }
        f.flush()?;
        f.sync_data()?;
    }
    storage.rename(&tmp, &live)?;
    storage.sync_dir(dir)?;
    Ok(bytes)
}

/// Load the snapshot, if any. Damage is handled like WAL damage: the
/// intact record prefix is returned and the rest reported as truncated.
pub fn load_snapshot(dir: &Path) -> io::Result<RecordScan> {
    load_snapshot_with(&StdStorage, dir)
}

/// [`load_snapshot`] through an explicit [`Storage`].
pub fn load_snapshot_with(storage: &dyn Storage, dir: &Path) -> io::Result<RecordScan> {
    scan_file_with(storage, &snapshot_path(dir), SNAPSHOT_MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fnv1a;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("numa-snap-unit-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips_and_replaces_atomically() {
        let dir = tmp("roundtrip");
        let payload = b"binary-profile-bytes".to_vec();
        let entry = |label: &str| (label.to_string(), payload.clone(), fnv1a(&payload), 99u32);
        write_snapshot(&dir, &[entry("a")]).unwrap();
        write_snapshot(&dir, &[entry("a"), entry("b")]).unwrap();
        let scan = load_snapshot(&dir).unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert!(matches!(
            &scan.entries[1],
            crate::wal::WalEntry::ProfileBin(r) if r.label == "b" && r.json_len == 99
        ));
        assert_eq!(scan.truncated_bytes, 0);
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_loads_empty() {
        let dir = tmp("missing");
        let scan = load_snapshot(&dir).unwrap();
        assert!(scan.entries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
