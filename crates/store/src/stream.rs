//! Chunked representation of a profile for streaming ingestion.
//!
//! A streaming client does not ship one giant `NumaProfile` blob; it
//! splits the run into [`ChunkPayload`]s — exactly one `Header` (every
//! per-run field except the threads) plus any number of `Threads`
//! chunks — and appends them to an open session in any grouping or
//! order. [`assemble`] reverses the split deterministically: threads
//! are sorted by `tid` (duplicates rejected), CCT indices are rebuilt,
//! and the result canonicalizes to the exact same JSON as the original
//! profile — so a streamed profile is byte-identical (content hash, set
//! hash, aggregate text) to the same profile ingested one-shot.
//!
//! The chunk JSON here is also the WAL staging format: the daemon
//! writes each appended chunk as a [`crate::wal::ChunkRecord`] whose
//! payload is the serialized `ChunkPayload`, and crash replay feeds the
//! recorded payloads back through [`assemble`].

use numa_profiler::{FirstTouchRecord, NumaProfile, ThreadProfile, VarRecord};
use numa_sampling::{Capabilities, MechanismKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every per-run field of a [`NumaProfile`] except the thread list.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileHeader {
    pub mechanism: MechanismKind,
    pub capabilities: Capabilities,
    pub domains: usize,
    pub machine_name: String,
    pub func_names: Vec<String>,
    pub vars: Vec<VarRecord>,
    pub first_touches: Vec<FirstTouchRecord>,
}

/// One streamed piece of a profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ChunkPayload {
    /// The run-wide fields. A session must receive exactly one.
    Header(Box<ProfileHeader>),
    /// A batch of per-thread measurements, in any order across chunks.
    Threads(Vec<ThreadProfile>),
}

/// Leading tag byte of a binary chunk payload.
const CHUNK_TAG_HEADER: u8 = 0;
const CHUNK_TAG_THREADS: u8 = 1;

impl ChunkPayload {
    /// Serialize to the JSON wire/WAL chunk format (the fallback for
    /// peers without `caps::BINARY_CODEC`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("chunk serializes")
    }

    /// Deserialize from the JSON wire/WAL chunk format.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serialize to the binary wire/WAL chunk format: a tag byte
    /// followed by a numa-codec container. A `Header` chunk is encoded
    /// as a full-profile container with an empty thread list; a
    /// `Threads` chunk as a thread-batch container — both sides of the
    /// split reuse the one profile codec.
    pub fn to_binary(&self) -> Vec<u8> {
        match self {
            ChunkPayload::Header(h) => {
                let mut out = vec![CHUNK_TAG_HEADER];
                out.extend_from_slice(&numa_codec::encode_parts(&numa_codec::ProfileParts {
                    mechanism: h.mechanism,
                    capabilities: h.capabilities,
                    domains: h.domains,
                    machine_name: &h.machine_name,
                    func_names: &h.func_names,
                    vars: &h.vars,
                    threads: &[],
                    first_touches: &h.first_touches,
                }));
                out
            }
            ChunkPayload::Threads(batch) => {
                let mut out = vec![CHUNK_TAG_THREADS];
                out.extend_from_slice(&numa_codec::encode_threads(batch));
                out
            }
        }
    }

    /// Deserialize from the binary wire/WAL chunk format.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, numa_codec::CodecError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or(numa_codec::CodecError::Truncated)?;
        match tag {
            CHUNK_TAG_HEADER => {
                let p = numa_codec::decode_profile(rest)?;
                Ok(ChunkPayload::Header(Box::new(ProfileHeader {
                    mechanism: p.mechanism,
                    capabilities: p.capabilities,
                    domains: p.domains,
                    machine_name: p.machine_name,
                    func_names: p.func_names,
                    vars: p.vars,
                    first_touches: p.first_touches,
                })))
            }
            CHUNK_TAG_THREADS => Ok(ChunkPayload::Threads(numa_codec::decode_threads(rest)?)),
            _ => Err(numa_codec::CodecError::Malformed("unknown chunk tag")),
        }
    }

    /// Deserialize from either staged format (see
    /// [`crate::wal::ChunkData`]). `None` on any parse failure — crash
    /// replay treats an undecodable chunk as a dropped session, exactly
    /// like a JSON chunk that no longer parses.
    pub fn from_chunk_data(data: &crate::wal::ChunkData) -> Option<Self> {
        match data {
            crate::wal::ChunkData::Json(s) => Self::from_json(s).ok(),
            crate::wal::ChunkData::Binary(b) => Self::from_binary(b).ok(),
        }
    }
}

/// Why a set of chunks does not assemble into a profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssembleError {
    /// No `Header` chunk was streamed.
    MissingHeader,
    /// More than one `Header` chunk was streamed.
    DuplicateHeader,
    /// Two chunks claimed the same thread id.
    DuplicateThread { tid: usize },
    /// The session sealed without any thread data.
    NoThreads,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::MissingHeader => write!(f, "no header chunk was streamed"),
            AssembleError::DuplicateHeader => write!(f, "more than one header chunk was streamed"),
            AssembleError::DuplicateThread { tid } => {
                write!(f, "thread {tid} appeared in more than one chunk")
            }
            AssembleError::NoThreads => write!(f, "no thread chunks were streamed"),
        }
    }
}

impl std::error::Error for AssembleError {}

/// Split a profile into a header chunk plus thread chunks of at most
/// `threads_per_chunk` threads each (clamped to at least 1). The
/// inverse of [`assemble`].
pub fn split_profile(profile: &NumaProfile, threads_per_chunk: usize) -> Vec<ChunkPayload> {
    let per = threads_per_chunk.max(1);
    let mut chunks = vec![ChunkPayload::Header(Box::new(ProfileHeader {
        mechanism: profile.mechanism,
        capabilities: profile.capabilities,
        domains: profile.domains,
        machine_name: profile.machine_name.clone(),
        func_names: profile.func_names.clone(),
        vars: profile.vars.clone(),
        first_touches: profile.first_touches.clone(),
    }))];
    for group in profile.threads.chunks(per) {
        chunks.push(ChunkPayload::Threads(group.to_vec()));
    }
    chunks
}

/// Reassemble chunks into a canonical profile: exactly one header,
/// threads gathered from every `Threads` chunk and sorted by `tid`
/// (duplicates rejected), CCT indices rebuilt. Chunk order does not
/// matter — any permutation of the same chunks yields the same profile.
pub fn assemble(chunks: Vec<ChunkPayload>) -> Result<NumaProfile, AssembleError> {
    let mut header: Option<Box<ProfileHeader>> = None;
    let mut threads: Vec<ThreadProfile> = Vec::new();
    for chunk in chunks {
        match chunk {
            ChunkPayload::Header(h) => {
                if header.is_some() {
                    return Err(AssembleError::DuplicateHeader);
                }
                header = Some(h);
            }
            ChunkPayload::Threads(batch) => threads.extend(batch),
        }
    }
    let header = header.ok_or(AssembleError::MissingHeader)?;
    if threads.is_empty() {
        return Err(AssembleError::NoThreads);
    }
    threads.sort_by_key(|t| t.tid);
    if let Some(w) = threads.windows(2).find(|w| w[0].tid == w[1].tid) {
        return Err(AssembleError::DuplicateThread { tid: w[0].tid });
    }
    for t in &mut threads {
        t.cct.rebuild_index();
    }
    Ok(NumaProfile {
        mechanism: header.mechanism,
        capabilities: header.capabilities,
        domains: header.domains,
        machine_name: header.machine_name,
        func_names: header.func_names,
        vars: header.vars,
        threads,
        first_touches: header.first_touches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> NumaProfile {
        use numa_machine::{Machine, MachinePreset, PlacementPolicy};
        use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig};
        use numa_sampling::MechanismConfig;
        use numa_sim::{ExecMode, Program};
        use std::sync::Arc;

        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
        let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
        let size = 1u64 << 18;
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("s", size, PlacementPolicy::FirstTouch);
            ctx.store_range(base, size / 64, 64);
        });
        p.parallel("work._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
        finish_profile(p, profiler)
    }

    #[test]
    fn split_then_assemble_is_identity_on_canonical_json() {
        let original = profile();
        let canonical = original.to_json();
        for per in [1, 2, 3, 64] {
            let chunks = split_profile(&original, per);
            let rebuilt = assemble(chunks).unwrap();
            assert_eq!(rebuilt.to_json(), canonical, "threads_per_chunk={per}");
        }
    }

    #[test]
    fn assemble_is_order_independent_and_survives_json_round_trip() {
        let original = profile();
        let canonical = original.to_json();
        let mut chunks = split_profile(&original, 1);
        chunks.reverse(); // header last, threads in reverse tid order
        let rebuilt: Vec<ChunkPayload> = chunks
            .iter()
            .map(|c| ChunkPayload::from_json(&c.to_json()).unwrap())
            .collect();
        assert_eq!(assemble(rebuilt).unwrap().to_json(), canonical);
    }

    #[test]
    fn binary_chunks_round_trip_and_assemble_identically() {
        let original = profile();
        let canonical = original.to_json();
        let chunks = split_profile(&original, 2);
        let rebuilt: Vec<ChunkPayload> = chunks
            .iter()
            .map(|c| ChunkPayload::from_binary(&c.to_binary()).unwrap())
            .collect();
        assert_eq!(assemble(rebuilt).unwrap().to_json(), canonical);
        // A flipped tag byte is a typed error, not a panic.
        let mut bad = chunks[0].to_binary();
        bad[0] = 7;
        assert_eq!(
            ChunkPayload::from_binary(&bad).unwrap_err(),
            numa_codec::CodecError::Malformed("unknown chunk tag")
        );
        assert_eq!(
            ChunkPayload::from_binary(&[]).unwrap_err(),
            numa_codec::CodecError::Truncated
        );
    }

    #[test]
    fn assemble_rejects_malformed_chunk_sets() {
        let original = profile();
        let chunks = split_profile(&original, 2);
        let header = chunks[0].clone();
        let threads = chunks[1].clone();

        assert_eq!(
            assemble(vec![threads.clone(), threads.clone(), header.clone()]).unwrap_err(),
            AssembleError::DuplicateThread { tid: 0 }
        );
        assert_eq!(
            assemble(vec![threads.clone()]).unwrap_err(),
            AssembleError::MissingHeader
        );
        assert_eq!(
            assemble(vec![header.clone(), header.clone(), threads]).unwrap_err(),
            AssembleError::DuplicateHeader
        );
        assert_eq!(
            assemble(vec![header]).unwrap_err(),
            AssembleError::NoThreads
        );
    }
}
