//! Append-only write-ahead log of ingested profiles and in-flight
//! streaming sessions.
//!
//! ## File layout (all integers big-endian)
//!
//! ```text
//! offset 0..4   magic     b"HPWL" (WAL) or b"HPSS" (snapshot)
//! offset 4..6   version   u16 — on-disk format revision
//! offset 6..8   reserved  u16 — must be zero
//! offset 8..    records
//! ```
//!
//! Each record is length-prefixed and checksummed, and its body opens
//! with a kind byte:
//!
//! ```text
//! u32  body_len       byte count of `body`
//! u64  body_fnv       FNV-1a over the body bytes
//! body:
//!   u8   kind         0 = profile (JSON), 1 = session chunk (JSON),
//!                     2 = session seal, 3 = profile (binary codec),
//!                     4 = session chunk (binary codec)
//!
//!   kind 0 (profile — a fully ingested run, JSON payload):
//!     u32  label_len    byte count of `label`
//!     ...  label        UTF-8 label
//!     u64  content_hash FNV-1a of the canonical JSON (the ProfileId)
//!     ...  json         canonical profile JSON (rest of the body)
//!
//!   kind 1 (chunk — one staged piece of an open streaming session):
//!     u64  session      session id
//!     u64  seq          zero-based chunk sequence number
//!     ...  payload      chunk JSON (rest of the body)
//!
//!   kind 2 (seal — commits a streamed session):
//!     u64  session      session id
//!     u64  chunks       number of chunks the session must replay with
//!     u64  content_hash FNV-1a of the assembled canonical JSON
//!     u32  label_len    byte count of `label`
//!     ...  label        UTF-8 label (rest of the body, exactly)
//!
//!   kind 3 (profile — binary numa-codec payload, persist v3):
//!     u32  label_len    byte count of `label`
//!     ...  label        UTF-8 label
//!     u64  content_hash FNV-1a of the canonical JSON (the ProfileId —
//!                       the content id stays defined over the canonical
//!                       JSON even when the payload is binary)
//!     u32  json_len     byte length the canonical JSON would have
//!                       (memory-accounting metadata; replay skips the
//!                       re-serialization that would otherwise be needed
//!                       to recover it)
//!     ...  bytes        numa-codec profile buffer (rest of the body)
//!
//!   kind 4 (chunk — binary numa-codec payload):
//!     u64  session      session id
//!     u64  seq          zero-based chunk sequence number
//!     ...  bytes        binary chunk payload (rest of the body)
//! ```
//!
//! A sealed session replays as a profile only when every chunk
//! `0..chunks` is present and the assembled canonical JSON hashes to the
//! seal's `content_hash`; chunks with no seal (the client or daemon died
//! mid-stream) are dropped wholesale. Snapshot compaction folds profile
//! records into the snapshot and re-stages the chunk records of still
//! open sessions into the fresh WAL, so an open stream survives a
//! compaction that happens underneath it.
//!
//! ## Recovery contract
//!
//! [`scan_bytes`] validates records in order and stops at the first
//! torn or corrupt one (bad header, short read, checksum mismatch,
//! unknown kind, invalid UTF-8, inconsistent lengths). Everything before
//! that point is returned; everything after is reported as truncated
//! tail bytes, never an error. A writer reopened with
//! [`WalWriter::open_after`] physically truncates the file to the intact
//! prefix so later appends extend a clean log.

use crate::hash::fnv1a;
use numa_faults::{StdStorage, Storage, StorageFile};
use std::io::{self, SeekFrom};
use std::path::{Path, PathBuf};

/// On-disk format revision for WAL and snapshot files. Version 2 added
/// the record kind byte (streaming-session chunk and seal records);
/// version 3 added the binary-codec profile and chunk kinds. Readers
/// accept any version `1..=PERSIST_VERSION` — every record kind is
/// self-describing, so an old file replays under a new build unchanged
/// (and compaction rewrites it forward to the current version).
pub const PERSIST_VERSION: u16 = 3;

/// Magic of the write-ahead log file.
pub const WAL_MAGIC: [u8; 4] = *b"HPWL";

/// Magic of the snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HPSS";

/// File header size (magic + version + reserved).
pub const FILE_HEADER_LEN: u64 = 8;

/// Per-record header size (body_len + body_fnv).
pub const RECORD_HEADER_LEN: usize = 12;

/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";

const KIND_PROFILE: u8 = 0;
const KIND_CHUNK: u8 = 1;
const KIND_SEAL: u8 = 2;
const KIND_PROFILE_BIN: u8 = 3;
const KIND_CHUNK_BIN: u8 = 4;

/// Path of the WAL inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Serialize the 8-byte file header.
pub fn encode_file_header(magic: [u8; 4]) -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&magic);
    h[4..6].copy_from_slice(&PERSIST_VERSION.to_be_bytes());
    h
}

/// Whether an 8-byte file header is readable by this build: right
/// magic, version `1..=PERSIST_VERSION`, reserved bytes zero. Version
/// range rather than equality so data directories written by older
/// builds keep replaying.
fn header_readable(head: &[u8; 8], magic: [u8; 4]) -> bool {
    let version = u16::from_be_bytes([head[4], head[5]]);
    head[..4] == magic && (1..=PERSIST_VERSION).contains(&version) && head[6..8] == [0, 0]
}

/// One intact profile record pulled off a log or snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    pub label: String,
    /// Canonical profile JSON.
    pub json: String,
    /// FNV-1a of `json` — the profile's content id.
    pub content_hash: u64,
}

/// One intact binary-codec profile record (persist v3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinProfileRecord {
    pub label: String,
    /// FNV-1a of the canonical JSON — the profile's content id. The
    /// invariant holds across formats: a binary record and the JSON
    /// record of the same profile carry the same hash.
    pub content_hash: u64,
    /// Byte length the canonical JSON would have (memory accounting).
    pub json_len: u32,
    /// numa-codec profile buffer.
    pub bytes: Vec<u8>,
}

/// A chunk payload in whichever format the client staged it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkData {
    /// Chunk JSON exactly as the client sent it.
    Json(String),
    /// Binary chunk payload exactly as the client sent it.
    Binary(Vec<u8>),
}

/// One staged chunk of an open streaming session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkRecord {
    pub session: u64,
    /// Zero-based sequence number within the session.
    pub seq: u64,
    /// Chunk payload exactly as the client sent it.
    pub payload: ChunkData,
}

/// The commit record of a streamed session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealRecord {
    pub session: u64,
    /// Number of chunks (`seq` 0..chunks) the session must replay with.
    pub chunks: u64,
    /// FNV-1a of the assembled canonical JSON — the resulting ProfileId.
    pub content_hash: u64,
    pub label: String,
}

/// Any intact record pulled off a log or snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalEntry {
    Profile(WalRecord),
    ProfileBin(BinProfileRecord),
    Chunk(ChunkRecord),
    Seal(SealRecord),
}

/// Serialize one profile record (record header + body).
pub fn encode_record(label: &str, json: &str, content_hash: u64) -> Vec<u8> {
    let body_len = 1 + 4 + label.len() + 8 + json.len();
    let mut out = begin_record(body_len, KIND_PROFILE);
    out.extend_from_slice(&(label.len() as u32).to_be_bytes());
    out.extend_from_slice(label.as_bytes());
    out.extend_from_slice(&content_hash.to_be_bytes());
    out.extend_from_slice(json.as_bytes());
    finish_record(out)
}

/// Serialize one binary-codec profile record (record header + body).
/// `content_hash` is still the FNV-1a of the canonical JSON and
/// `json_len` its byte length — the content id is format-independent.
pub fn encode_bin_record(label: &str, bytes: &[u8], content_hash: u64, json_len: u32) -> Vec<u8> {
    let body_len = 1 + 4 + label.len() + 8 + 4 + bytes.len();
    let mut out = begin_record(body_len, KIND_PROFILE_BIN);
    out.extend_from_slice(&(label.len() as u32).to_be_bytes());
    out.extend_from_slice(label.as_bytes());
    out.extend_from_slice(&content_hash.to_be_bytes());
    out.extend_from_slice(&json_len.to_be_bytes());
    out.extend_from_slice(bytes);
    finish_record(out)
}

/// Serialize one session-chunk record (record header + body). The
/// record kind follows the payload's format.
pub fn encode_chunk_record(session: u64, seq: u64, payload: &ChunkData) -> Vec<u8> {
    let (kind, raw): (u8, &[u8]) = match payload {
        ChunkData::Json(s) => (KIND_CHUNK, s.as_bytes()),
        ChunkData::Binary(b) => (KIND_CHUNK_BIN, b),
    };
    let body_len = 1 + 8 + 8 + raw.len();
    let mut out = begin_record(body_len, kind);
    out.extend_from_slice(&session.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(raw);
    finish_record(out)
}

/// Serialize one session-seal record (record header + body).
pub fn encode_seal_record(session: u64, chunks: u64, content_hash: u64, label: &str) -> Vec<u8> {
    let body_len = 1 + 8 + 8 + 8 + 4 + label.len();
    let mut out = begin_record(body_len, KIND_SEAL);
    out.extend_from_slice(&session.to_be_bytes());
    out.extend_from_slice(&chunks.to_be_bytes());
    out.extend_from_slice(&content_hash.to_be_bytes());
    out.extend_from_slice(&(label.len() as u32).to_be_bytes());
    out.extend_from_slice(label.as_bytes());
    finish_record(out)
}

fn begin_record(body_len: usize, kind: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.extend_from_slice(&[0u8; 8]); // body_fnv placeholder
    out.push(kind);
    out
}

fn finish_record(mut out: Vec<u8>) -> Vec<u8> {
    let fnv = fnv1a(&out[RECORD_HEADER_LEN..]);
    out[4..12].copy_from_slice(&fnv.to_be_bytes());
    out
}

/// Result of scanning a log or snapshot file.
#[derive(Clone, Debug, Default)]
pub struct RecordScan {
    /// Intact records, in file order.
    pub entries: Vec<WalEntry>,
    /// File offset just past the last intact record (or past the header
    /// when no record is intact; 0 when even the header is invalid).
    pub valid_len: u64,
    /// Bytes after `valid_len`: the torn/corrupt tail that replay drops.
    pub truncated_bytes: u64,
}

impl RecordScan {
    /// The profile records among [`RecordScan::entries`], in file order.
    pub fn profiles(&self) -> impl Iterator<Item = &WalRecord> {
        self.entries.iter().filter_map(|e| match e {
            WalEntry::Profile(r) => Some(r),
            _ => None,
        })
    }
}

/// Scan a record file's raw bytes, stopping at the first torn or
/// corrupt record. Never fails: damage is reported as truncation.
pub fn scan_bytes(bytes: &[u8], magic: [u8; 4]) -> RecordScan {
    let total = bytes.len() as u64;
    if bytes.len() < FILE_HEADER_LEN as usize
        || !header_readable(bytes[..8].try_into().unwrap(), magic)
    {
        return RecordScan {
            entries: Vec::new(),
            valid_len: 0,
            truncated_bytes: total,
        };
    }
    let mut entries = Vec::new();
    let mut off = FILE_HEADER_LEN as usize;
    while let Some((entry, next)) = decode_record_at(bytes, off) {
        entries.push(entry);
        off = next;
    }
    RecordScan {
        entries,
        valid_len: off as u64,
        truncated_bytes: total - off as u64,
    }
}

/// Decode the record starting at `off`, returning it plus the offset of
/// the next record. `None` means torn/corrupt (or clean end of file).
fn decode_record_at(bytes: &[u8], off: usize) -> Option<(WalEntry, usize)> {
    let rest = &bytes[off..];
    if rest.len() < RECORD_HEADER_LEN {
        return None; // clean end or torn record header
    }
    let body_len = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
    if rest.len() - RECORD_HEADER_LEN < body_len {
        return None; // body truncated (or corrupt length field)
    }
    let stored_fnv = u64::from_be_bytes(rest[4..12].try_into().unwrap());
    let body = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + body_len];
    let entry = decode_body(stored_fnv, body)?;
    Some((entry, off + RECORD_HEADER_LEN + body_len))
}

/// Checksum and decode one record body. `None` means corrupt.
fn decode_body(stored_fnv: u64, body: &[u8]) -> Option<WalEntry> {
    if fnv1a(body) != stored_fnv {
        return None; // bit rot anywhere in the body
    }
    // The checksum held, so the body should parse — but lengths are
    // re-validated anyway: a writer bug must not become a panic here.
    let (&kind, body) = body.split_first()?;
    match kind {
        KIND_PROFILE => decode_profile_body(body),
        KIND_CHUNK => decode_chunk_body(body, false),
        KIND_SEAL => decode_seal_body(body),
        KIND_PROFILE_BIN => decode_bin_profile_body(body),
        KIND_CHUNK_BIN => decode_chunk_body(body, true),
        _ => None, // record from a future format revision
    }
}

fn decode_profile_body(body: &[u8]) -> Option<WalEntry> {
    if body.len() < 12 {
        return None;
    }
    let label_len = u32::from_be_bytes(body[..4].try_into().unwrap()) as usize;
    if body.len() < 4 + label_len + 8 {
        return None;
    }
    let label = std::str::from_utf8(&body[4..4 + label_len]).ok()?;
    let content_hash =
        u64::from_be_bytes(body[4 + label_len..4 + label_len + 8].try_into().unwrap());
    let json = std::str::from_utf8(&body[4 + label_len + 8..]).ok()?;
    if fnv1a(json.as_bytes()) != content_hash {
        return None; // label and JSON were swapped / mis-framed
    }
    Some(WalEntry::Profile(WalRecord {
        label: label.to_string(),
        json: json.to_string(),
        content_hash,
    }))
}

fn decode_bin_profile_body(body: &[u8]) -> Option<WalEntry> {
    if body.len() < 16 {
        return None;
    }
    let label_len = u32::from_be_bytes(body[..4].try_into().unwrap()) as usize;
    if body.len() < 4 + label_len + 12 {
        return None;
    }
    let label = std::str::from_utf8(&body[4..4 + label_len]).ok()?;
    let at = 4 + label_len;
    let content_hash = u64::from_be_bytes(body[at..at + 8].try_into().unwrap());
    let json_len = u32::from_be_bytes(body[at + 8..at + 12].try_into().unwrap());
    // The payload is opaque here: the WAL frames bytes, the codec crate
    // owns their meaning. The record checksum already vouched for them.
    Some(WalEntry::ProfileBin(BinProfileRecord {
        label: label.to_string(),
        content_hash,
        json_len,
        bytes: body[at + 12..].to_vec(),
    }))
}

fn decode_chunk_body(body: &[u8], binary: bool) -> Option<WalEntry> {
    if body.len() < 16 {
        return None;
    }
    let session = u64::from_be_bytes(body[..8].try_into().unwrap());
    let seq = u64::from_be_bytes(body[8..16].try_into().unwrap());
    let payload = if binary {
        ChunkData::Binary(body[16..].to_vec())
    } else {
        ChunkData::Json(std::str::from_utf8(&body[16..]).ok()?.to_string())
    };
    Some(WalEntry::Chunk(ChunkRecord {
        session,
        seq,
        payload,
    }))
}

fn decode_seal_body(body: &[u8]) -> Option<WalEntry> {
    if body.len() < 28 {
        return None;
    }
    let session = u64::from_be_bytes(body[..8].try_into().unwrap());
    let chunks = u64::from_be_bytes(body[8..16].try_into().unwrap());
    let content_hash = u64::from_be_bytes(body[16..24].try_into().unwrap());
    let label_len = u32::from_be_bytes(body[24..28].try_into().unwrap()) as usize;
    if body.len() != 28 + label_len {
        return None;
    }
    let label = std::str::from_utf8(&body[28..]).ok()?;
    Some(WalEntry::Seal(SealRecord {
        session,
        chunks,
        content_hash,
        label: label.to_string(),
    }))
}

/// Scan a record file on disk. A missing file scans as empty (zero
/// records, zero truncation).
pub fn scan_file(path: &Path, magic: [u8; 4]) -> io::Result<RecordScan> {
    scan_file_with(&StdStorage, path, magic)
}

/// [`scan_file`] through an explicit [`Storage`]. The scan streams: it
/// reads one record header at a time and clamps the header's `body_len`
/// against the bytes actually remaining in the file *before* allocating
/// the body buffer — a corrupt length field is a torn tail, never a
/// multi-GiB allocation.
pub fn scan_file_with(
    storage: &dyn Storage,
    path: &Path,
    magic: [u8; 4],
) -> io::Result<RecordScan> {
    let Some(mut file) = storage.open_read(path)? else {
        return Ok(RecordScan::default());
    };
    let total = file.len()?;
    let mut head = [0u8; FILE_HEADER_LEN as usize];
    if file.read_exact_or_eof(&mut head)? < head.len() || !header_readable(&head, magic) {
        return Ok(RecordScan {
            entries: Vec::new(),
            valid_len: 0,
            truncated_bytes: total,
        });
    }
    let mut entries = Vec::new();
    let mut off = FILE_HEADER_LEN;
    loop {
        let mut rh = [0u8; RECORD_HEADER_LEN];
        if file.read_exact_or_eof(&mut rh)? < rh.len() {
            break; // clean end or torn record header
        }
        let body_len = u32::from_be_bytes(rh[..4].try_into().unwrap()) as u64;
        // Clamp against the file's remaining bytes BEFORE allocating:
        // body_len comes off disk unvalidated, so an oversized value is
        // treated as a torn/corrupt tail rather than trusted as an
        // allocation size.
        let remaining = total.saturating_sub(off + RECORD_HEADER_LEN as u64);
        if body_len > remaining {
            break;
        }
        let stored_fnv = u64::from_be_bytes(rh[4..12].try_into().unwrap());
        let mut body = vec![0u8; body_len as usize];
        if file.read_exact_or_eof(&mut body)? < body.len() {
            break; // the file shrank under us: torn tail
        }
        let Some(entry) = decode_body(stored_fnv, &body) else {
            break;
        };
        entries.push(entry);
        off += RECORD_HEADER_LEN as u64 + body_len;
    }
    Ok(RecordScan {
        entries,
        valid_len: off,
        truncated_bytes: total - off,
    })
}

/// Appender over the write-ahead log. Each append is written and
/// flushed to the OS before the ingest call returns, so an acknowledged
/// profile survives a SIGKILL of the process; `fsync` additionally
/// forces it to stable storage (surviving power loss) at a large
/// per-append cost.
pub struct WalWriter {
    file: Box<dyn StorageFile>,
    /// Current file length (header + intact records + appends so far).
    bytes: u64,
    /// File length at the last successful commit/reset — the intact
    /// prefix [`WalWriter::rollback_uncommitted`] falls back to when a
    /// group fails mid-write.
    committed: u64,
    fsync: bool,
}

impl WalWriter {
    /// Open the WAL at `path`, truncating it to `valid_len` (the intact
    /// prefix reported by [`scan_file`]) and positioning for appends. A
    /// missing or headerless file is (re)initialized with a fresh
    /// header.
    pub fn open_after(path: &Path, valid_len: u64, fsync: bool) -> io::Result<WalWriter> {
        Self::open_with(&StdStorage, path, valid_len, fsync)
    }

    /// [`WalWriter::open_after`] through an explicit [`Storage`].
    pub fn open_with(
        storage: &dyn Storage,
        path: &Path,
        valid_len: u64,
        fsync: bool,
    ) -> io::Result<WalWriter> {
        let mut file = storage.open_rw(path)?;
        let mut bytes = valid_len;
        if bytes < FILE_HEADER_LEN {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&encode_file_header(WAL_MAGIC))?;
            file.flush()?;
            // A fresh log is a *file creation*: without syncing the file
            // and its parent directory, a power loss could forget the
            // log ever existed while later appends' acks claimed
            // durability.
            file.sync_data()?;
            if let Some(parent) = path.parent() {
                storage.sync_dir(parent)?;
            }
            bytes = FILE_HEADER_LEN;
        } else {
            file.set_len(bytes)?;
            file.seek(SeekFrom::Start(bytes))?;
            // Persist the truncation of the torn tail before appending
            // over it.
            file.sync_data()?;
        }
        file.flush()?;
        Ok(WalWriter {
            file,
            bytes,
            committed: bytes,
            fsync,
        })
    }

    /// Append one profile record and flush it to the OS (plus `fsync`
    /// when configured). Returns the record's encoded size.
    pub fn append(&mut self, label: &str, json: &str, content_hash: u64) -> io::Result<u64> {
        let record = encode_record(label, json, content_hash);
        self.write_encoded(&record)?;
        self.commit()?;
        Ok(record.len() as u64)
    }

    /// Buffer one pre-encoded record (see [`encode_record`],
    /// [`encode_chunk_record`], [`encode_seal_record`]) without
    /// flushing. A group-commit writer stages a whole batch this way and
    /// then makes it durable with one [`WalWriter::commit`].
    pub fn write_encoded(&mut self, record: &[u8]) -> io::Result<u64> {
        self.file.write_all(record)?;
        self.bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Flush staged records to the OS (plus `fsync` when configured):
    /// one durability point for however many records were staged.
    pub fn commit(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.committed = self.bytes;
        Ok(())
    }

    /// Current WAL size in bytes (header included).
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// Whether the WAL holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.bytes <= FILE_HEADER_LEN
    }

    /// Bytes staged past the last successful commit.
    pub fn uncommitted(&self) -> u64 {
        self.bytes.saturating_sub(self.committed)
    }

    /// Truncate back to the last successfully committed length. Called
    /// when a group fails mid-write or mid-commit: whatever partial or
    /// unflushed record bytes sit past `committed` must not replay as if
    /// they had been acknowledged. Unconditional — a failed `write_all`
    /// can leave bytes on disk that `self.bytes` never counted.
    pub fn rollback_uncommitted(&mut self) -> io::Result<()> {
        self.file.set_len(self.committed)?;
        self.file.seek(SeekFrom::Start(self.committed))?;
        self.bytes = self.committed;
        Ok(())
    }

    /// Drop every record: truncate back to a bare header. Called after a
    /// snapshot has absorbed the log's contents — and only after the
    /// snapshot's rename has been made durable (directory fsync), or a
    /// power loss could pair the truncated log with the *old* snapshot.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(FILE_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(FILE_HEADER_LEN))?;
        // Bookkeeping tracks the *file*, not the sync outcome: the
        // truncation above already happened, so `bytes`/`committed`
        // must drop to the header even if the fsync below fails —
        // otherwise a later rollback would set_len the file back UP,
        // zero-filling a region the scanner can never get past, and
        // appends committed after it would be unrecoverable.
        self.bytes = FILE_HEADER_LEN;
        self.committed = FILE_HEADER_LEN;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Force the log to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.committed = self.bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("numa-wal-unit-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_round_trip() {
        let dir = tmp("roundtrip");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let json = "{\"k\":1}";
        w.append("run-a", json, fnv1a(json.as_bytes())).unwrap();
        w.append("run-b", json, fnv1a(json.as_bytes())).unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        let profiles: Vec<_> = scan.profiles().collect();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].label, "run-a");
        assert_eq!(profiles[1].json, json);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.valid_len, w.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_records_round_trip() {
        let dir = tmp("session");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let json = "{\"k\":1}";
        w.write_encoded(&encode_chunk_record(
            7,
            0,
            &ChunkData::Json("{\"threads\":[]}".to_string()),
        ))
        .unwrap();
        w.write_encoded(&encode_record("oneshot", json, fnv1a(json.as_bytes())))
            .unwrap();
        w.write_encoded(&encode_chunk_record(
            7,
            1,
            &ChunkData::Binary(vec![0xAB, 0x00, 0xCD]),
        ))
        .unwrap();
        w.write_encoded(&encode_seal_record(7, 2, 0xDEAD_BEEF, "streamed"))
            .unwrap();
        w.commit().unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert_eq!(scan.entries.len(), 4);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(
            scan.entries[0],
            WalEntry::Chunk(ChunkRecord {
                session: 7,
                seq: 0,
                payload: ChunkData::Json("{\"threads\":[]}".to_string()),
            })
        );
        assert!(matches!(&scan.entries[1], WalEntry::Profile(r) if r.label == "oneshot"));
        assert!(matches!(&scan.entries[2], WalEntry::Chunk(c) if c.seq == 1));
        assert_eq!(
            scan.entries[3],
            WalEntry::Seal(SealRecord {
                session: 7,
                chunks: 2,
                content_hash: 0xDEAD_BEEF,
                label: "streamed".to_string(),
            })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_profile_records_round_trip() {
        let dir = tmp("binprofile");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let bytes = vec![0x4E, 0x50, 0x43, 0x42, 0xFF, 0x00]; // opaque to the WAL
        w.write_encoded(&encode_bin_record("bin-run", &bytes, 0xFEED_FACE, 4242))
            .unwrap();
        w.commit().unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(
            scan.entries,
            vec![WalEntry::ProfileBin(BinProfileRecord {
                label: "bin-run".to_string(),
                content_hash: 0xFEED_FACE,
                json_len: 4242,
                bytes,
            })]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn older_version_headers_still_scan() {
        let dir = tmp("oldversion");
        let path = wal_path(&dir);
        // A v2-era file: old header version, records of the old kinds.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&[0, 0]);
        let json = "{\"k\":1}";
        bytes.extend_from_slice(&encode_record("legacy", json, fnv1a(json.as_bytes())));
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.truncated_bytes, 0);
        assert!(matches!(&scan.entries[0], WalEntry::Profile(r) if r.label == "legacy"));
        // Version 0 and versions from the future are not readable.
        for bad in [0u16, PERSIST_VERSION + 1] {
            bytes[4..6].copy_from_slice(&bad.to_be_bytes());
            std::fs::write(&path, &bytes).unwrap();
            let scan = scan_file(&path, WAL_MAGIC).unwrap();
            assert!(scan.entries.is_empty(), "version {bad} must not scan");
            assert_eq!(scan.valid_len, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_record_kind_truncates_the_tail() {
        let dir = tmp("unknownkind");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let json = "{\"k\":1}";
        let first_end = FILE_HEADER_LEN + w.append("one", json, fnv1a(json.as_bytes())).unwrap();
        drop(w);
        // A record with a valid checksum but a kind from the future.
        let mut bytes = std::fs::read(&path).unwrap();
        let mut body = vec![9u8]; // unknown kind
        body.extend_from_slice(b"payload");
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&fnv1a(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.valid_len, first_end);
        assert!(scan.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let json = "{\"k\":1}";
        w.append("whole", json, fnv1a(json.as_bytes())).unwrap();
        let whole = w.len();
        drop(w);
        // Simulate a torn append: half a record of garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.valid_len, whole);
        assert_eq!(scan.truncated_bytes, 7);
        // Reopening after the intact prefix discards the tail.
        let w = WalWriter::open_after(&path, scan.valid_len, false).unwrap();
        assert_eq!(w.len(), whole);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), whole);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_byte_drops_record_and_tail() {
        let dir = tmp("corrupt");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let json = "{\"k\":1}";
        let first_end = FILE_HEADER_LEN + w.append("one", json, fnv1a(json.as_bytes())).unwrap();
        w.append("two", json, fnv1a(json.as_bytes())).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let hit = first_end as usize + 20; // somewhere inside record two
        bytes[hit] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        let profiles: Vec<_> = scan.profiles().collect();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].label, "one");
        assert_eq!(scan.valid_len, first_end);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_writes_commit_as_one_durability_point() {
        let dir = tmp("batch");
        let path = wal_path(&dir);
        let mut w = WalWriter::open_after(&path, 0, false).unwrap();
        let json = "{\"k\":1}";
        for label in ["a", "b", "c"] {
            w.write_encoded(&encode_record(label, json, fnv1a(json.as_bytes())))
                .unwrap();
        }
        w.commit().unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert_eq!(scan.entries.len(), 3);
        assert_eq!(scan.valid_len, w.len());
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_scans_empty() {
        let dir = tmp("missing");
        let scan = scan_file(&wal_path(&dir), WAL_MAGIC).unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_header_invalidates_whole_file() {
        let dir = tmp("badheader");
        let path = wal_path(&dir);
        std::fs::write(&path, b"NOPE0000somebytes").unwrap();
        let scan = scan_file(&path, WAL_MAGIC).unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.truncated_bytes, 17);
        std::fs::remove_dir_all(&dir).ok();
    }
}
