//! Group-commit persistence: one dedicated writer thread owns the WAL
//! and the snapshot file, so ingest threads never do I/O.
//!
//! ## Commit protocol
//!
//! An ingest that wants a new profile persisted encodes its WAL record
//! *on the ingest thread* (no lock held), enqueues it, and blocks until
//! the persister acknowledges it. The persister drains everything
//! queued, writes the whole batch, flushes (and `fsync`s when
//! configured) **once**, and only then acks — in enqueue order. Under
//! concurrent ingest load many records share one flush; a lone ingest
//! degenerates to the old write-and-flush-per-record behaviour. Either
//! way the store's durability contract holds: an acknowledged record is
//! flushed to the OS (SIGKILL-safe) before the caller's ingest returns.
//!
//! ## Error path
//!
//! Acks carry a `Result`. A WAL write or commit error fails the ack of
//! **every record in that commit group** — the log tail past the last
//! successful commit is truncated
//! ([`crate::wal::WalWriter::rollback_uncommitted`]) so a restart
//! replays exactly the acknowledged prefix, and the caller surfaces a
//! typed error instead of silently claiming durability. I/O errors are
//! additionally counted in [`PersistStats::io_errors`](crate::PersistStats::io_errors).
//!
//! ## Compaction and session poisoning
//!
//! Snapshot compaction (explicit [`Persister::flush`] or automatic once
//! the WAL outgrows its bound) also runs on the persister thread. The
//! corpus closure clones the profile `Arc`s under brief per-shard read
//! locks and serializes them *outside* any lock; an insert racing past
//! the clone simply lands in both the snapshot and the fresh WAL and
//! dedups on replay. A compaction resets the WAL — the only place
//! staged chunks of open streaming sessions live — and re-stages them
//! into the fresh log. If that re-staging fails, the affected sessions
//! are *poisoned*: their chunks' durability is gone, so a later seal of
//! such a session is refused ([`AppendError::SessionPoisoned`]) rather
//! than written — an acknowledged seal whose chunks cannot replay would
//! silently drop the whole session at the next restart. The store
//! answers a refusal by persisting the assembled profile as an ordinary
//! record instead. Poison marks clear on the next successful compaction
//! (which re-stages every open session's records afresh). The check
//! runs here, on the writer thread, because it must be serialized with
//! compaction — a flag the ingest thread polls could be set a moment
//! after it looked.

use crate::wal::WalWriter;
use crate::{PersistOptions, PersistStats};
use numa_faults::Storage;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Produces the [`crate::snapshot::SnapshotRow`]s (label, binary-codec
/// payload, content hash, canonical-JSON length) a snapshot persists.
/// Runs on the persister thread.
pub(crate) type CorpusFn = Box<dyn Fn() -> Vec<crate::snapshot::SnapshotRow> + Send + 'static>;

/// Produces the `(session id, encoded record)` rows of still-open
/// streaming sessions. A compaction resets the WAL — the only place
/// those records live — so they are re-staged into the fresh log right
/// after the reset (replay dedups chunks by sequence number, so a
/// record surviving in both the old and new generation is harmless).
/// The session ids identify which sessions to poison when re-staging
/// fails. Runs on the persister thread.
pub(crate) type RetainedFn = Box<dyn Fn() -> Vec<(u64, Vec<u8>)> + Send + 'static>;

/// Why a persisted operation could not be made durable. Converted to
/// [`crate::StoreError::Persist`] at the ingest API boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum AppendError {
    /// The record's commit group failed and was rolled back.
    Io(String),
    /// A seal append was refused: a failed compaction lost the
    /// session's staged chunks, so sealing it would acknowledge a
    /// session a restart must drop. Nothing was written.
    SessionPoisoned,
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::Io(message) => f.write_str(message),
            AppendError::SessionPoisoned => {
                f.write_str("staged session chunks were lost by a failed compaction")
            }
        }
    }
}

pub(crate) type AppendResult = Result<(), AppendError>;

enum Op {
    /// One pre-encoded WAL record; ack fires once its commit group is
    /// flushed (`Ok`) or has failed and been rolled back (`Err`).
    /// `session` tags seal records with their session id so the writer
    /// thread can refuse seals of poisoned sessions.
    Append {
        record: Vec<u8>,
        session: Option<u64>,
        ack: SyncSender<AppendResult>,
    },
    /// Commit pending appends, then compact the WAL into a snapshot.
    Flush { ack: SyncSender<io::Result<()>> },
}

/// Runtime counters shared between the persister thread and
/// [`Persister::stats`] readers.
#[derive(Default)]
struct Shared {
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    io_errors: AtomicU64,
    group_commits: AtomicU64,
}

/// Handle to the group-commit writer thread. Dropping the store calls
/// [`Persister::stop`], which drains the queue and joins the thread, so
/// every acknowledged record is on disk before the process can observe
/// the store as gone.
pub(crate) struct Persister {
    tx: Mutex<Option<Sender<Op>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    shared: Arc<Shared>,
    /// Recovery-time constants (replay counts, truncation), fixed at
    /// open and merged into every [`Persister::stats`] answer.
    base: PersistStats,
}

const STOPPED: &str = "persister thread stopped before the record was durable";

impl Persister {
    pub(crate) fn spawn(
        dir: PathBuf,
        wal: WalWriter,
        opts: PersistOptions,
        base: PersistStats,
        storage: Arc<dyn Storage>,
        corpus: CorpusFn,
        retained: RetainedFn,
    ) -> io::Result<Persister> {
        let shared = Arc::new(Shared::default());
        shared.wal_bytes.store(wal.len(), Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("numa-store-persist".to_string())
            .spawn(move || {
                Worker {
                    dir,
                    wal,
                    opts,
                    shared: worker_shared,
                    storage,
                    corpus,
                    retained,
                    poisoned: HashSet::new(),
                }
                .run(rx)
            })?;
        Ok(Persister {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            shared,
            base,
        })
    }

    /// Enqueue a batch of pre-encoded records and block until every one
    /// is flushed or has failed. Enqueueing the whole batch before
    /// waiting lets the persister commit it (plus anything other
    /// threads queued) with a single flush. Returns one result per
    /// record, in input order; a stopped persister fails the records it
    /// never wrote rather than acknowledging them.
    pub(crate) fn append_all(&self, records: Vec<Vec<u8>>) -> Vec<AppendResult> {
        let n = records.len();
        if n == 0 {
            return Vec::new();
        }
        let mut waits = Vec::with_capacity(n);
        {
            let guard = self.tx.lock();
            if let Some(tx) = guard.as_ref() {
                for record in records {
                    let (ack, wait) = sync_channel(1);
                    let op = Op::Append {
                        record,
                        session: None,
                        ack,
                    };
                    if tx.send(op).is_err() {
                        break;
                    }
                    waits.push(wait);
                }
            }
        }
        let mut out: Vec<AppendResult> = waits
            .into_iter()
            .map(|wait| {
                wait.recv()
                    .unwrap_or_else(|_| Err(AppendError::Io(STOPPED.to_string())))
            })
            .collect();
        out.resize_with(n, || Err(AppendError::Io(STOPPED.to_string())));
        out
    }

    /// Append one session seal record and block until it is flushed,
    /// failed, or refused because the session is poisoned (see the
    /// module docs).
    pub(crate) fn append_seal(&self, record: Vec<u8>, session: u64) -> AppendResult {
        let wait = {
            let guard = self.tx.lock();
            let Some(tx) = guard.as_ref() else {
                return Err(AppendError::Io(STOPPED.to_string()));
            };
            let (ack, wait) = sync_channel(1);
            let op = Op::Append {
                record,
                session: Some(session),
                ack,
            };
            if tx.send(op).is_err() {
                return Err(AppendError::Io(STOPPED.to_string()));
            }
            wait
        };
        wait.recv()
            .unwrap_or_else(|_| Err(AppendError::Io(STOPPED.to_string())))
    }

    /// Commit pending appends and compact the WAL into a snapshot now.
    pub(crate) fn flush(&self) -> io::Result<()> {
        let wait = {
            let guard = self.tx.lock();
            let Some(tx) = guard.as_ref() else {
                return Ok(());
            };
            let (ack, wait) = sync_channel(1);
            tx.send(Op::Flush { ack })
                .map_err(|_| io::Error::other("persister thread stopped"))?;
            wait
        };
        wait.recv()
            .map_err(|_| io::Error::other("persister thread stopped"))?
    }

    pub(crate) fn stats(&self) -> PersistStats {
        PersistStats {
            wal_appends: self.shared.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.shared.wal_bytes.load(Ordering::Relaxed),
            snapshots_written: self.shared.snapshots_written.load(Ordering::Relaxed),
            io_errors: self.shared.io_errors.load(Ordering::Relaxed),
            wal_group_commits: self.shared.group_commits.load(Ordering::Relaxed),
            ..self.base
        }
    }

    /// Close the queue and join the writer thread. Everything already
    /// enqueued is committed first; later appends fail their acks
    /// (never a hang, never a false durability claim).
    pub(crate) fn stop(&self) {
        drop(self.tx.lock().take());
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

/// State owned by the persister thread.
struct Worker {
    dir: PathBuf,
    wal: WalWriter,
    opts: PersistOptions,
    shared: Arc<Shared>,
    storage: Arc<dyn Storage>,
    corpus: CorpusFn,
    retained: RetainedFn,
    /// Sessions whose staged chunk records were lost when a compaction
    /// reset the WAL and then failed to re-stage them. Seals of these
    /// sessions are refused; a successful compaction (which re-stages
    /// every open session afresh) heals them all.
    poisoned: HashSet<u64>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Op>) {
        // recv() returns Err only once the queue is empty *and* every
        // sender is gone, so shutdown never drops a queued record.
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            while let Ok(op) = rx.try_recv() {
                batch.push(op);
            }
            self.process(batch);
        }
    }

    /// Acks fire only at the end (or at an explicit flush), *after* the
    /// batch's single commit and any threshold compaction — so counters
    /// an ingester reads right after its ack (`snapshots_written`,
    /// `wal_appends`) already reflect its record, exactly as the old
    /// synchronous appender behaved.
    fn process(&mut self, batch: Vec<Op>) {
        // Acks of records staged since the last commit point; one write
        // error poisons the rest of the group (its bytes may sit torn
        // in the log, so nothing written after it could commit
        // cleanly anyway).
        let mut staged: Vec<SyncSender<AppendResult>> = Vec::new();
        let mut group_err: Option<String> = None;
        for op in batch {
            match op {
                Op::Append {
                    record,
                    session,
                    ack,
                } => {
                    if let Some(session) = session {
                        if self.poisoned.remove(&session) {
                            let _ = ack.send(Err(AppendError::SessionPoisoned));
                            continue;
                        }
                    }
                    if group_err.is_none() {
                        if let Err(e) = self.wal.write_encoded(&record) {
                            self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("numa-store: WAL append failed: {e}");
                            group_err = Some(e.to_string());
                        }
                    }
                    staged.push(ack);
                }
                Op::Flush { ack } => {
                    let pending = self.finish_group(&mut staged, &mut group_err);
                    let result = self.compact();
                    if result.is_err() {
                        self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Self::dispatch(pending);
                    let _ = ack.send(result);
                }
            }
        }
        let pending = self.finish_group(&mut staged, &mut group_err);
        if self.wal.len() >= self.opts.snapshot_wal_bytes {
            if let Err(e) = self.compact() {
                self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("numa-store: snapshot compaction failed: {e}");
            }
        }
        Self::dispatch(pending);
    }

    /// Deliver the acks a [`Worker::finish_group`] decided. Delivery is
    /// deferred past any compaction the group triggered so counters read
    /// right after an ack already reflect it (a compaction failure does
    /// not change the results — the group's records are committed
    /// either way).
    fn dispatch(pending: Vec<(SyncSender<AppendResult>, AppendResult)>) {
        for (ack, result) in pending {
            let _ = ack.send(result);
        }
    }

    /// One durability point for everything staged since the last commit
    /// point. On success every staged ack reports `Ok`; on a write or
    /// commit failure the uncommitted tail is truncated away and every
    /// staged ack reports the error — a failed group is failed *whole*,
    /// never acked-then-dropped. Returns the acks to deliver (via
    /// [`Worker::dispatch`]) once any triggered compaction is done.
    fn finish_group(
        &mut self,
        staged: &mut Vec<SyncSender<AppendResult>>,
        group_err: &mut Option<String>,
    ) -> Vec<(SyncSender<AppendResult>, AppendResult)> {
        if staged.is_empty() {
            *group_err = None;
            return Vec::new();
        }
        let result: AppendResult = match group_err.take() {
            Some(e) => Err(AppendError::Io(e)),
            None => self.wal.commit().map_err(|e| {
                self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("numa-store: WAL commit failed: {e}");
                AppendError::Io(e.to_string())
            }),
        };
        match &result {
            Ok(()) => {
                self.shared
                    .wal_appends
                    .fetch_add(staged.len() as u64, Ordering::Relaxed);
                self.shared.group_commits.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // The tail past the last commit holds partial or
                // unflushed record bytes whose acks are about to report
                // failure; truncate it so a restart replays exactly the
                // acknowledged prefix.
                if let Err(e) = self.wal.rollback_uncommitted() {
                    self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("numa-store: WAL rollback failed: {e}");
                }
            }
        }
        self.shared
            .wal_bytes
            .store(self.wal.len(), Ordering::Relaxed);
        staged.drain(..).map(|ack| (ack, result.clone())).collect()
    }

    /// Snapshot the whole corpus atomically and reset the WAL,
    /// re-staging the chunk records of still-open streaming sessions
    /// into the fresh log.
    fn compact(&mut self) -> io::Result<()> {
        let entries = (self.corpus)();
        // A failure up to and including the snapshot write leaves the
        // old snapshot + full WAL pair untouched: nothing acknowledged
        // is at risk, the compaction can simply be retried later.
        crate::snapshot::write_snapshot_with(&*self.storage, &self.dir, &entries)?;
        // The snapshot rename is directory-fsynced (power-loss durable)
        // before this point, so truncating the WAL can never pair an
        // empty log with the *old* snapshot.
        let retained = (self.retained)();
        let restage = (|| {
            self.wal.reset()?;
            if !retained.is_empty() {
                for (_, record) in &retained {
                    self.wal.write_encoded(record)?;
                }
                self.wal.commit()?;
            }
            Ok(())
        })();
        match &restage {
            Ok(()) => {
                // Every open session's records are freshly staged in
                // the new log: earlier poison marks are healed.
                self.poisoned.clear();
                self.shared
                    .snapshots_written
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                // The WAL was (or may have been) reset but the open
                // sessions' chunks could not be re-staged: their
                // durability is gone. Poison them so a later seal is
                // refused instead of acknowledging a session a restart
                // would drop.
                eprintln!("numa-store: WAL re-staging after compaction failed: {e}");
                let _ = self.wal.rollback_uncommitted();
                self.poisoned.extend(retained.iter().map(|(s, _)| *s));
            }
        }
        self.shared
            .wal_bytes
            .store(self.wal.len(), Ordering::Relaxed);
        restage
    }
}
