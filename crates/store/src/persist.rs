//! Group-commit persistence: one dedicated writer thread owns the WAL
//! and the snapshot file, so ingest threads never do I/O.
//!
//! ## Commit protocol
//!
//! An ingest that inserted a new profile encodes its WAL record *on the
//! ingest thread* (no lock held), enqueues it, and blocks until the
//! persister acknowledges it. The persister drains everything queued,
//! writes the whole batch, flushes (and `fsync`s when configured)
//! **once**, and only then acks — in enqueue order. Under concurrent
//! ingest load many records share one flush; a lone ingest degenerates
//! to the old write-and-flush-per-record behaviour. Either way the
//! store's durability contract is unchanged: an acknowledged ingest is
//! flushed to the OS (SIGKILL-safe) before the caller's ingest returns.
//!
//! ## Compaction
//!
//! Snapshot compaction (explicit [`Persister::flush`] or automatic once
//! the WAL outgrows its bound) also runs on the persister thread. The
//! corpus closure clones the profile `Arc`s under brief per-shard read
//! locks and serializes them *outside* any lock; an insert racing past
//! the clone simply lands in both the snapshot and the fresh WAL and
//! dedups on replay.
//!
//! I/O errors are counted and reported, never propagated to ingests —
//! the store keeps serving from memory (same contract as before).

use crate::wal::WalWriter;
use crate::{PersistOptions, PersistStats};
use parking_lot::Mutex;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Produces the `(label, canonical json, content hash)` rows a snapshot
/// persists. Runs on the persister thread.
pub(crate) type CorpusFn = Box<dyn Fn() -> Vec<(String, String, u64)> + Send + 'static>;

/// Produces the encoded chunk records of still-open streaming sessions.
/// A compaction resets the WAL — the only place those chunks live — so
/// they are re-staged into the fresh log right after the reset (replay
/// dedups chunks by sequence number, so a record surviving in both the
/// old and new generation is harmless). Runs on the persister thread.
pub(crate) type RetainedFn = Box<dyn Fn() -> Vec<Vec<u8>> + Send + 'static>;

enum Op {
    /// One pre-encoded WAL record; ack fires once it is flushed.
    Append {
        record: Vec<u8>,
        ack: SyncSender<()>,
    },
    /// Commit pending appends, then compact the WAL into a snapshot.
    Flush { ack: SyncSender<io::Result<()>> },
}

/// Runtime counters shared between the persister thread and
/// [`Persister::stats`] readers.
#[derive(Default)]
struct Shared {
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    io_errors: AtomicU64,
    group_commits: AtomicU64,
}

/// Handle to the group-commit writer thread. Dropping the store calls
/// [`Persister::stop`], which drains the queue and joins the thread, so
/// every acknowledged record is on disk before the process can observe
/// the store as gone.
pub(crate) struct Persister {
    tx: Mutex<Option<Sender<Op>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    shared: Arc<Shared>,
    /// Recovery-time constants (replay counts, truncation), fixed at
    /// open and merged into every [`Persister::stats`] answer.
    base: PersistStats,
}

impl Persister {
    pub(crate) fn spawn(
        dir: PathBuf,
        wal: WalWriter,
        opts: PersistOptions,
        base: PersistStats,
        corpus: CorpusFn,
        retained: RetainedFn,
    ) -> io::Result<Persister> {
        let shared = Arc::new(Shared::default());
        shared.wal_bytes.store(wal.len(), Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("numa-store-persist".to_string())
            .spawn(move || {
                Worker {
                    dir,
                    wal,
                    opts,
                    shared: worker_shared,
                    corpus,
                    retained,
                }
                .run(rx)
            })?;
        Ok(Persister {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            shared,
            base,
        })
    }

    /// Enqueue a batch of pre-encoded records and block until every one
    /// is flushed. Enqueueing the whole batch before waiting lets the
    /// persister commit it (plus anything other threads queued) with a
    /// single flush.
    pub(crate) fn append_all(&self, records: Vec<Vec<u8>>) {
        if records.is_empty() {
            return;
        }
        let mut waits = Vec::with_capacity(records.len());
        {
            let guard = self.tx.lock();
            let Some(tx) = guard.as_ref() else { return };
            for record in records {
                let (ack, wait) = sync_channel(1);
                if tx.send(Op::Append { record, ack }).is_err() {
                    break;
                }
                waits.push(wait);
            }
        }
        for wait in waits {
            let _ = wait.recv();
        }
    }

    /// Commit pending appends and compact the WAL into a snapshot now.
    pub(crate) fn flush(&self) -> io::Result<()> {
        let wait = {
            let guard = self.tx.lock();
            let Some(tx) = guard.as_ref() else {
                return Ok(());
            };
            let (ack, wait) = sync_channel(1);
            tx.send(Op::Flush { ack })
                .map_err(|_| io::Error::other("persister thread stopped"))?;
            wait
        };
        wait.recv()
            .map_err(|_| io::Error::other("persister thread stopped"))?
    }

    pub(crate) fn stats(&self) -> PersistStats {
        PersistStats {
            wal_appends: self.shared.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.shared.wal_bytes.load(Ordering::Relaxed),
            snapshots_written: self.shared.snapshots_written.load(Ordering::Relaxed),
            io_errors: self.shared.io_errors.load(Ordering::Relaxed),
            wal_group_commits: self.shared.group_commits.load(Ordering::Relaxed),
            ..self.base
        }
    }

    /// Close the queue and join the writer thread. Everything already
    /// enqueued is committed first; later appends are dropped silently
    /// (their ack channel reports disconnection, never a hang).
    pub(crate) fn stop(&self) {
        drop(self.tx.lock().take());
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

/// State owned by the persister thread.
struct Worker {
    dir: PathBuf,
    wal: WalWriter,
    opts: PersistOptions,
    shared: Arc<Shared>,
    corpus: CorpusFn,
    retained: RetainedFn,
}

impl Worker {
    fn run(mut self, rx: Receiver<Op>) {
        // recv() returns Err only once the queue is empty *and* every
        // sender is gone, so shutdown never drops a queued record.
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            while let Ok(op) = rx.try_recv() {
                batch.push(op);
            }
            self.process(batch);
        }
    }

    /// Acks fire only at the end (or at an explicit flush), *after* the
    /// batch's single commit and any threshold compaction — so counters
    /// an ingester reads right after its ack (`snapshots_written`,
    /// `wal_appends`) already reflect its record, exactly as the old
    /// synchronous appender behaved.
    fn process(&mut self, batch: Vec<Op>) {
        let mut acks: Vec<SyncSender<()>> = Vec::new();
        let mut staged = 0u64;
        for op in batch {
            match op {
                Op::Append { record, ack } => {
                    match self.wal.write_encoded(&record) {
                        Ok(_) => staged += 1,
                        Err(e) => {
                            self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("numa-store: WAL append failed: {e}");
                        }
                    }
                    // Failed appends are acked too: the ingest already
                    // succeeded in memory and must not hang.
                    acks.push(ack);
                }
                Op::Flush { ack } => {
                    self.commit_staged(&mut staged);
                    let result = self.compact();
                    for a in acks.drain(..) {
                        let _ = a.send(());
                    }
                    let _ = ack.send(result);
                }
            }
        }
        self.commit_staged(&mut staged);
        if self.wal.len() >= self.opts.snapshot_wal_bytes {
            if let Err(e) = self.compact() {
                self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("numa-store: snapshot compaction failed: {e}");
            }
        }
        for ack in acks.drain(..) {
            let _ = ack.send(());
        }
    }

    /// One durability point for everything staged since the last commit.
    fn commit_staged(&mut self, staged: &mut u64) {
        if *staged > 0 {
            if let Err(e) = self.wal.commit() {
                self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("numa-store: WAL commit failed: {e}");
            }
            self.shared
                .wal_appends
                .fetch_add(*staged, Ordering::Relaxed);
            self.shared.group_commits.fetch_add(1, Ordering::Relaxed);
            *staged = 0;
        }
        self.shared
            .wal_bytes
            .store(self.wal.len(), Ordering::Relaxed);
    }

    /// Snapshot the whole corpus atomically and reset the WAL. Chunk
    /// records of still-open streaming sessions live only in the WAL,
    /// so they are re-staged into the fresh log after the reset.
    fn compact(&mut self) -> io::Result<()> {
        let entries = (self.corpus)();
        crate::snapshot::write_snapshot(&self.dir, &entries)?;
        self.wal.reset()?;
        let retained = (self.retained)();
        if !retained.is_empty() {
            for record in &retained {
                self.wal.write_encoded(record)?;
            }
            self.wal.commit()?;
        }
        self.shared
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .wal_bytes
            .store(self.wal.len(), Ordering::Relaxed);
        Ok(())
    }
}
