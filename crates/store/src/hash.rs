//! Content addressing for profiles.
//!
//! A profile's identity is the FNV-1a hash of its canonical JSON
//! serialization. `NumaProfile::to_json` is byte-deterministic (object
//! keys follow struct declaration order and floats render canonically),
//! so two runs that produced identical measurements hash identically no
//! matter how the bytes arrived — ingesting the same run twice, or the
//! same profile pretty-printed, dedups to one stored copy.

use numa_profiler::NumaProfile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Mix one more 64-bit value into a running hash (order-sensitive).
pub fn mix(h: u64, x: u64) -> u64 {
    let mut h = h ^ x.rotate_left(31);
    h = h.wrapping_mul(FNV_PRIME);
    h ^ (h >> 29)
}

/// Content address of one stored profile.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProfileId(pub u64);

impl ProfileId {
    /// Hash the canonical serialization of a profile.
    pub fn of(profile: &NumaProfile) -> (ProfileId, String) {
        let canonical = profile.to_json();
        (ProfileId(fnv1a(canonical.as_bytes())), canonical)
    }
}

impl fmt::Display for ProfileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for ProfileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProfileId({self})")
    }
}

impl FromStr for ProfileId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s, 16)
            .map(ProfileId)
            .map_err(|_| format!("not a 16-hex-digit profile id: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
        assert_eq!(fnv1a(b"profile"), fnv1a(b"profile"));
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(mix(0, 1), 2), mix(mix(0, 2), 1));
    }

    #[test]
    fn id_round_trips_through_hex() {
        let id = ProfileId(0x0123_4567_89ab_cdef);
        let parsed: ProfileId = id.to_string().parse().unwrap();
        assert_eq!(parsed, id);
        assert!("xyz".parse::<ProfileId>().is_err());
    }
}
