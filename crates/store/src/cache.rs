//! Sharded, counted LRU memo cache for derived analysis artifacts.
//!
//! Keys carry a *scope hash* — the content hash of the profile (or
//! profile set) the artifact was derived from — alongside the query, so
//! a changed input can never serve a stale artifact: the new scope hash
//! simply misses. Eviction is least-recently-used per shard, tracked
//! with a logical clock rather than wall time (deterministic under
//! test). Hit/miss/insertion/eviction counters are atomic so concurrent
//! readers do not contend on the shard locks just to account.

use numa_obs::{trace, Counter, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of independently locked shards. A power of two so the shard
/// index is a mask of the key hash.
const SHARDS: usize = 8;

/// Counter snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    stamp: u64,
    value: Arc<V>,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    clock: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
        }
    }
}

/// The cache proper, generic over key and artifact type.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl<K: Hash + Eq + Clone, V> MemoCache<K, V> {
    /// A cache holding at most ~`capacity` artifacts (rounded up to a
    /// multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Adopt the cache counters into `registry` under the
    /// `numa_store_cache_` prefix (clones of the hot-path handles).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.counter(
            "numa_store_cache_hits_total",
            "Memo-cache lookups served from a resident artifact.",
            &[],
            self.hits.clone(),
        );
        registry.counter(
            "numa_store_cache_misses_total",
            "Memo-cache lookups that had to build the artifact.",
            &[],
            self.misses.clone(),
        );
        registry.counter(
            "numa_store_cache_insertions_total",
            "Artifacts inserted into the memo cache.",
            &[],
            self.insertions.clone(),
        );
        registry.counter(
            "numa_store_cache_evictions_total",
            "Artifacts evicted from the memo cache (LRU).",
            &[],
            self.evictions.clone(),
        );
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Fetch `key`, computing the artifact with `build` on a miss. The
    /// shard lock is *not* held while `build` runs — expensive analyses
    /// on different keys of the same shard proceed concurrently; the
    /// rare duplicated build on a race loses only work, never coherence.
    pub fn get_or_try_insert<E>(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let shard = self.shard_of(&key);
        {
            let mut s = shard.lock();
            s.clock += 1;
            let clock = s.clock;
            if let Some(e) = s.map.get_mut(&key) {
                e.stamp = clock;
                self.hits.inc();
                trace::note_cache(true);
                return Ok(Arc::clone(&e.value));
            }
        }
        self.misses.inc();
        trace::note_cache(false);
        let value = Arc::new(build()?);
        let mut s = shard.lock();
        s.clock += 1;
        let stamp = s.clock;
        if s.map.len() >= self.per_shard_capacity && !s.map.contains_key(&key) {
            // Evict the least-recently-used entry of this shard. A linear
            // scan is fine: shards are small (capacity / SHARDS entries).
            if let Some(victim) = s
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                s.map.remove(&victim);
                self.evictions.inc();
            }
        }
        let value_out = Arc::clone(&value);
        if s.map.insert(key, Entry { stamp, value }).is_none() {
            self.insertions.inc();
        }
        Ok(value_out)
    }

    /// Number of currently resident artifacts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident artifact (counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().map.clear();
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_fetch_hits() {
        let cache: MemoCache<u32, String> = MemoCache::new(16);
        let v1 = cache
            .get_or_try_insert::<()>(1, || Ok("one".to_string()))
            .unwrap();
        let v2 = cache
            .get_or_try_insert::<()>(1, || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&v1, &v2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache: MemoCache<u32, String> = MemoCache::new(16);
        assert!(cache.get_or_try_insert(7, || Err("boom")).is_err());
        let v = cache
            .get_or_try_insert::<&str>(7, || Ok("recovered".to_string()))
            .unwrap();
        assert_eq!(*v, "recovered");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn capacity_overflow_evicts_lru() {
        // Capacity SHARDS → one entry per shard; two keys in the same
        // shard force an eviction of the older one.
        let cache: MemoCache<u32, u32> = MemoCache::new(SHARDS);
        for k in 0..64u32 {
            cache.get_or_try_insert::<()>(k, || Ok(k)).unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "expected evictions, got {s:?}");
        assert!(cache.len() <= SHARDS);
    }

    #[test]
    fn recently_used_survives_eviction() {
        let cache: MemoCache<u32, u32> = MemoCache::new(SHARDS * 2);
        // Fill, then keep touching key 0 while inserting fresh keys.
        for k in 0..16u32 {
            cache.get_or_try_insert::<()>(k, || Ok(k)).unwrap();
        }
        for k in 16..200u32 {
            cache.get_or_try_insert::<()>(0, || Ok(0)).unwrap();
            cache.get_or_try_insert::<()>(k, || Ok(k)).unwrap();
        }
        let before = cache.stats();
        cache.get_or_try_insert::<()>(0, || Ok(0)).unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1, "key 0 was evicted");
    }
}
