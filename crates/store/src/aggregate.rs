//! Cross-run merging: one aggregate view over every profile in the
//! store.
//!
//! Merging *across runs* differs from the per-run thread merge in
//! `numa_analysis::Analyzer` in two ways. First, `VarId`s are not stable
//! across runs (allocation order assigns them), so variables are keyed
//! by source name — interned once in a shared
//! [`SymbolTable`](numa_engine::SymbolTable) so partial merges compare
//! `u32` symbols, not strings. Second, heap addresses are not comparable
//! across runs, so accessed ranges are normalized to each run's variable
//! extent *before* the [min,max] reduction (§7.2) is applied across
//! runs.
//!
//! Each run's contribution is read straight off its
//! [`Engine`](numa_engine::Engine) index — program totals, per-variable
//! columns, and merged Program-scope ranges are precomputed there, so
//! summarizing a run never re-walks its threads. The cross-run merge
//! itself is [`numa_engine::par_fold`]: one partial per profile, reduced
//! pairwise.

use crate::StoredProfile;
use numa_engine::{par_fold, Symbol, SymbolTable};
use numa_profiler::{MetricSet, RangeScope, RangeStat};
use numa_sim::VarKind;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// One variable's metrics pooled across every run that sampled it.
#[derive(Clone, Debug, Serialize)]
pub struct VarAggregate {
    pub name: String,
    pub kind: VarKind,
    /// Runs in which this variable appeared with at least one sample.
    pub runs_seen: usize,
    /// Largest extent the variable had in any run (re-allocations may
    /// differ in size between runs).
    pub bytes_max: u64,
    /// Metrics accumulated over all runs.
    pub metrics: MetricSet,
    /// Normalized accessed range pooled across runs under the \[min,max\]
    /// reduction: 0.0 = first byte of the variable, 1.0 = last. `None`
    /// when no run recorded address-centric data for the variable.
    pub coverage: Option<(f64, f64)>,
}

/// The cross-run aggregate artifact.
#[derive(Clone, Debug, Serialize)]
pub struct CrossRunAggregate {
    pub runs: usize,
    pub domains: usize,
    /// Program metrics pooled over all runs.
    pub totals: MetricSet,
    /// Pooled `lpi_NUMA` over the whole set (Eq. 2 applied to pooled
    /// counters; `None` when no run captured latency).
    pub lpi_numa: Option<f64>,
    /// Per-variable pools, hottest first (remote latency, then remote
    /// samples, then name — deterministic across runs of the merge).
    pub vars: Vec<VarAggregate>,
}

/// Per-profile partial: what one run contributes to the pool. Variables
/// are keyed by interned symbol so the pairwise merge hashes `u32`s.
struct Partial {
    totals: MetricSet,
    domains: usize,
    vars: HashMap<Symbol, VarAggregate>,
}

impl Partial {
    fn empty() -> Self {
        Partial {
            totals: MetricSet::new(0),
            domains: 0,
            vars: HashMap::new(),
        }
    }

    fn absorb(mut self, other: Partial) -> Self {
        self.totals.merge(&other.totals);
        self.domains = self.domains.max(other.domains);
        for (sym, v) in other.vars {
            match self.vars.get_mut(&sym) {
                Some(acc) => {
                    acc.runs_seen += v.runs_seen;
                    acc.bytes_max = acc.bytes_max.max(v.bytes_max);
                    acc.metrics.merge(&v.metrics);
                    acc.coverage = match (acc.coverage, v.coverage) {
                        (Some((lo, hi)), Some((l2, h2))) => Some((lo.min(l2), hi.max(h2))),
                        (a, b) => a.or(b),
                    };
                }
                None => {
                    self.vars.insert(sym, v);
                }
            }
        }
        self
    }
}

/// Summarize one run from its engine index: totals, per-variable
/// columns, and Program-scope coverage are all precomputed — no thread
/// walk. Variables whose record is missing from the profile's table
/// (malformed input) are skipped, mirroring the analyzer's
/// graceful-degradation contract.
fn summarize(stored: &StoredProfile, names: &SymbolTable) -> Partial {
    let engine = stored.engine();
    let idx = engine.index();
    let p = engine.profile();
    let mut vars: HashMap<Symbol, VarAggregate> = HashMap::new();
    for (v, m) in idx.var_columns() {
        let Some(rec) = p.var(*v) else { continue };
        let sym = names.intern(&rec.name);
        vars.entry(sym)
            .and_modify(|acc| acc.metrics.merge(m))
            .or_insert_with(|| VarAggregate {
                name: rec.name.clone(),
                kind: rec.kind,
                runs_seen: 1,
                bytes_max: rec.bytes,
                metrics: m.clone(),
                coverage: None,
            });
    }
    // Program-scope accessed range per variable, [min,max]-reduced over
    // threads and bins by the index (addresses are comparable within one
    // run), then normalized to the run's extent.
    for rec in &p.vars {
        let merged = engine
            .ranges_of(rec.id)
            .iter()
            .filter(|(k, _)| k.scope == RangeScope::Program)
            .fold(None::<RangeStat>, |acc, (_, s)| match acc {
                Some(mut a) => {
                    a.merge(s);
                    Some(a)
                }
                None => Some(*s),
            });
        let Some(s) = merged else { continue };
        let extent = rec.bytes.max(1) as f64;
        let lo = s.min_addr.saturating_sub(rec.addr) as f64 / extent;
        let hi = s.max_addr.saturating_sub(rec.addr) as f64 / extent;
        if let Some(acc) = vars.get_mut(&names.intern(&rec.name)) {
            acc.coverage = Some(match acc.coverage {
                Some((l, h)) => (l.min(lo), h.max(hi)),
                None => (lo, hi),
            });
        }
    }
    Partial {
        totals: idx.totals().clone(),
        domains: p.domains,
        vars,
    }
}

/// Merge every profile in the set — the store's batch analysis step,
/// expressed as one [`par_fold`] over the engines.
pub fn aggregate(profiles: &[Arc<StoredProfile>]) -> CrossRunAggregate {
    let names = SymbolTable::new();
    let merged = par_fold(
        profiles,
        Partial::empty,
        |sp| summarize(sp, &names),
        Partial::absorb,
    );
    let mut vars: Vec<VarAggregate> = merged.vars.into_values().collect();
    vars.sort_by(|a, b| {
        (b.metrics.latency_remote, b.metrics.m_remote)
            .cmp(&(a.metrics.latency_remote, a.metrics.m_remote))
            .then_with(|| a.name.cmp(&b.name))
    });
    let lpi_numa = merged.totals.lpi_numa();
    CrossRunAggregate {
        runs: profiles.len(),
        domains: merged.domains,
        totals: merged.totals,
        lpi_numa,
        vars,
    }
}

impl CrossRunAggregate {
    /// Textual rendering — the viewer pane for the pooled set.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cross-run aggregate: {} run(s), {} variable(s), {} domain(s)\n",
            self.runs,
            self.vars.len(),
            self.domains
        ));
        match self.lpi_numa {
            Some(lpi) => out.push_str(&format!("pooled lpi_NUMA = {lpi:.3} cycles/instruction\n")),
            None => out.push_str("pooled lpi_NUMA unavailable (no latency capability)\n"),
        }
        out.push_str(&format!(
            "pooled remote fraction = {:.1}%; domain imbalance ×{:.2}\n\n",
            self.totals.remote_fraction() * 100.0,
            self.totals.domain_imbalance()
        ));
        out.push_str(&format!(
            "{:<24} {:>6} {:>5} {:>12} {:>12} {:>8}  {}\n",
            "variable", "kind", "runs", "NUMA_MATCH", "NUMA_MISMATCH", "rem.lat", "coverage"
        ));
        for v in &self.vars {
            let coverage = match v.coverage {
                Some((lo, hi)) => format!("[{lo:.2}, {hi:.2}]"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<24} {:>6} {:>5} {:>12} {:>12} {:>8}  {}\n",
                v.name,
                v.kind.name(),
                v.runs_seen,
                v.metrics.m_local,
                v.metrics.m_remote,
                v.metrics.latency_remote,
                coverage
            ));
        }
        out
    }

    /// The `n` hottest variables with their cross-run remote share.
    pub fn top_variables(&self, n: usize) -> String {
        let weight = |m: &MetricSet| {
            if m.latency_remote > 0 {
                m.latency_remote
            } else {
                m.m_remote
            }
        };
        let total: u64 = self.vars.iter().map(|v| weight(&v.metrics)).sum();
        let total = total.max(1);
        let mut out = format!("top {} variables across {} run(s)\n", n, self.runs);
        for (i, v) in self.vars.iter().take(n).enumerate() {
            out.push_str(&format!(
                "#{} {:<24} [{:<6}] {:>5.1}% of pooled remote cost ({} run(s))\n",
                i + 1,
                v.name,
                v.kind.name(),
                weight(&v.metrics) as f64 / total as f64 * 100.0,
                v.runs_seen
            ));
        }
        out
    }
}
