//! Seed a JSON-era (persist v2) data directory: a WAL whose header
//! says version 2 and whose profile records are plain canonical JSON,
//! exactly what daemons wrote before the binary codec landed. CI's
//! mixed-format crash-recovery smoke uses it to prove a binary build
//! replays an old directory unchanged — same content ids, same
//! aggregate — before compaction migrates it forward.
//!
//! ```text
//! cargo run -p numa-store --example seed_json_wal -- DIR PROFILE.json...
//! ```

use numa_profiler::NumaProfile;
use numa_store::{fnv1a, wal};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = PathBuf::from(
        args.next()
            .expect("usage: seed_json_wal DIR PROFILE.json..."),
    );
    std::fs::create_dir_all(&dir).expect("create data dir");

    // v2-era header: magic, version 2 (not the current build's
    // PERSIST_VERSION), zero reserved bytes.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&wal::WAL_MAGIC);
    bytes.extend_from_slice(&2u16.to_be_bytes());
    bytes.extend_from_slice(&[0, 0]);

    let mut records = 0u64;
    for path in args {
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("cannot read {path}: {e}");
        });
        // Canonicalize exactly as ingest would have, so the content id
        // matches what a modern re-ingest of the same run computes.
        let profile = NumaProfile::from_json(&raw).unwrap_or_else(|e| {
            panic!("cannot parse {path}: {e}");
        });
        let canonical = profile.to_json();
        bytes.extend_from_slice(&wal::encode_record(
            &path,
            &canonical,
            fnv1a(canonical.as_bytes()),
        ));
        records += 1;
    }
    let out = wal::wal_path(&dir);
    std::fs::write(&out, bytes).expect("write wal");
    eprintln!(
        "seed_json_wal: wrote {records} JSON-era record(s) to {}",
        out.display()
    );
}
