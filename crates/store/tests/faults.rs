//! Fault-injection matrix for the durability stack.
//!
//! Each case derives a deterministic fault schedule ([`FaultSpec`]), a
//! workload plan (one-shot ingests, streamed sessions, explicit
//! compactions), and an optional kill point from one seed, runs the
//! plan against a store whose storage injects those faults, and then
//! recovers the data directory with clean storage. The contract under
//! test is exact:
//!
//! * every operation that was **acknowledged `Ok` is recovered** —
//!   same profile count, same set hash, same aggregate text as an
//!   in-memory oracle that applied exactly the acked operations;
//! * every operation that **returned an error is cleanly absent** —
//!   a failed ingest never resurfaces after a restart;
//! * no schedule panics, wedges, or makes recovery itself fail.
//!
//! Alongside the matrix sit targeted regression tests for the bugs the
//! harness flushed out: the missing directory fsyncs around the
//! snapshot rename and WAL creation, the unvalidated `body_len`
//! allocation in the record scanner, the group-commit error path, and
//! the WAL-reset bookkeeping desync that lost acknowledged records
//! after a failed compaction.

use numa_faults::{FaultSpec, FaultyStorage, RecordingStorage, StdStorage, Storage};
use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::stream::{assemble, split_profile, ChunkPayload};
use numa_store::wal::{scan_file, wal_path, FILE_HEADER_LEN, WAL_MAGIC};
use numa_store::{PersistOptions, ProfileStore, StoreConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A small profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

/// Canonical JSON of four distinct profiles, generated once per test
/// process so every case ingests bit-identical content and cross-store
/// hash comparisons are meaningful.
fn corpus() -> &'static [String; 4] {
    static CORPUS: OnceLock<[String; 4]> = OnceLock::new();
    CORPUS.get_or_init(|| {
        [
            profile(1).to_json(),
            profile(2).to_json(),
            profile(3).to_json(),
            profile(4).to_json(),
        ]
    })
}

/// The same corpus as codec bytes: binary ops in a schedule ingest
/// content-identical profiles, so the JSON oracle stays exact.
fn bin_corpus() -> &'static [Vec<u8>; 4] {
    static BIN: OnceLock<[Vec<u8>; 4]> = OnceLock::new();
    BIN.get_or_init(|| {
        corpus()
            .iter()
            .map(|json| numa_codec::encode_profile(&NumaProfile::from_json(json).unwrap()))
            .collect::<Vec<_>>()
            .try_into()
            .unwrap()
    })
}

/// Fresh scratch dir per call, unique across tests and matrix cases.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "numa-faults-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config() -> StoreConfig {
    StoreConfig {
        cache_capacity: 16,
        ..StoreConfig::default()
    }
}

/// SplitMix64 — the same generator [`FaultSpec::seeded`] uses, kept
/// local so plans stay reproducible from the seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One step of a seeded workload. `bin` selects the binary codec path
/// (binary WAL records / binary chunk staging) so the matrix exercises
/// both persisted formats — and their mixtures — under faults.
#[derive(Clone, Copy, Debug)]
enum PlannedOp {
    /// One-shot ingest of `corpus()[idx]`.
    Ingest { idx: usize, bin: bool },
    /// Stream `corpus()[idx]` as `parts` chunks, then seal.
    Stream { idx: usize, parts: usize, bin: bool },
    /// Explicit flush: group commit + snapshot compaction.
    Flush,
}

fn plan_ops(rng: &mut u64) -> Vec<PlannedOp> {
    let n = 4 + (splitmix64(rng) % 5) as usize;
    (0..n)
        .map(|_| match splitmix64(rng) % 8 {
            0..=2 => PlannedOp::Ingest {
                idx: (splitmix64(rng) % 4) as usize,
                bin: splitmix64(rng).is_multiple_of(2),
            },
            3..=5 => PlannedOp::Stream {
                idx: (splitmix64(rng) % 4) as usize,
                parts: 1 + (splitmix64(rng) % 3) as usize,
                bin: splitmix64(rng).is_multiple_of(2),
            },
            _ => PlannedOp::Flush,
        })
        .collect()
}

/// Run one seeded schedule end to end and check the recovery contract.
///
/// Ops run sequentially and block on their acks, and the WAL size bound
/// is effectively infinite, so the only compactions are the plan's
/// explicit flushes — every op's outcome is deterministic and the
/// oracle (an in-memory store fed exactly the acked operations) is an
/// exact model. Racing ingest against background threshold compaction
/// is real concurrency and is exercised separately by the store's
/// existing concurrent tests.
fn run_schedule(seed: u64) {
    let mut rng = seed;
    let spec = FaultSpec::seeded(seed);
    let fsync = splitmix64(&mut rng).is_multiple_of(2);
    let plan = plan_ops(&mut rng);
    let kill_at = splitmix64(&mut rng)
        .is_multiple_of(2)
        .then(|| (splitmix64(&mut rng) as usize) % (plan.len() + 1));
    let dir = scratch("matrix");
    let storage = Arc::new(FaultyStorage::new(spec));
    let opts = PersistOptions {
        snapshot_wal_bytes: u64::MAX,
        fsync,
    };
    let oracle = ProfileStore::new();

    let opened = ProfileStore::open_durable_config_with(
        &dir,
        config(),
        opts,
        Arc::clone(&storage) as Arc<dyn Storage>,
    );
    // An open that faulted acked nothing; recovery must come up empty.
    if let Ok(store) = opened {
        let mut session = 0u64;
        for (i, op) in plan.iter().enumerate() {
            if kill_at == Some(i) {
                storage.kill();
            }
            let label = format!("op-{i}");
            match *op {
                PlannedOp::Ingest { idx, bin } => {
                    let acked = if bin {
                        store.ingest_binary(&label, &bin_corpus()[idx]).is_ok()
                    } else {
                        store.ingest_bytes(&label, &corpus()[idx]).is_ok()
                    };
                    if acked {
                        oracle.ingest_bytes(&label, &corpus()[idx]).unwrap();
                    }
                }
                PlannedOp::Stream { idx, parts, bin } => {
                    session += 1;
                    let p = NumaProfile::from_json(&corpus()[idx]).unwrap();
                    let chunks: Vec<ChunkPayload> = split_profile(&p, parts);
                    let staged = chunks.iter().enumerate().all(|(seq, chunk)| {
                        if bin {
                            store
                                .stage_chunk_binary(session, seq as u64, &chunk.to_binary())
                                .is_ok()
                        } else {
                            store
                                .stage_chunk(session, seq as u64, &chunk.to_json())
                                .is_ok()
                        }
                    });
                    if !staged {
                        // A client whose chunk was refused gives up; the
                        // sealless chunks already in the WAL must be
                        // dropped by replay.
                        store.discard_session(session);
                        continue;
                    }
                    let assembled = assemble(chunks).unwrap();
                    let json = assembled.to_json();
                    if store.commit_sealed(session, &label, assembled).is_ok() {
                        oracle.ingest_bytes(&label, &json).unwrap();
                    }
                }
                PlannedOp::Flush => {
                    // May fail under faults; a failed compaction must
                    // lose nothing (asserted by recovery below).
                    let _ = store.flush();
                }
            }
        }
        if kill_at == Some(plan.len()) {
            storage.kill();
        }
        drop(store);
    }

    // Recover with clean storage: exactly the acked set, nothing else.
    let recovered = ProfileStore::open_durable_config(&dir, config(), PersistOptions::default())
        .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    assert_eq!(
        recovered.len(),
        oracle.len(),
        "seed {seed} (spec {spec:?}, plan {plan:?}, kill {kill_at:?}): \
         recovered {} profile(s), oracle has {}",
        recovered.len(),
        oracle.len()
    );
    assert_eq!(
        recovered.set_hash(),
        oracle.set_hash(),
        "seed {seed} (spec {spec:?}, plan {plan:?}, kill {kill_at:?}): set hash mismatch"
    );
    if !oracle.is_empty() {
        assert_eq!(
            recovered.aggregate().unwrap().text(),
            oracle.aggregate().unwrap().text(),
            "seed {seed}: aggregate text mismatch"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// The matrix: 256 explicit seeds (split so `cargo test` runs the
// quarters in parallel) plus 64 proptest-drawn seeds from a disjoint
// range — ≥300 schedules per run, every one replayable from its seed.

#[test]
fn fault_matrix_seeds_000_063() {
    for seed in 0..64 {
        run_schedule(seed);
    }
}

#[test]
fn fault_matrix_seeds_064_127() {
    for seed in 64..128 {
        run_schedule(seed);
    }
}

#[test]
fn fault_matrix_seeds_128_191() {
    for seed in 128..192 {
        run_schedule(seed);
    }
}

#[test]
fn fault_matrix_seeds_192_255() {
    for seed in 192..256 {
        run_schedule(seed);
    }
}

proptest! {
    #[test]
    fn fault_matrix_proptest_seeds(seed in 1_000u64..100_000) {
        run_schedule(seed);
    }
}

// ---------------------------------------------------------------------
// Regression: unvalidated body_len in the record scanner
// ---------------------------------------------------------------------

/// A record header whose `body_len` claims more bytes than the file
/// holds must be treated as a torn tail — the scanner clamps against
/// the remaining file size *before* allocating the body buffer, so a
/// four-byte corruption can never become a multi-gigabyte allocation.
#[test]
fn oversized_body_len_is_torn_tail_not_allocation() {
    let dir = scratch("bodylen");
    std::fs::create_dir_all(&dir).unwrap();
    let path = wal_path(&dir);

    // Valid header + one intact record + a bogus header claiming ~4 GiB.
    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    store.ingest_bytes("keep", &corpus()[0]).unwrap();
    drop(store);
    let intact = std::fs::metadata(&path).unwrap().len();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&(u32::MAX - 0xFF).to_be_bytes()); // body_len
    bytes.extend_from_slice(&[0u8; 8]); // body_fnv (never checked)
    bytes.extend_from_slice(b"tiny"); // far fewer bytes than claimed
    std::fs::write(&path, &bytes).unwrap();

    let scan = scan_file(&path, WAL_MAGIC).unwrap();
    assert_eq!(scan.entries.len(), 1);
    assert_eq!(scan.valid_len, intact);
    assert_eq!(scan.truncated_bytes, 12 + 4);

    // Recovery keeps the intact prefix and stays writable.
    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    assert_eq!(store.len(), 1);
    store.ingest_bytes("after", &corpus()[1]).unwrap();
    drop(store);
    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    assert_eq!(store.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Same corruption with nothing intact before it: the whole file past
/// the header is damage, and recovery starts empty.
#[test]
fn oversized_body_len_on_first_record_recovers_empty() {
    let dir = scratch("bodylen0");
    std::fs::create_dir_all(&dir).unwrap();
    let path = wal_path(&dir);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"HPWL\x00\x02\x00\x00");
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.extend_from_slice(&[0u8; 8]);
    std::fs::write(&path, &bytes).unwrap();
    let scan = scan_file(&path, WAL_MAGIC).unwrap();
    assert!(scan.entries.is_empty());
    assert_eq!(scan.valid_len, FILE_HEADER_LEN);
    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    assert_eq!(store.len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Regression: directory fsyncs around snapshot rename and WAL creation
// ---------------------------------------------------------------------

/// The compaction sequence must be: sync the snapshot tmp file → rename
/// it over the live snapshot → fsync the data directory → only then
/// truncate the WAL. Without the directory fsync in that position a
/// power loss can resurrect the *old* snapshot next to an
/// already-empty WAL, silently dropping acknowledged records. Creating
/// a fresh WAL likewise must sync the file and its directory before
/// any append can be acknowledged.
#[test]
fn snapshot_rename_is_dir_synced_before_wal_truncate() {
    let dir = scratch("order");
    let rec = Arc::new(RecordingStorage::new(Arc::new(StdStorage)));
    let store = ProfileStore::open_durable_config_with(
        &dir,
        config(),
        PersistOptions::default(),
        Arc::clone(&rec) as Arc<dyn Storage>,
    )
    .unwrap();
    store.ingest_bytes("a", &corpus()[0]).unwrap();
    store.flush().unwrap();
    drop(store);

    let ops = rec.ops();
    let pos = |needle: &str| {
        ops.iter()
            .position(|op| op.starts_with(needle))
            .unwrap_or_else(|| panic!("no {needle:?} in {ops:?}"))
    };
    // Fresh-WAL creation: file write → file sync → directory sync.
    let wal_header = pos("write(wal.log, 8)");
    let wal_sync = pos("sync_data(wal.log)");
    let first_dir_sync = pos("sync_dir");
    assert!(
        wal_header < wal_sync && wal_sync < first_dir_sync,
        "{ops:?}"
    );
    // Compaction: tmp sync → rename → dir sync → WAL truncate.
    let tmp_sync = pos("sync_data(snapshot.bin.tmp)");
    let rename = pos("rename(snapshot.bin.tmp -> snapshot.bin)");
    let dir_sync = ops
        .iter()
        .enumerate()
        .position(|(i, op)| i > rename && op == "sync_dir")
        .unwrap_or_else(|| panic!("no sync_dir after rename in {ops:?}"));
    let truncate = pos(&format!("set_len(wal.log, {FILE_HEADER_LEN})"));
    assert!(
        tmp_sync < rename && rename < dir_sync && dir_sync < truncate,
        "{ops:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Regression: group-commit error path
// ---------------------------------------------------------------------

/// A WAL append that fails mid-group must fail that ingest with a typed
/// error and roll the log back to the committed prefix — never
/// ack-then-drop. Once the (one-shot) fault has passed, a retry of the
/// same ingest succeeds and everything recovers.
#[test]
fn failed_append_is_typed_rolled_back_and_retryable() {
    let dir = scratch("groupfail");
    // Write #1 is the WAL header at open; write #2 — the first record —
    // tears after 5 bytes, exactly once.
    let storage = Arc::new(FaultyStorage::new(FaultSpec {
        short_write: Some((2, 5)),
        ..FaultSpec::default()
    }));
    let store = ProfileStore::open_durable_config_with(
        &dir,
        config(),
        PersistOptions::default(),
        Arc::clone(&storage) as Arc<dyn Storage>,
    )
    .unwrap();

    let err = store.ingest_bytes("torn", &corpus()[0]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("not durable"), "unexpected error: {msg}");
    assert_eq!(store.len(), 0, "failed ingest must not stay visible");
    assert!(store.persist_stats().io_errors >= 1);
    // The torn prefix was truncated away: the log is a bare header.
    assert_eq!(
        std::fs::metadata(wal_path(&dir)).unwrap().len(),
        FILE_HEADER_LEN
    );

    // The schedule only tears write #2: the retry goes through.
    store.ingest_bytes("torn", &corpus()[0]).unwrap();
    assert_eq!(store.len(), 1);
    drop(store);
    let scan = scan_file(&wal_path(&dir), WAL_MAGIC).unwrap();
    assert_eq!(scan.entries.len(), 1);
    assert_eq!(scan.truncated_bytes, 0);
    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(&*store.resolve("torn").unwrap().label, "torn");
    std::fs::remove_dir_all(&dir).ok();
}

/// Disk-full: every ingest past the budget fails with the typed
/// persistence error, already-acked profiles stay intact, and the store
/// keeps answering queries.
#[test]
fn enospc_fails_ingest_keeps_serving_and_acked_data() {
    let dir = scratch("enospc");
    // Budget: header + first record + a sliver, so ingest #1 commits
    // and ingest #2 hits ENOSPC.
    let first = numa_store::wal::encode_record(
        "full-0",
        &corpus()[0],
        numa_store::ProfileId::of(&NumaProfile::from_json(&corpus()[0]).unwrap())
            .0
             .0,
    );
    let storage = Arc::new(FaultyStorage::new(FaultSpec {
        enospc_after: Some(FILE_HEADER_LEN + first.len() as u64 + 16),
        ..FaultSpec::default()
    }));
    let store = ProfileStore::open_durable_config_with(
        &dir,
        config(),
        PersistOptions::default(),
        Arc::clone(&storage) as Arc<dyn Storage>,
    )
    .unwrap();
    store.ingest_bytes("full-0", &corpus()[0]).unwrap();
    let err = store.ingest_bytes("full-1", &corpus()[1]).unwrap_err();
    assert!(err.to_string().contains("not durable"), "{err}");
    // Still serving: the acked profile resolves and aggregates.
    assert_eq!(store.len(), 1);
    assert!(store.resolve("full-0").is_ok());
    assert!(!store.aggregate().unwrap().text().is_empty());
    drop(store);
    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    assert_eq!(store.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Regression: failed compaction — poisoned sessions and WAL bookkeeping
// ---------------------------------------------------------------------

/// A compaction that resets the WAL but cannot re-stage an open
/// session's chunks poisons that session: its later seal is refused and
/// the store falls back to persisting the assembled profile as an
/// ordinary record. Appends acknowledged *after* the failed compaction
/// must also survive — the WAL writer's bookkeeping has to follow the
/// truncated file, not the failed fsync.
#[test]
fn failed_compaction_poisons_session_and_keeps_later_appends() {
    let dir = scratch("poison");
    let p = NumaProfile::from_json(&corpus()[0]).unwrap();
    let chunks: Vec<ChunkPayload> = split_profile(&p, 2);
    // With fsync on, the sync sequence is: WAL create file sync + dir
    // sync (2), one group commit per staged chunk (chunks.len()), then
    // the flush's compaction: snapshot tmp sync + dir sync (2), WAL
    // reset sync. Failing that last one makes the compaction fail
    // *after* the WAL was truncated — the staged chunks are gone.
    let storage = Arc::new(FaultyStorage::new(FaultSpec {
        fail_sync: Some(2 + chunks.len() as u64 + 2 + 1),
        ..FaultSpec::default()
    }));
    let store = ProfileStore::open_durable_config_with(
        &dir,
        config(),
        PersistOptions {
            snapshot_wal_bytes: u64::MAX,
            fsync: true,
        },
        Arc::clone(&storage) as Arc<dyn Storage>,
    )
    .unwrap();

    for (seq, chunk) in chunks.iter().enumerate() {
        store.stage_chunk(7, seq as u64, &chunk.to_json()).unwrap();
    }
    assert!(store.flush().is_err(), "sync 6 must fail this compaction");

    // The seal is refused (chunks lost), so commit_sealed falls back to
    // an ordinary profile record — and still acknowledges.
    let (_, added) = store
        .commit_sealed(7, "streamed", assemble(chunks).unwrap())
        .unwrap();
    assert!(added);
    // An ordinary ingest after the failed compaction must be durable.
    store.ingest_bytes("later", &corpus()[1]).unwrap();
    drop(store);

    let store =
        ProfileStore::open_durable_config(&dir, config(), PersistOptions::default()).unwrap();
    assert_eq!(store.len(), 2, "fallback + later ingest both recovered");
    assert_eq!(&*store.resolve("streamed").unwrap().label, "streamed");
    assert_eq!(&*store.resolve("later").unwrap().label, "later");
    // It recovered as an ordinary record, not a sealed session.
    assert_eq!(store.persist_stats().sessions_recovered, 0);
    std::fs::remove_dir_all(&dir).ok();
}
