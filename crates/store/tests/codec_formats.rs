//! Cross-format store behavior: binary-codec ingestion dedups against
//! JSON ingestion of the same content, JSON-era (persist v1/v2) data
//! directories replay under the binary build, and `ingest_dir` keeps
//! non-UTF-8 file names distinguishable.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::wal::{scan_file, wal_path, WalEntry, SNAPSHOT_MAGIC, WAL_MAGIC};
use numa_store::{fnv1a, PersistOptions, ProfileStore, StoreError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = std::sync::Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("q", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("kernel._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

/// Canonical JSON of three distinct profiles, generated once per test
/// process (sampling is interval-randomized, so regenerating would not
/// reproduce the same content).
fn corpus() -> &'static [String; 3] {
    static CORPUS: OnceLock<[String; 3]> = OnceLock::new();
    CORPUS.get_or_init(|| {
        [
            profile(1).to_json(),
            profile(2).to_json(),
            profile(3).to_json(),
        ]
    })
}

fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "numa-fmt-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn open(dir: &Path) -> ProfileStore {
    ProfileStore::open_durable(dir, 16, PersistOptions::default()).expect("open durable store")
}

#[test]
fn binary_ingest_dedups_with_json_and_shares_one_id() {
    let store = ProfileStore::new();
    let p = NumaProfile::from_json(&corpus()[0]).unwrap();
    let bytes = numa_codec::encode_profile(&p);

    let (json_id, added) = store.ingest_bytes("as-json", &corpus()[0]).unwrap();
    assert!(added);
    // The same content arriving as codec bytes is the same profile:
    // identity stays defined over the canonical JSON.
    let (bin_id, added) = store.ingest_binary("as-binary", &bytes).unwrap();
    assert!(!added);
    assert_eq!(json_id, bin_id);
    assert_eq!(store.len(), 1);

    // Queries against a binary-only ingest answer identically to the
    // JSON ingest of the same profile (the engine consumes the decoded
    // scalar columns).
    let fresh = ProfileStore::new();
    let (id2, added) = fresh.ingest_binary("bin-only", &bytes).unwrap();
    assert!(added);
    assert_eq!(id2, json_id);
    assert_eq!(
        fresh.aggregate().unwrap().text(),
        store.aggregate().unwrap().text()
    );
}

#[test]
fn binary_ingest_rejects_garbage_with_typed_parse_error() {
    let store = ProfileStore::new();
    let err = store.ingest_binary("junk", b"not a container").unwrap_err();
    assert!(
        matches!(&err, StoreError::Parse { label, .. } if label == "junk"),
        "{err:?}"
    );
    assert_eq!(store.len(), 0);
    assert_eq!(store.stats().parse_failures, 1);
}

#[test]
fn binary_ingests_replay_across_reopen() {
    let dir = scratch("bin-reopen");
    let oracle = ProfileStore::new();
    for (i, json) in corpus().iter().enumerate() {
        oracle.ingest_bytes(&format!("run-{i}"), json).unwrap();
    }
    {
        let store = open(&dir);
        for (i, json) in corpus().iter().enumerate() {
            let p = NumaProfile::from_json(json).unwrap();
            let bytes = numa_codec::encode_profile(&p);
            store.ingest_binary(&format!("run-{i}"), &bytes).unwrap();
        }
        assert_eq!(store.set_hash(), oracle.set_hash());
        // No flush: replay must come from binary WAL records.
    }
    let store = open(&dir);
    assert_eq!(store.len(), 3);
    assert_eq!(store.set_hash(), oracle.set_hash());
    assert_eq!(&*store.resolve("run-2").unwrap().label, "run-2");
    assert_eq!(
        store.aggregate().unwrap().text(),
        oracle.aggregate().unwrap().text()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_era_data_dir_replays_and_compacts_forward() {
    let dir = scratch("v2-era");
    std::fs::create_dir_all(&dir).unwrap();
    // Hand-write a persist-v2 WAL: old header version, JSON records —
    // exactly what a pre-binary build left behind.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&WAL_MAGIC);
    bytes.extend_from_slice(&2u16.to_be_bytes());
    bytes.extend_from_slice(&[0, 0]);
    for (i, json) in corpus().iter().enumerate().take(2) {
        bytes.extend_from_slice(&numa_store::wal::encode_record(
            &format!("legacy-{i}"),
            json,
            fnv1a(json.as_bytes()),
        ));
    }
    std::fs::write(wal_path(&dir), &bytes).unwrap();

    let oracle = ProfileStore::new();
    for (i, json) in corpus().iter().enumerate().take(2) {
        oracle.ingest_bytes(&format!("legacy-{i}"), json).unwrap();
    }

    {
        let store = open(&dir);
        assert_eq!(store.len(), 2);
        assert_eq!(store.set_hash(), oracle.set_hash());
        let p = store.persist_stats();
        assert_eq!(p.wal_records_replayed, 2);
        assert_eq!(p.wal_truncated_bytes, 0);
        // New ingests append v3 records to the v2-header file; the
        // record kinds are self-describing, so the mix replays.
        store.ingest_bytes("fresh", &corpus()[2]).unwrap();
        oracle.ingest_bytes("fresh", &corpus()[2]).unwrap();
    }
    {
        let store = open(&dir);
        assert_eq!(store.len(), 3);
        assert_eq!(store.set_hash(), oracle.set_hash());
        // Compaction rewrites the whole corpus forward as binary
        // snapshot rows.
        store.flush().unwrap();
    }
    let snap = scan_file(&numa_store::snapshot::snapshot_path(&dir), SNAPSHOT_MAGIC).unwrap();
    assert_eq!(snap.entries.len(), 3);
    assert!(snap
        .entries
        .iter()
        .all(|e| matches!(e, WalEntry::ProfileBin(_))));
    let store = open(&dir);
    assert_eq!(store.len(), 3);
    assert_eq!(store.set_hash(), oracle.set_hash());
    assert_eq!(store.persist_stats().snapshot_records_loaded, 3);
    assert_eq!(
        store.aggregate().unwrap().text(),
        oracle.aggregate().unwrap().text()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn ingest_dir_disambiguates_non_utf8_labels() {
    use std::ffi::OsStr;
    use std::os::unix::ffi::OsStrExt;

    let dir = scratch("nonutf8");
    std::fs::create_dir_all(&dir).unwrap();
    // Two distinct non-UTF-8 names whose lossy conversion collides on
    // "run-\u{FFFD}.json".
    let name_a = OsStr::from_bytes(b"run-\xFF.json");
    let name_b = OsStr::from_bytes(b"run-\xFE.json");
    std::fs::write(dir.join(name_a), &corpus()[0]).unwrap();
    std::fs::write(dir.join(name_b), &corpus()[1]).unwrap();

    let store = ProfileStore::new();
    let report = store.ingest_dir(&dir).unwrap();
    assert_eq!(report.added.len(), 2, "{report:?}");
    assert!(report.rejected.is_empty() && report.io_errors.is_empty());

    let labels: Vec<String> = store
        .entries()
        .iter()
        .map(|e| e.label.to_string())
        .collect();
    assert_eq!(labels.len(), 2);
    // The labels must differ — the raw-name hash suffix disambiguates
    // what lossy conversion collapsed.
    assert_ne!(labels[0], labels[1]);
    for label in &labels {
        assert!(
            label.starts_with("run-\u{FFFD}.json#"),
            "unexpected label {label:?}"
        );
        // Each label resolves to exactly one profile (no ambiguity).
        store.resolve(label).unwrap();
    }
    // A plain UTF-8 name keeps its unsuffixed label.
    std::fs::write(dir.join("plain.json"), &corpus()[2]).unwrap();
    store.ingest_dir(&dir).unwrap();
    assert_eq!(&*store.resolve("plain.json").unwrap().label, "plain.json");
    std::fs::remove_dir_all(&dir).ok();
}
