//! Sharded-store tests: any interleaving of concurrent `ingest_batch` +
//! pooled `query` + `clear_cache` across shards must leave the store
//! indistinguishable (set hash and aggregate text) from a single-shard
//! oracle that applied the same ingests sequentially — sharding is a
//! performance layout, never a semantic change.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::{ProfileStore, StoreConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = std::sync::Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

/// Canonical JSON of four distinct profiles, generated once per test
/// process (profiler sampling is randomized, so the same `rounds` twice
/// would produce different content).
fn corpus() -> &'static [String; 4] {
    static CORPUS: OnceLock<[String; 4]> = OnceLock::new();
    CORPUS.get_or_init(|| {
        [
            profile(1).to_json(),
            profile(2).to_json(),
            profile(3).to_json(),
            profile(4).to_json(),
        ]
    })
}

fn sharded(shards: usize) -> ProfileStore {
    ProfileStore::with_config(StoreConfig {
        shards,
        ..StoreConfig::default()
    })
}

proptest! {
    /// Ops are `(kind, profile index)`: kind 0 = ingest_batch of that
    /// profile, 1 = pooled aggregate query, 2 = clear_cache. The op list
    /// is dealt round-robin to `threads` OS threads running against an
    /// 8-shard store; the oracle replays the ingests sequentially into a
    /// single-shard store.
    #[test]
    fn concurrent_ops_match_single_shard_oracle(
        ops in prop::collection::vec((0usize..3, 0usize..4), 1..16),
        threads in 1usize..4,
    ) {
        let corpus = corpus();
        let store = sharded(8);
        std::thread::scope(|s| {
            for t in 0..threads {
                let ops = &ops;
                let store = &store;
                s.spawn(move || {
                    for (kind, idx) in ops.iter().skip(t).step_by(threads) {
                        match kind {
                            0 => {
                                let inputs =
                                    vec![(format!("run-{idx}"), corpus[*idx].clone())];
                                store.ingest_batch(&inputs);
                            }
                            1 => {
                                // EmptyStore is legal mid-interleaving.
                                let _ = store.aggregate();
                            }
                            _ => store.clear_cache(),
                        }
                    }
                });
            }
        });

        let oracle = sharded(1);
        for (kind, idx) in &ops {
            if *kind == 0 {
                oracle
                    .ingest_bytes(&format!("run-{idx}"), &corpus[*idx])
                    .expect("corpus parses");
            }
        }
        prop_assert_eq!(store.len(), oracle.len());
        prop_assert_eq!(store.set_hash(), oracle.set_hash());
        if !store.is_empty() {
            prop_assert_eq!(
                store.aggregate().expect("non-empty").text(),
                oracle.aggregate().expect("non-empty").text()
            );
        }
    }
}

#[test]
fn shard_count_rounds_to_power_of_two_and_clamps() {
    assert_eq!(sharded(1).shard_count(), 1);
    assert_eq!(sharded(5).shard_count(), 8);
    assert_eq!(sharded(8).shard_count(), 8);
    assert_eq!(sharded(0).shard_count(), 1);
    assert_eq!(sharded(10_000).shard_count(), 256);
}

#[test]
fn listings_preserve_insertion_order_across_shards() {
    let corpus = corpus();
    let store = sharded(8);
    for (i, json) in corpus.iter().enumerate() {
        store
            .ingest_bytes(&format!("run-{i}"), json)
            .expect("parses");
    }
    let labels: Vec<String> = store
        .entries()
        .iter()
        .map(|e| e.label.to_string())
        .collect();
    assert_eq!(labels, ["run-0", "run-1", "run-2", "run-3"]);
    // ids() and entries() agree on the order.
    let ids: Vec<_> = store.entries().iter().map(|e| e.id).collect();
    assert_eq!(ids, store.ids());
}

#[test]
fn shard_stats_account_for_every_profile_and_ingest() {
    let corpus = corpus();
    let store = sharded(8);
    for (i, json) in corpus.iter().enumerate() {
        store
            .ingest_bytes(&format!("run-{i}"), json)
            .expect("parses");
    }
    // Re-ingest one duplicate: counted as a dedup hit, not a shard ingest.
    store.ingest_bytes("dup", &corpus[0]).expect("parses");

    let stats = store.stats();
    assert_eq!(stats.shards.len(), 8);
    assert_eq!(stats.shards.iter().map(|s| s.profiles).sum::<usize>(), 4);
    assert_eq!(stats.shards.iter().map(|s| s.ingests).sum::<u64>(), 4);
    assert_eq!(stats.deduplicated, 1);
    let rendered = stats.render();
    assert!(rendered.contains("shards: 8"), "{rendered}");
    assert!(rendered.contains("shard  0:"), "{rendered}");
}

#[test]
fn single_shard_matches_default_semantics() {
    let corpus = corpus();
    let one = sharded(1);
    let eight = sharded(8);
    for (i, json) in corpus.iter().enumerate() {
        one.ingest_bytes(&format!("run-{i}"), json).expect("parses");
    }
    // Reverse order into the 8-shard store: set hash is order- and
    // layout-insensitive.
    for (i, json) in corpus.iter().enumerate().rev() {
        eight
            .ingest_bytes(&format!("run-{i}"), json)
            .expect("parses");
    }
    assert_eq!(one.set_hash(), eight.set_hash());
    assert_eq!(
        one.aggregate().expect("non-empty").text(),
        eight.aggregate().expect("non-empty").text()
    );
}
