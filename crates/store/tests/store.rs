//! Integration tests: ingestion, dedup, cross-run merging, and the memo
//! cache contract.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::{ProfileStore, Query, StoreError};
use std::sync::Arc;

/// A small deterministic profile; `rounds` varies the content (and thus
/// the content hash) between "runs".
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
    let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 20;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 8;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

#[test]
fn ingest_dedups_by_content() {
    let store = ProfileStore::new();
    let p = profile(2);
    let (id1, added1) = store.ingest_profile("run-a", p.clone()).unwrap();
    let (id2, added2) = store.ingest_profile("run-a-again", p).unwrap();
    assert!(added1);
    assert!(!added2, "identical content must dedup");
    assert_eq!(id1, id2);
    assert_eq!(store.len(), 1);
    assert_eq!(store.stats().deduplicated, 1);
}

#[test]
fn batch_ingest_reports_rejects_without_aborting() {
    let store = ProfileStore::new();
    let inputs = vec![
        ("good-1".to_string(), profile(1).to_json()),
        ("bad".to_string(), "{\"mechanism\":".to_string()),
        ("good-2".to_string(), profile(2).to_json()),
    ];
    let report = store.ingest_batch(&inputs);
    assert_eq!(report.added.len(), 2);
    assert_eq!(report.rejected.len(), 1);
    assert_eq!(report.rejected[0].0, "bad");
    assert_eq!(store.len(), 2);
    assert_eq!(store.stats().parse_failures, 1);
}

#[test]
fn set_hash_ignores_ingestion_order() {
    let a = profile(1).to_json();
    let b = profile(2).to_json();
    let s1 = ProfileStore::new();
    s1.ingest_batch(&[("a".into(), a.clone()), ("b".into(), b.clone())]);
    let s2 = ProfileStore::new();
    s2.ingest_batch(&[("b".into(), b), ("a".into(), a)]);
    assert_eq!(s1.set_hash(), s2.set_hash());
}

#[test]
fn aggregate_pools_metrics_across_runs() {
    let store = ProfileStore::new();
    let p1 = profile(1);
    let p2 = profile(3);
    let expected_remote: u64 = [&p1, &p2]
        .iter()
        .flat_map(|p| p.threads.iter())
        .map(|t| t.totals.m_remote)
        .sum();
    store.ingest_profile("r1", p1).unwrap();
    store.ingest_profile("r2", p2).unwrap();
    let artifact = store.aggregate().unwrap();
    let agg = artifact.as_aggregate().unwrap();
    assert_eq!(agg.runs, 2);
    assert_eq!(agg.totals.m_remote, expected_remote);
    // Both runs sampled the same variable name.
    let z = agg.vars.iter().find(|v| v.name == "z").unwrap();
    assert_eq!(z.runs_seen, 2);
    // The 8 threads sweep the whole variable, so pooled normalized
    // coverage spans ~[0, 1].
    let (lo, hi) = z.coverage.unwrap();
    assert!(lo < 0.05, "coverage starts at {lo}");
    assert!(hi > 0.9, "coverage ends at {hi}");
    // Pooled lpi is defined: IBS captures latency.
    assert!(agg.lpi_numa.is_some());
}

#[test]
fn aggregate_render_lists_variables() {
    let store = ProfileStore::new();
    store.ingest_profile("r1", profile(2)).unwrap();
    let text = store.aggregate().unwrap().text();
    assert!(text.contains("cross-run aggregate"));
    assert!(text.contains('z'));
}

#[test]
fn queries_memoize_and_count() {
    let store = ProfileStore::new();
    let (id, _) = store.ingest_profile("r1", profile(2)).unwrap();

    let cold = store.query(Query::TextReport(id)).unwrap();
    let s = store.cache_stats();
    assert_eq!((s.hits, s.misses, s.insertions), (0, 1, 1));

    let warm = store.query(Query::TextReport(id)).unwrap();
    let s = store.cache_stats();
    assert_eq!((s.hits, s.misses), (1, 1));
    assert!(
        Arc::ptr_eq(&cold, &warm),
        "warm hit must share the artifact"
    );
}

#[test]
fn ingestion_invalidates_pooled_queries() {
    let store = ProfileStore::new();
    store.ingest_profile("r1", profile(1)).unwrap();
    let before = store.aggregate().unwrap();
    assert_eq!(before.as_aggregate().unwrap().runs, 1);
    store.ingest_profile("r2", profile(2)).unwrap();
    // New set hash → new scope → miss, not a stale hit.
    let after = store.aggregate().unwrap();
    assert_eq!(after.as_aggregate().unwrap().runs, 2);
    let s = store.cache_stats();
    assert_eq!(s.hits, 0);
    assert_eq!(s.misses, 2);
}

#[test]
fn unknown_references_error_cleanly() {
    let store = ProfileStore::new();
    assert_eq!(store.aggregate().unwrap_err(), StoreError::EmptyStore);
    let (id, _) = store.ingest_profile("r1", profile(1)).unwrap();
    let bogus = numa_store::ProfileId(id.0 ^ 1);
    assert_eq!(
        store.query(Query::TextReport(bogus)).unwrap_err(),
        StoreError::UnknownProfile(bogus)
    );
    let missing_var = store.query(Query::AddressView {
        profile: id,
        var: "no_such_var".into(),
    });
    assert_eq!(
        missing_var.unwrap_err(),
        StoreError::UnknownVariable("no_such_var".into())
    );
}

#[test]
fn address_view_and_diff_render() {
    let store = ProfileStore::new();
    let (a, _) = store.ingest_profile("r1", profile(1)).unwrap();
    let (b, _) = store.ingest_profile("r2", profile(3)).unwrap();
    let view = store
        .query(Query::AddressView {
            profile: a,
            var: "z".into(),
        })
        .unwrap();
    assert!(view.text().contains("\"variable\": \"z\""));
    let diff = store
        .query(Query::Diff {
            before: a,
            after: b,
        })
        .unwrap();
    assert!(!diff.text().is_empty());
    let code = store
        .query(Query::CodeView {
            profile: a,
            min_share_permille: 10,
        })
        .unwrap();
    assert!(code.text().contains("calling context"));
}

#[test]
fn ingest_dir_loads_json_files() {
    let dir = std::env::temp_dir().join(format!("numa-store-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("a.json"), profile(1).to_json()).unwrap();
    std::fs::write(dir.join("b.json"), profile(2).to_json()).unwrap();
    std::fs::write(dir.join("ignored.txt"), "not a profile").unwrap();
    let store = ProfileStore::new();
    let report = store.ingest_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(report.added.len(), 2);
    assert!(report.rejected.is_empty());
    assert_eq!(store.len(), 2);
    assert!(store.resolve("a.json").is_ok());
}

#[test]
fn resolve_accepts_id_prefix_and_label() {
    let store = ProfileStore::new();
    let (id, _) = store.ingest_profile("baseline", profile(1)).unwrap();
    assert_eq!(store.resolve("baseline").unwrap().id, id);
    assert_eq!(store.resolve(&id.to_string()[..8]).unwrap().id, id);
    assert!(matches!(store.resolve("nope"), Err(StoreError::NoMatch(n)) if n == "nope"));
}

#[test]
fn resolve_reports_ambiguity_with_candidates() {
    let store = ProfileStore::new();
    // Same label on two distinct profiles: resolving by label is ambiguous.
    let (a, _) = store.ingest_profile("run", profile(1)).unwrap();
    let (b, _) = store.ingest_profile("run", profile(2)).unwrap();
    match store.resolve("run") {
        Err(StoreError::Ambiguous { needle, candidates }) => {
            assert_eq!(needle, "run");
            let ids: Vec<_> = candidates.iter().map(|(id, _)| *id).collect();
            assert!(ids.contains(&a) && ids.contains(&b));
            assert!(candidates.iter().all(|(_, label)| label == "run"));
        }
        Err(other) => panic!("expected Ambiguous, got {other:?}"),
        Ok(sp) => panic!("expected Ambiguous, resolved to {}", sp.id),
    }
    // A full 16-hex id always short-circuits the ambiguity.
    assert_eq!(store.resolve(&a.to_string()).unwrap().id, a);
    assert_eq!(store.resolve(&b.to_string()).unwrap().id, b);
}

#[test]
fn ingest_dir_records_unreadable_entries() {
    let dir = std::env::temp_dir().join(format!("numa-store-ioerr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("good.json"), profile(1).to_json()).unwrap();
    // A *directory* named like a profile triggers a read error on every
    // platform (even running as root, where permission bits are ignored).
    std::fs::create_dir_all(dir.join("bad.json")).unwrap();
    let store = ProfileStore::new();
    let report = store.ingest_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(report.added.len(), 1);
    assert_eq!(report.io_errors.len(), 1);
    assert!(report.io_errors[0].0.contains("bad.json"));
    assert_eq!(store.len(), 1);
}
