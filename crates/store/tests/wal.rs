//! Durability tests for the persistent store: reopen round-trips, WAL
//! compaction into snapshots, and fault injection — truncating the log
//! at arbitrary offsets and flipping arbitrary bytes must never panic
//! and must recover exactly the intact-record prefix.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::stream::{assemble, split_profile, ChunkPayload};
use numa_store::wal::{scan_file, wal_path, FILE_HEADER_LEN, WAL_MAGIC};
use numa_store::{PersistOptions, ProfileStore};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A small profile; `rounds` varies the content hash. Sampling inside
/// the simulated profiler is interval-randomized, so two calls with the
/// same `rounds` produce *different* content — tests that need the same
/// profile twice must serialize once and reuse the JSON (see [`corpus`]).
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = std::sync::Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

/// Canonical JSON of four distinct profiles, generated once per test
/// process so every test (and every proptest case) ingests bit-identical
/// content and cross-store hash comparisons are meaningful.
fn corpus() -> &'static [String; 4] {
    static CORPUS: OnceLock<[String; 4]> = OnceLock::new();
    CORPUS.get_or_init(|| {
        [
            profile(1).to_json(),
            profile(2).to_json(),
            profile(3).to_json(),
            profile(4).to_json(),
        ]
    })
}

/// Fresh scratch dir per call, unique across tests and proptest cases.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "numa-wal-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn open(dir: &Path, opts: PersistOptions) -> ProfileStore {
    ProfileStore::open_durable(dir, 16, opts).expect("open durable store")
}

#[test]
fn durable_store_round_trips_across_reopen() {
    let dir = scratch("reopen");
    let oracle = ProfileStore::new();
    {
        let store = open(&dir, PersistOptions::default());
        for (r, json) in corpus().iter().enumerate() {
            store.ingest_bytes(&format!("run-{r}"), json).unwrap();
            oracle.ingest_bytes(&format!("run-{r}"), json).unwrap();
        }
        assert!(store.is_durable());
        assert_eq!(store.set_hash(), oracle.set_hash());
        // No flush, no clean shutdown: everything must live in the WAL.
    }
    let store = open(&dir, PersistOptions::default());
    assert_eq!(store.len(), 4);
    assert_eq!(store.set_hash(), oracle.set_hash());
    let p = store.persist_stats();
    assert_eq!(p.wal_records_replayed, 4);
    assert_eq!(p.snapshot_records_loaded, 0);
    assert_eq!(p.wal_truncated_bytes, 0);
    // Labels survive the round trip too.
    assert_eq!(&*store.resolve("run-3").unwrap().label, "run-3");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flush_compacts_wal_into_snapshot() {
    let dir = scratch("flush");
    let oracle = ProfileStore::new();
    {
        let store = open(&dir, PersistOptions::default());
        store.ingest_bytes("a", &corpus()[0]).unwrap();
        store.ingest_bytes("b", &corpus()[1]).unwrap();
        oracle.ingest_bytes("a", &corpus()[0]).unwrap();
        oracle.ingest_bytes("b", &corpus()[1]).unwrap();
        store.flush().unwrap();
        assert!(store.persist_stats().snapshots_written >= 1);
    }
    // After a flush the WAL holds nothing but its header.
    let scan = scan_file(&wal_path(&dir), WAL_MAGIC).unwrap();
    assert!(scan.entries.is_empty());
    assert_eq!(scan.truncated_bytes, 0);

    let store = open(&dir, PersistOptions::default());
    assert_eq!(store.len(), 2);
    assert_eq!(store.set_hash(), oracle.set_hash());
    let p = store.persist_stats();
    assert_eq!(p.snapshot_records_loaded, 2);
    assert_eq!(p.wal_records_replayed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiny_threshold_compacts_automatically() {
    let dir = scratch("auto-compact");
    let opts = PersistOptions {
        snapshot_wal_bytes: 1, // every append crosses the threshold
        ..PersistOptions::default()
    };
    let store = open(&dir, opts);
    for (r, json) in corpus().iter().enumerate().take(3) {
        store.ingest_bytes(&format!("run-{r}"), json).unwrap();
    }
    assert!(store.persist_stats().snapshots_written >= 3);
    drop(store);
    let store = open(&dir, PersistOptions::default());
    assert_eq!(store.len(), 3);
    assert_eq!(store.persist_stats().snapshot_records_loaded, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_does_not_reappend_records() {
    let dir = scratch("no-reappend");
    {
        let store = open(&dir, PersistOptions::default());
        store.ingest_bytes("a", &corpus()[0]).unwrap();
    }
    let len_once = std::fs::metadata(wal_path(&dir)).unwrap().len();
    {
        // Reopen + replay must not grow the WAL (replayed inserts are
        // already durable).
        let store = open(&dir, PersistOptions::default());
        assert_eq!(store.len(), 1);
    }
    let len_twice = std::fs::metadata(wal_path(&dir)).unwrap().len();
    assert_eq!(len_once, len_twice);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_content_is_not_persisted_twice() {
    let dir = scratch("dedup");
    {
        let store = open(&dir, PersistOptions::default());
        store.ingest_bytes("a", &corpus()[0]).unwrap();
        store.ingest_bytes("a-again", &corpus()[0]).unwrap(); // same content hash
        assert_eq!(store.len(), 1);
    }
    let scan = scan_file(&wal_path(&dir), WAL_MAGIC).unwrap();
    assert_eq!(scan.entries.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sealed_sessions_replay_and_unsealed_are_dropped() {
    let dir = scratch("sessions");
    let oracle = ProfileStore::new();
    oracle.ingest_bytes("streamed", &corpus()[0]).unwrap();
    let a = NumaProfile::from_json(&corpus()[0]).unwrap();
    let b = NumaProfile::from_json(&corpus()[1]).unwrap();
    let a_chunks: Vec<String> = split_profile(&a, 2).iter().map(|c| c.to_json()).collect();
    let b_chunks: Vec<String> = split_profile(&b, 2).iter().map(|c| c.to_json()).collect();
    {
        let store = open(&dir, PersistOptions::default());
        for (seq, payload) in a_chunks.iter().enumerate() {
            store.stage_chunk(1, seq as u64, payload).unwrap();
        }
        // Session 2 stages two chunks but never seals: a dead client.
        for (seq, payload) in b_chunks.iter().enumerate().take(2) {
            store.stage_chunk(2, seq as u64, payload).unwrap();
        }
        let parts: Vec<ChunkPayload> = a_chunks
            .iter()
            .map(|p| ChunkPayload::from_json(p).unwrap())
            .collect();
        let (_, added) = store
            .commit_sealed(1, "streamed", assemble(parts).unwrap())
            .unwrap();
        assert!(added);
        // The sealed stream is byte-identical to one-shot ingest: same
        // set hash, and re-ingesting the original JSON dedups.
        assert_eq!(store.set_hash(), oracle.set_hash());
        let (_, again) = store.ingest_bytes("streamed", &corpus()[0]).unwrap();
        assert!(!again);
        // No flush: recovery must come from chunk + seal records.
    }
    let store = open(&dir, PersistOptions::default());
    assert_eq!(store.len(), 1);
    assert_eq!(store.set_hash(), oracle.set_hash());
    assert_eq!(&*store.resolve("streamed").unwrap().label, "streamed");
    assert_eq!(
        store.aggregate().unwrap().text(),
        oracle.aggregate().unwrap().text()
    );
    let p = store.persist_stats();
    assert_eq!(p.sessions_recovered, 1);
    assert_eq!(p.sessions_dropped, 1);
    assert_eq!(p.session_chunks_replayed, (a_chunks.len() + 2) as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_restages_open_session_chunks() {
    let dir = scratch("retain");
    let a = NumaProfile::from_json(&corpus()[0]).unwrap();
    let chunks: Vec<String> = split_profile(&a, 1).iter().map(|c| c.to_json()).collect();
    {
        let store = open(&dir, PersistOptions::default());
        for (seq, payload) in chunks.iter().enumerate() {
            store.stage_chunk(9, seq as u64, payload).unwrap();
        }
        // A compaction resets the WAL underneath the open session...
        store.ingest_bytes("oneshot", &corpus()[1]).unwrap();
        store.flush().unwrap();
        // ...but the seal that follows must still find its chunks on
        // replay, because compaction re-staged them into the fresh log.
        let parts: Vec<ChunkPayload> = chunks
            .iter()
            .map(|p| ChunkPayload::from_json(p).unwrap())
            .collect();
        let (_, added) = store
            .commit_sealed(9, "streamed", assemble(parts).unwrap())
            .unwrap();
        assert!(added);
    }
    let store = open(&dir, PersistOptions::default());
    assert_eq!(store.len(), 2);
    assert_eq!(&*store.resolve("streamed").unwrap().label, "streamed");
    let p = store.persist_stats();
    assert_eq!(p.sessions_recovered, 1);
    assert_eq!(p.sessions_dropped, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Ingest the first three corpus profiles one at a time, recording the
/// WAL length after each, so fault-injection tests know exactly where
/// record boundaries fall. Returns (per-record end offsets, per-prefix
/// set hashes) where `set_hashes[k]` covers the first `k` profiles.
fn build_wal(dir: &Path) -> (Vec<u64>, Vec<u64>) {
    let store = open(dir, PersistOptions::default());
    let oracle = ProfileStore::new();
    let mut ends = Vec::new();
    let mut hashes = vec![oracle.set_hash()];
    for (r, json) in corpus().iter().enumerate().take(3) {
        store.ingest_bytes(&format!("run-{r}"), json).unwrap();
        oracle.ingest_bytes(&format!("run-{r}"), json).unwrap();
        ends.push(std::fs::metadata(wal_path(dir)).unwrap().len());
        hashes.push(oracle.set_hash());
    }
    (ends, hashes)
}

proptest! {
    /// Chop the WAL at an arbitrary byte offset: recovery must never
    /// error and must yield exactly the records that fit entirely
    /// before the cut.
    #[test]
    fn truncation_recovers_intact_prefix(cut_permille in 0u64..1001) {
        let dir = scratch("trunc");
        let (ends, hashes) = build_wal(&dir);
        let full = *ends.last().unwrap();
        let cut = full * cut_permille / 1000;
        let bytes = std::fs::read(wal_path(&dir)).unwrap();
        std::fs::write(wal_path(&dir), &bytes[..cut as usize]).unwrap();

        let intact = ends.iter().filter(|&&e| e <= cut).count();
        let store = open(&dir, PersistOptions::default());
        prop_assert_eq!(store.len(), intact);
        prop_assert_eq!(store.set_hash(), hashes[intact]);
        let p = store.persist_stats();
        prop_assert_eq!(p.wal_records_replayed, intact as u64);
        // A cut inside the 8-byte file header invalidates the whole
        // file (all `cut` bytes are damage); otherwise damage is what
        // lies between the intact prefix and the cut.
        let intact_end = if intact == 0 { FILE_HEADER_LEN } else { ends[intact - 1] };
        let expect_damage = if cut < FILE_HEADER_LEN { cut } else { cut - intact_end };
        prop_assert_eq!(p.wal_truncated_bytes, expect_damage);

        // The reopened writer resumes from the intact prefix: a fresh
        // ingest after damage must survive the next reopen.
        store.ingest_bytes("after-damage", &corpus()[3]).unwrap();
        let expect = store.set_hash();
        drop(store);
        let store = open(&dir, PersistOptions::default());
        prop_assert_eq!(store.len(), intact + 1);
        prop_assert_eq!(store.set_hash(), expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flip one byte anywhere in the WAL: recovery must never panic,
    /// and any record at or after the flipped byte is discarded while
    /// everything before it survives.
    #[test]
    fn single_byte_corruption_recovers_prefix(pos_permille in 0u64..1000, xor in 1u16..256) {
        let dir = scratch("flip");
        let (ends, hashes) = build_wal(&dir);
        let full = *ends.last().unwrap();
        let pos = (full * pos_permille / 1000) as usize;
        let mut bytes = std::fs::read(wal_path(&dir)).unwrap();
        bytes[pos] ^= xor as u8;
        std::fs::write(wal_path(&dir), &bytes).unwrap();

        // Records strictly before the flipped byte are untouched; the
        // record containing it fails its checksum (FNV-1a maps a fixed
        // single-byte substitution to a different hash) or, if the flip
        // hits the file header, nothing replays at all.
        let store = open(&dir, PersistOptions::default());
        if (pos as u64) < FILE_HEADER_LEN {
            prop_assert_eq!(store.len(), 0);
            prop_assert_eq!(store.persist_stats().wal_truncated_bytes, full);
        } else {
            let intact = ends.iter().filter(|&&e| e <= pos as u64).count();
            prop_assert_eq!(store.len(), intact);
            prop_assert_eq!(store.set_hash(), hashes[intact]);
            let p = store.persist_stats();
            // Everything from the end of the intact prefix on is damage.
            let intact_end = if intact == 0 { FILE_HEADER_LEN } else { ends[intact - 1] };
            prop_assert_eq!(p.wal_truncated_bytes, full - intact_end);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
