//! Self-contained HTML report: the closest thing to the paper's
//! `hpcviewer` screenshots (Figure 3) that a terminal tool can emit.
//!
//! One file, no external assets: program summary, the hot-variable table,
//! an SVG address-centric plot per top variable (whole program and, when
//! a region dominates, the per-region drill-down), the merged
//! code-centric tree, and — if tracing was enabled — the remote-fraction
//! timeline.

use crate::analyzer::{Analyzer, ThreadRange};
use crate::pattern::classify;
use crate::report::{analyze, AnalysisReport};
use crate::view;
use numa_profiler::{RangeScope, VarId, LPI_THRESHOLD};
use std::fmt::Write as _;

/// Plot geometry.
const PLOT_W: f64 = 640.0;
const PLOT_H: f64 = 260.0;
const MARGIN: f64 = 36.0;

/// Escape text for HTML.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render one address-centric plot as inline SVG: x = thread index,
/// y = normalized address, one bar per thread spanning \[min,max\] — the
/// paper's Figure 3 upper-right pane.
pub fn svg_address_plot(ranges: &[ThreadRange], title: &str) -> String {
    let mut s = String::new();
    let n = ranges.iter().map(|r| r.tid + 1).max().unwrap_or(1);
    let inner_w = PLOT_W - 2.0 * MARGIN;
    let inner_h = PLOT_H - 2.0 * MARGIN;
    let _ = write!(
        s,
        r#"<svg viewBox="0 0 {PLOT_W} {PLOT_H}" width="{PLOT_W}" height="{PLOT_H}" xmlns="http://www.w3.org/2000/svg">"#
    );
    let _ = write!(
        s,
        r#"<text x="{}" y="16" text-anchor="middle" font-size="13" font-family="sans-serif">{}</text>"#,
        PLOT_W / 2.0,
        esc(title)
    );
    // Axes.
    let _ = write!(
        s,
        r##"<rect x="{MARGIN}" y="{MARGIN}" width="{inner_w}" height="{inner_h}" fill="none" stroke="#888"/>"##
    );
    let _ = write!(
        s,
        r#"<text x="10" y="{}" font-size="10" font-family="sans-serif" transform="rotate(-90 10 {})">normalized address</text>"#,
        PLOT_H / 2.0,
        PLOT_H / 2.0
    );
    let _ = write!(
        s,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="10" font-family="sans-serif">thread index (0..{})</text>"#,
        PLOT_W / 2.0,
        PLOT_H - 8.0,
        n.saturating_sub(1)
    );
    // Bars. Weight (sample share) modulates opacity so hot threads stand
    // out — the latency-weighting guidance of §5.2.
    let max_samples = ranges.iter().map(|r| r.samples).max().unwrap_or(1).max(1);
    let bar_w = (inner_w / n as f64 * 0.7).max(1.0);
    for r in ranges {
        if r.samples == 0 {
            continue;
        }
        let x = MARGIN + inner_w * (r.tid as f64 + 0.15) / n as f64;
        // SVG y grows downward; normalized address grows upward.
        let y_top = MARGIN + inner_h * (1.0 - r.max);
        let h = (inner_h * (r.max - r.min)).max(1.5);
        let opacity = 0.35 + 0.65 * (r.samples as f64 / max_samples as f64);
        let _ = write!(
            s,
            r##"<rect x="{x:.1}" y="{y_top:.1}" width="{bar_w:.1}" height="{h:.1}" fill="#2563eb" fill-opacity="{opacity:.2}"><title>thread {}: [{:.3}, {:.3}], {} samples</title></rect>"##,
            r.tid, r.min, r.max, r.samples
        );
    }
    s.push_str("</svg>");
    s
}

/// Generate the complete HTML report.
pub fn html_report(analyzer: &Analyzer) -> String {
    let report: AnalysisReport = analyze(analyzer);
    let p = &report.program;
    let mut s = String::new();
    s.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    let _ = write!(s, "<title>NUMA analysis — {}</title>", esc(&report.machine));
    s.push_str(
        "<style>
body{font-family:sans-serif;max-width:960px;margin:2rem auto;padding:0 1rem;color:#111}
table{border-collapse:collapse;width:100%;margin:1rem 0}
th,td{border:1px solid #ccc;padding:4px 8px;font-size:13px;text-align:left}
th{background:#f3f4f6}
.verdict-yes{color:#b91c1c;font-weight:bold}
.verdict-no{color:#15803d;font-weight:bold}
pre{background:#f9fafb;border:1px solid #e5e7eb;padding:8px;font-size:12px;overflow-x:auto}
.advice{background:#fffbeb;border-left:4px solid #f59e0b;padding:6px 10px;margin:0.5rem 0;font-size:14px}
</style></head><body>",
    );
    let _ = write!(
        s,
        "<h1>NUMA analysis</h1><p>{} · {} sampling</p>",
        esc(&report.machine),
        esc(&report.mechanism)
    );

    // Program verdict.
    s.push_str("<h2>Program</h2><table><tr><th>metric</th><th>value</th></tr>");
    match p.lpi_numa {
        Some(lpi) => {
            let class = if p.warrants_optimization() {
                "verdict-yes"
            } else {
                "verdict-no"
            };
            let verdict = if p.warrants_optimization() {
                "optimization warranted"
            } else {
                "not worth optimizing"
            };
            let _ = write!(
                s,
                "<tr><td>lpi_NUMA (threshold {LPI_THRESHOLD})</td><td>{lpi:.3} — <span class=\"{class}\">{verdict}</span></td></tr>"
            );
        }
        None => {
            let _ = write!(
                s,
                "<tr><td>lpi_NUMA</td><td>unavailable ({} has no latency capability)</td></tr>",
                esc(&report.mechanism)
            );
        }
    }
    let _ = write!(
        s,
        "<tr><td>remote accesses</td><td>{:.1}% of samples</td></tr>\
         <tr><td>remote latency</td><td>{:.1}% of total</td></tr>\
         <tr><td>domain imbalance</td><td>×{:.1}</td></tr>\
         <tr><td>remote cost by kind</td><td>heap {:.0}%, static {:.0}%, stack {:.0}%</td></tr></table>",
        p.remote_fraction * 100.0,
        p.remote_latency_fraction * 100.0,
        p.domain_imbalance,
        p.heap_share * 100.0,
        p.static_share * 100.0,
        p.stack_share * 100.0
    );

    // Hot variables with plots and advice.
    s.push_str("<h2>Hot variables</h2>");
    for a in report.advice.iter().take(5) {
        let _ = write!(
            s,
            "<h3>{} <small>[{}] — {:.1}% of remote cost</small></h3>",
            esc(&a.name),
            a.summary.kind.name(),
            a.summary.remote_share * 100.0
        );
        let _ = write!(
            s,
            "<p>M<sub>r</sub>/M<sub>l</sub> = {}; allocated by thread {} at <code>{}</code></p>",
            ratio(a.summary.metrics.m_remote, a.summary.metrics.m_local),
            a.summary.alloc_tid,
            esc(&a.summary.alloc_path)
        );
        let var = a.var;
        let prog_ranges = analyzer.thread_ranges(var, RangeScope::Program);
        s.push_str(&svg_address_plot(
            &prog_ranges,
            &format!(
                "{} — whole program ({})",
                a.name,
                classify(&prog_ranges).name()
            ),
        ));
        if let Some(r) = &a.dominant_region {
            if let Some(f) = analyzer.region_named(&r.region) {
                let rr = analyzer.thread_ranges(var, RangeScope::Region(f));
                s.push_str(&svg_address_plot(
                    &rr,
                    &format!(
                        "{} — region {} [{:.0}% of cost] ({})",
                        a.name,
                        r.region,
                        r.share * 100.0,
                        classify(&rr).name()
                    ),
                ));
            }
        }
        let _ = write!(
            s,
            "<div class=\"advice\">⇒ {}</div>",
            esc(a.recommendation.describe())
        );
        for (tid, domain, path) in &a.first_touch_sites {
            let _ = write!(
                s,
                "<p>first touch: thread {tid} ({}) at <code>{}</code></p>",
                esc(domain),
                esc(path)
            );
        }
    }

    // Code-centric pane.
    s.push_str("<h2>Calling contexts</h2><pre>");
    s.push_str(&esc(&view::render_cct(analyzer, 0.02)));
    s.push_str("</pre>");

    // Timeline, if traced (the engine's index knows; no thread scan).
    if !analyzer.traced_threads().is_empty() {
        s.push_str("<h2>Remote-fraction timeline</h2><pre>");
        s.push_str(&esc(&view::render_trace_timelines(analyzer, 64)));
        s.push_str("</pre>");
    }

    s.push_str("</body></html>");
    s
}

fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "∞".to_string()
    } else {
        format!("{:.1}", a as f64 / b as f64)
    }
}

/// Convenience used by tests/CLI: plot for one variable.
pub fn svg_for_var(analyzer: &Analyzer, var: VarId) -> String {
    let name = analyzer
        .profile()
        .var(var)
        .map(|rec| rec.name.as_str())
        .unwrap_or("<unknown>");
    let ranges = analyzer.thread_ranges(var, RangeScope::Program);
    svg_address_plot(&ranges, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(n: usize) -> Vec<ThreadRange> {
        (0..n)
            .map(|i| ThreadRange {
                tid: i,
                min: i as f64 / n as f64,
                max: (i + 1) as f64 / n as f64,
                samples: 10 + i as u64,
                latency: 100,
            })
            .collect()
    }

    #[test]
    fn svg_has_one_bar_per_thread() {
        let svg = svg_address_plot(&ranges(8), "z");
        assert_eq!(svg.matches("<rect").count(), 1 + 8, "frame + 8 bars");
        assert!(svg.contains("thread 7"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn svg_escapes_titles() {
        let svg = svg_address_plot(&ranges(2), "a<b & c");
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn zero_sample_threads_draw_nothing() {
        let mut r = ranges(3);
        r[1].samples = 0;
        let svg = svg_address_plot(&r, "t");
        assert_eq!(svg.matches("<rect").count(), 1 + 2);
    }
}
