//! Offline analyzer and viewer (§7.2): the `hpcprof` + `hpcviewer` roles.
//!
//! * [`Analyzer`] merges per-thread profiles (metric accumulation plus the
//!   \[min,max\] reduction for address ranges), computes the derived metrics
//!   of §4 (`lpi_NUMA` via Eq. 2/3, remote fractions, per-domain balance),
//!   and ranks hot variables.
//! * [`pattern`] classifies per-thread access-range shapes (blocked
//!   staircase / staggered-overlapping / full-range / irregular) and maps
//!   them to the paper's optimization strategies — automating the
//!   read-the-plot step of the case studies.
//! * [`view`] renders the address-centric view (Figure 3's upper-right
//!   pane) as text and JSON.
//! * [`report`] assembles everything into an actionable report with
//!   first-touch sites to edit.

pub mod analyzer;
pub mod diff;
pub mod html;
pub mod pattern;
pub mod report;
pub mod view;

pub use analyzer::{Analyzer, ProgramAnalysis, ThreadRange, VarAnalysis};
pub use diff::{diff, Delta, DiffReport, VarDelta};
pub use html::{html_report, svg_address_plot, svg_for_var};
pub use pattern::{
    classify, classify_with, recommend, AccessPattern, ClassifierConfig, Recommendation,
};
pub use report::{analyze, full_text_report, AnalysisReport, RegionAdvice, VarAdvice};
pub use view::{
    export_address_view, render_address_view, render_cct, render_metric_table, render_ranges,
    render_trace_timelines,
};
