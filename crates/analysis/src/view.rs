//! The viewer (§7.2): textual renderings of the address-centric view and
//! metric panes that `hpcviewer` displays, plus JSON export for external
//! plotting.

use crate::analyzer::{Analyzer, ThreadRange};
use numa_profiler::{Cct, MetricSet, NodeId, NodeKey, RangeScope, VarId, ROOT};
use serde::Serialize;

/// Height (rows) of the ASCII address-range plot.
const PLOT_ROWS: usize = 16;

/// Render the address-centric view for one variable: per-thread \[min,max\]
/// accessed ranges, normalized to [0, 1] (the paper's upper-right pane in
/// Figure 3). The x axis is the thread index; each column's filled span is
/// the thread's accessed range.
pub fn render_address_view(
    analyzer: &Analyzer,
    var: VarId,
    scope: RangeScope,
    title: &str,
) -> String {
    let ranges = analyzer.thread_ranges(var, scope);
    render_ranges(&ranges, title)
}

/// Render pre-computed ranges (used by tests and by per-region views).
pub fn render_ranges(ranges: &[ThreadRange], title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("── address-centric view: {title} ──\n"));
    if ranges.is_empty() {
        out.push_str("   (no samples)\n");
        return out;
    }
    let max_tid = ranges.iter().map(|r| r.tid).max().unwrap();
    let cols = max_tid + 1;
    // Column per thread; '█' where the thread's range covers the row.
    // Row 0 is the top of the variable (normalized 1.0).
    let mut grid = vec![vec![' '; cols]; PLOT_ROWS];
    for r in ranges {
        if r.samples == 0 {
            continue;
        }
        let lo = ((r.min * PLOT_ROWS as f64).floor() as usize).min(PLOT_ROWS - 1);
        let hi = ((r.max * PLOT_ROWS as f64).ceil() as usize).clamp(lo + 1, PLOT_ROWS);
        for row in lo..hi {
            grid[PLOT_ROWS - 1 - row][r.tid] = '█';
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let label = match i {
            0 => "1.0 ",
            r if r == PLOT_ROWS - 1 => "0.0 ",
            _ => "    ",
        };
        out.push_str(label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    out.push_str(&format!(
        "     thread index 0..{max_tid} ({} threads sampled)\n",
        ranges.iter().filter(|r| r.samples > 0).count()
    ));
    out
}

/// Render the metric pane for a list of (label, metrics) rows — the
/// NUMA_MATCH / NUMA_MISMATCH / per-domain columns of Figure 3's lower
/// right pane.
pub fn render_metric_table(rows: &[(String, MetricSet)], domains: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>12} {:>12} {:>10} {:>12}",
        "scope", "NUMA_MATCH", "NUMA_MISMATCH", "rem%", "rem.latency"
    ));
    for d in 0..domains {
        out.push_str(&format!(" {:>9}", format!("NODE{d}")));
    }
    out.push('\n');
    for (label, m) in rows {
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>9.1}% {:>12}",
            truncate(label, 40),
            m.m_local,
            m.m_remote,
            m.remote_fraction() * 100.0,
            m.latency_remote,
        ));
        for d in 0..domains {
            out.push_str(&format!(
                " {:>9}",
                m.per_domain.get(d).copied().unwrap_or(0)
            ));
        }
        out.push('\n');
    }
    out
}

/// Shorten `s` to at most `n` *characters*, keeping the tail (the
/// innermost frames of a call path are the informative part). Counts
/// and cuts by `char`, never by byte: labels are user-controlled symbol
/// names and may be multi-byte UTF-8.
fn truncate(s: &str, n: usize) -> String {
    let chars = s.chars().count();
    if chars <= n {
        s.to_string()
    } else {
        let keep = n.saturating_sub(1);
        let start = s
            .char_indices()
            .nth(chars - keep)
            .map(|(i, _)| i)
            .unwrap_or(0);
        format!("…{}", &s[start..])
    }
}

/// Render the merged calling-context tree with NUMA metrics — the
/// code-centric pane (the paper's future-work item #4: a better view for
/// code- and data-centric measurements). Nodes are shown top-down with
/// inclusive remote cost; subtrees below `min_share` of the program total
/// are elided.
pub fn render_cct(analyzer: &Analyzer, min_share: f64) -> String {
    let cct: &Cct = analyzer.merged_cct();
    let profile = analyzer.profile();
    // Inclusive metrics per node, folded once.
    let n = cct.len();
    let mut inclusive: Vec<MetricSet> = cct.nodes().iter().map(|nd| nd.metrics.clone()).collect();
    for i in (1..n).rev() {
        let parent = cct.nodes()[i].parent as usize;
        let child = inclusive[i].clone();
        inclusive[parent].merge(&child);
    }
    let weight = |m: &MetricSet| {
        if profile.capabilities.latency {
            m.latency_remote
        } else {
            m.m_remote
        }
    };
    let total = weight(&inclusive[ROOT as usize]).max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<56} {:>9} {:>12} {:>12}\n",
        "calling context (inclusive remote cost)", "share", "NUMA_MATCH", "NUMA_MISMATCH"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    render_cct_node(
        cct, &inclusive, profile, ROOT, 0, total, min_share, weight, &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn render_cct_node(
    cct: &Cct,
    inclusive: &[MetricSet],
    profile: &numa_profiler::NumaProfile,
    id: NodeId,
    depth: usize,
    total: u64,
    min_share: f64,
    weight: impl Fn(&MetricSet) -> u64 + Copy,
    out: &mut String,
) {
    let m = &inclusive[id as usize];
    let share = weight(m) as f64 / total as f64;
    if share < min_share && id != ROOT {
        return;
    }
    let label = match cct.node(id).key {
        NodeKey::Root => "<program>".to_string(),
        NodeKey::Frame(f) => profile.func_name(f.func).to_string(),
        NodeKey::Line(l) => format!("line {l}"),
    };
    out.push_str(&format!(
        "{:<56} {:>8.1}% {:>12} {:>12}\n",
        format!("{}{}", "  ".repeat(depth), label),
        share * 100.0,
        m.m_local,
        m.m_remote
    ));
    // Children ordered by descending inclusive weight.
    let mut kids = cct.children(id);
    kids.sort_by_key(|&k| std::cmp::Reverse(weight(&inclusive[k as usize])));
    for k in kids {
        render_cct_node(
            cct,
            inclusive,
            profile,
            k,
            depth + 1,
            total,
            min_share,
            weight,
            out,
        );
    }
}

/// Render per-thread remote-fraction timelines from trace-enabled
/// profiles (the paper's future-work item #3).
pub fn render_trace_timelines(analyzer: &Analyzer, width: usize) -> String {
    // The engine's index knows which threads carry traces; no per-query
    // scan over `threads`.
    let traces: Vec<(usize, &numa_profiler::Trace)> = analyzer.traced_threads();
    if traces.is_empty() {
        return "(no trace data — enable ProfilerConfig::with_trace)\n".to_string();
    }
    numa_profiler::render_timeline(&traces, width)
}

/// JSON-exportable series for external plotting of the address-centric
/// view.
#[derive(Serialize)]
pub struct AddressViewExport<'a> {
    pub variable: &'a str,
    pub scope: String,
    pub threads: Vec<ThreadRange>,
}

/// Export one variable's view as JSON.
pub fn export_address_view(analyzer: &Analyzer, var: VarId, scope: RangeScope) -> String {
    let variable = analyzer
        .profile()
        .var(var)
        .map(|rec| rec.name.as_str())
        .unwrap_or("<unknown>");
    let scope_name = match scope {
        RangeScope::Program => "program".to_string(),
        RangeScope::Region(f) => analyzer.profile().func_name(f).to_string(),
    };
    let export = AddressViewExport {
        variable,
        scope: scope_name,
        threads: analyzer.thread_ranges(var, scope),
    };
    serde_json::to_string_pretty(&export).expect("export serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase(n: usize) -> Vec<ThreadRange> {
        (0..n)
            .map(|i| ThreadRange {
                tid: i,
                min: i as f64 / n as f64,
                max: (i + 1) as f64 / n as f64,
                samples: 10,
                latency: 100,
            })
            .collect()
    }

    #[test]
    fn staircase_renders_diagonal() {
        let s = render_ranges(&staircase(8), "z");
        assert!(s.contains("█"));
        let lines: Vec<&str> = s.lines().collect();
        // Top data row contains the last thread's block; bottom row the
        // first thread's.
        let top = lines[1];
        let bottom = lines[PLOT_ROWS];
        assert!(top.ends_with('█'), "top row: {top:?}");
        assert!(bottom.contains("|█"), "bottom row: {bottom:?}");
    }

    #[test]
    fn empty_view_says_so() {
        let s = render_ranges(&[], "nothing");
        assert!(s.contains("no samples"));
    }

    #[test]
    fn full_range_fills_columns() {
        let ranges: Vec<ThreadRange> = (0..4)
            .map(|i| ThreadRange {
                tid: i,
                min: 0.0,
                max: 1.0,
                samples: 1,
                latency: 0,
            })
            .collect();
        let s = render_ranges(&ranges, "buffer");
        for line in s.lines().skip(1).take(PLOT_ROWS) {
            assert!(line.contains("████"), "row not filled: {line:?}");
        }
    }

    /// Regression: `truncate` used to slice at a byte offset and
    /// panicked on multi-byte UTF-8 symbol names.
    #[test]
    fn truncate_is_char_boundary_safe() {
        // 50 snowmen: 50 chars, 150 bytes. Byte slicing at len-39 would
        // split a code point and panic.
        let snowmen: String = "☃".repeat(50);
        let t = truncate(&snowmen, 40);
        assert!(t.starts_with('…'));
        assert_eq!(t.chars().count(), 40);
        assert!(t.ends_with('☃'));
        // Mixed-width path names keep their tail.
        let path = format!("main > {} > kernel", "región_π".repeat(8));
        let t = truncate(&path, 40);
        assert_eq!(t.chars().count(), 40);
        assert!(t.ends_with("kernel"));
        // Short strings (by chars, even if long in bytes) are untouched.
        let short = "πρöfïlé";
        assert_eq!(truncate(short, 40), short);
        assert_eq!(truncate("", 4), "");
    }

    /// Regression: the metric pane must render rows with non-ASCII
    /// labels longer than the column width (this panicked before the
    /// char-boundary fix).
    #[test]
    fn metric_table_renders_non_ascii_labels() {
        let mut m = MetricSet::new(1);
        m.m_local = 1;
        let label = "αβγδε_ζηθικ".repeat(6); // 66 chars, multi-byte
        let s = render_metric_table(&[(label, m)], 1);
        assert!(s.contains('…'));
        assert!(s.contains("ζηθικ"));
    }

    #[test]
    fn metric_table_shows_match_and_mismatch() {
        let mut m = MetricSet::new(2);
        m.m_local = 3;
        m.m_remote = 21;
        m.per_domain = vec![24, 0];
        let s = render_metric_table(&[("z".to_string(), m)], 2);
        assert!(s.contains("NUMA_MATCH"));
        assert!(s.contains("NUMA_MISMATCH"));
        assert!(s.contains("NODE0"));
        assert!(s.contains("87.5%")); // 21/24
    }
}
