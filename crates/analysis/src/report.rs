//! The full analysis report: what an analyst gets from one profiled run —
//! program verdict, hot variables with patterns and recommendations,
//! first-touch sites, and per-region drill-downs.

use crate::analyzer::{Analyzer, ProgramAnalysis, VarAnalysis};
use crate::pattern::{classify, recommend, AccessPattern, Recommendation};
use crate::view;
use numa_profiler::{RangeScope, VarId, LPI_THRESHOLD};
use serde::Serialize;

/// Guidance for one variable.
#[derive(Clone, Debug, Serialize)]
pub struct VarAdvice {
    pub var: VarId,
    pub name: String,
    pub summary: VarAnalysis,
    /// Whole-program access pattern.
    pub pattern: AccessPattern,
    /// The dominant parallel region (by cost share) and the pattern there,
    /// when the whole-program view is irregular or a region dominates —
    /// the Figure 4 → Figure 5 drill-down.
    pub dominant_region: Option<RegionAdvice>,
    /// Final recommendation after drill-down.
    pub recommendation: Recommendation,
    /// First-touch sites: (thread, domain, call path).
    pub first_touch_sites: Vec<(usize, String, String)>,
}

#[derive(Clone, Debug, Serialize)]
pub struct RegionAdvice {
    pub region: String,
    /// Share of the variable's cost incurred in this region.
    pub share: f64,
    pub pattern: AccessPattern,
}

/// Complete report for one profile.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    pub machine: String,
    pub mechanism: String,
    pub program: ProgramAnalysis,
    pub advice: Vec<VarAdvice>,
}

/// How many hot variables the report analyzes in depth.
const TOP_N: usize = 10;

/// Minimum cost share for a region to drive the recommendation.
const DOMINANT_REGION_SHARE: f64 = 0.5;

/// Build the report.
pub fn analyze(analyzer: &Analyzer) -> AnalysisReport {
    let program = analyzer.program();
    let advice = analyzer
        .hot_variables()
        .into_iter()
        .take(TOP_N)
        .map(|summary| advise(analyzer, summary))
        .collect();
    AnalysisReport {
        machine: analyzer.profile().machine_name.clone(),
        mechanism: analyzer.profile().mechanism.name().to_string(),
        program,
        advice,
    }
}

fn advise(analyzer: &Analyzer, summary: VarAnalysis) -> VarAdvice {
    let var = summary.var;
    let program_ranges = analyzer.thread_ranges(var, RangeScope::Program);
    let pattern = classify(&program_ranges);

    // Drill into the dominant region when the whole-program view is
    // irregular, or when one region clearly dominates the variable's cost
    // (AMG: the relax region explains 74% of RAP_diag_data's latency and
    // shows a regular pattern the aggregate view hides).
    let regions = analyzer.var_regions(var);
    let dominant_region = regions
        .first()
        .filter(|(_, share)| *share >= DOMINANT_REGION_SHARE || pattern == AccessPattern::Irregular)
        .map(|&(region, share)| {
            let ranges = analyzer.thread_ranges(var, RangeScope::Region(region));
            RegionAdvice {
                region: analyzer.profile().func_name(region).to_string(),
                share,
                pattern: classify(&ranges),
            }
        });

    // Prefer the region pattern when it is regular and the region carries
    // a usable share of the cost.
    let decisive_pattern = match &dominant_region {
        Some(r)
            if r.pattern != AccessPattern::Irregular
                && (pattern == AccessPattern::Irregular || r.share >= DOMINANT_REGION_SHARE) =>
        {
            r.pattern
        }
        _ => pattern,
    };
    let recommendation = if !severity_warrants_action(analyzer, &summary) {
        Recommendation::None
    } else {
        recommend(decisive_pattern)
    };

    let first_touch_sites = analyzer
        .first_touch_sites(var)
        .into_iter()
        .map(|(tid, domain, path)| (tid, domain.to_string(), path))
        .collect();

    VarAdvice {
        var,
        name: summary.name.clone(),
        summary,
        pattern,
        dominant_region,
        recommendation,
        first_touch_sites,
    }
}

/// §4.2's severity gate, per variable: with latency capability, a variable
/// whose remote latency per sampled access is negligible is not worth
/// optimizing even if `M_r` is large (the cached-remote-data bias).
fn severity_warrants_action(_analyzer: &Analyzer, summary: &VarAnalysis) -> bool {
    match summary.lpi {
        Some(lpi) => lpi > LPI_THRESHOLD && summary.remote_share > 0.01,
        None => summary.metrics.remote_fraction() > 0.3 && summary.remote_share > 0.01,
    }
}

impl AnalysisReport {
    /// Render the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "NUMA analysis — {} on {} ({} sampling)\n",
            "profile", self.machine, self.mechanism
        ));
        out.push_str(&"=".repeat(72));
        out.push('\n');
        let p = &self.program;
        match p.lpi_numa {
            Some(lpi) => {
                out.push_str(&format!(
                    "lpi_NUMA = {:.3} cycles/instruction (threshold {:.1}): {}\n",
                    lpi,
                    LPI_THRESHOLD,
                    if p.warrants_optimization() {
                        "NUMA losses are significant — optimization warranted"
                    } else {
                        "NUMA losses are insignificant — optimization not worthwhile"
                    }
                ));
            }
            None => {
                out.push_str(&format!(
                    "lpi_NUMA unavailable ({} has no latency capability); remote fraction = {:.1}%\n",
                    self.mechanism,
                    p.remote_fraction * 100.0
                ));
            }
        }
        out.push_str(&format!(
            "remote accesses: {:.1}% of samples; remote latency: {:.1}% of total; \
             domain imbalance ×{:.1}\n",
            p.remote_fraction * 100.0,
            p.remote_latency_fraction * 100.0,
            p.domain_imbalance
        ));
        out.push_str(&format!(
            "remote cost by kind: heap {:.1}%, static {:.1}%, stack {:.1}%\n\n",
            p.heap_share * 100.0,
            p.static_share * 100.0,
            p.stack_share * 100.0
        ));

        for (i, a) in self.advice.iter().enumerate() {
            out.push_str(&format!(
                "#{} {} [{}] — {:.1}% of remote cost, M_r/M_l = {}\n",
                i + 1,
                a.name,
                a.summary.kind.name(),
                a.summary.remote_share * 100.0,
                ratio(a.summary.metrics.m_remote, a.summary.metrics.m_local),
            ));
            if let Some(lpi) = a.summary.lpi {
                out.push_str(&format!("    lpi = {lpi:.2} cycles/access\n"));
            }
            out.push_str(&format!(
                "    allocated by thread {} at: {}\n",
                a.summary.alloc_tid, a.summary.alloc_path
            ));
            out.push_str(&format!("    pattern: {}", a.pattern.name()));
            if let Some(r) = &a.dominant_region {
                out.push_str(&format!(
                    " (dominant region {} [{:.0}% of cost]: {})",
                    r.region,
                    r.share * 100.0,
                    r.pattern.name()
                ));
            }
            out.push('\n');
            out.push_str(&format!("    ⇒ {}\n", a.recommendation.describe()));
            for (tid, domain, path) in &a.first_touch_sites {
                out.push_str(&format!(
                    "    first touch by thread {tid} ({domain}) at: {path}\n"
                ));
            }
            out.push('\n');
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        if a == 0 {
            "0".to_string()
        } else {
            "∞".to_string()
        }
    } else {
        format!("{:.1}", a as f64 / b as f64)
    }
}

/// Convenience: full textual output for a profile — program verdict, hot
/// variables, and the address-centric views of the top variables.
pub fn full_text_report(analyzer: &Analyzer) -> String {
    let report = analyze(analyzer);
    let mut out = report.render();
    for a in report.advice.iter().take(3) {
        out.push_str(&view::render_address_view(
            analyzer,
            a.var,
            RangeScope::Program,
            &format!("{} (whole program)", a.name),
        ));
        if let Some(r) = &a.dominant_region {
            if let Some(region_id) = analyzer.region_named(&r.region) {
                out.push_str(&view::render_address_view(
                    analyzer,
                    a.var,
                    RangeScope::Region(region_id),
                    &format!("{} (region {})", a.name, r.region),
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{Machine, MachinePreset, PlacementPolicy};
    use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::{ExecMode, Program};
    use std::sync::Arc;

    fn blocked_profile() -> Analyzer {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
        let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
        let size = 4u64 << 20;
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
            ctx.store_range(base, size / 64, 64);
        });
        for _ in 0..3 {
            p.parallel("compute._omp", |tid, ctx| {
                let chunk = size / 8;
                ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
            });
        }
        Analyzer::new(finish_profile(p, profiler))
    }

    #[test]
    fn report_recommends_blockwise_for_staircase() {
        let analyzer = blocked_profile();
        let report = analyze(&analyzer);
        assert!(report.program.warrants_optimization());
        let z = &report.advice[0];
        assert_eq!(z.name, "z");
        assert_eq!(z.recommendation, Recommendation::BlockWise);
        assert!(!z.first_touch_sites.is_empty());
        assert!(z.first_touch_sites[0].2.contains("main"));
    }

    #[test]
    fn rendered_report_contains_key_sections() {
        let analyzer = blocked_profile();
        let text = full_text_report(&analyzer);
        assert!(text.contains("lpi_NUMA"));
        assert!(text.contains("z [heap]"));
        assert!(text.contains("block-wise"));
        assert!(text.contains("address-centric view"));
        assert!(text.contains("first touch by thread 0"));
    }

    #[test]
    fn report_serializes_to_json() {
        let analyzer = blocked_profile();
        let report = analyze(&analyzer);
        let json = report.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["advice"][0]["name"], "z");
    }
}
