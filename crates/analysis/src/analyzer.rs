//! Profile merging and derived metrics (the `hpcprof` role, §7.2).
//!
//! Merging thread profiles accumulates metric values but applies a
//! *\[min,max\] reduction* to address ranges — the one customization the
//! paper needed in HPCToolkit's profile merger. Since the engine
//! refactor the merge itself lives in [`numa_engine`]: the analyzer is
//! a thin presentation wrapper over an [`Engine`] whose prebuilt
//! columnar index answers every query as an O(lookup) probe, and which
//! can be shared (`Arc`) between analyzers without cloning the profile.
//!
//! # Miss behavior
//!
//! Every accessor taking a [`VarId`] follows one contract for ids the
//! profile has no record of (malformed input, or a stale id from
//! another run): **a documented empty result, never a panic and never
//! an error**.
//!
//! * [`Analyzer::var_metrics`] → a zeroed [`MetricSet`];
//! * [`Analyzer::thread_ranges`] / [`Analyzer::thread_ranges_with_threshold`]
//!   → an empty `Vec`;
//! * [`Analyzer::var_regions`] → an empty `Vec`;
//! * [`Analyzer::first_touch_sites`] → an empty `Vec`;
//! * [`Analyzer::merged_range`] → `None` (the only `Option` accessor:
//!   it answers a point lookup, not a listing).
//!
//! Name lookups ([`Analyzer::var_named`], [`Analyzer::region_named`])
//! return `Option` because "not present" is the expected answer for
//! user-supplied names.

use numa_engine::Engine;
use numa_machine::DomainId;
use numa_profiler::{
    Cct, MetricSet, NumaProfile, RangeKey, RangeScope, RangeStat, VarId, LPI_THRESHOLD,
};
use numa_sampling::MechanismKind;
use numa_sim::{FuncId, VarKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use numa_engine::ThreadRange;

/// Whole-program derived metrics (§4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProgramAnalysis {
    pub mechanism: MechanismKind,
    /// Program-wide NUMA latency per instruction. Eq. 2 for mechanisms
    /// whose samples carry latency and that sample the full instruction
    /// stream (IBS); Eq. 3 for event-sampling mechanisms with a hardware
    /// event counter (PEBS-LL); `None` when latency is unavailable (MRK,
    /// PEBS, DEAR, Soft-IBS).
    pub lpi_numa: Option<f64>,
    /// `M_r / (M_l + M_r)` over all samples.
    pub remote_fraction: f64,
    /// Sampled accesses per domain, across all threads.
    pub per_domain: Vec<u64>,
    /// Max-domain share over fair share (1.0 = balanced).
    pub domain_imbalance: f64,
    pub total_samples: u64,
    pub total_latency: u64,
    pub remote_latency: u64,
    /// Fraction of total sampled latency caused by remote accesses.
    pub remote_latency_fraction: f64,
    /// Share of remote latency (or of remote samples, without latency)
    /// attributed to heap / static / stack variables.
    pub heap_share: f64,
    pub static_share: f64,
    pub stack_share: f64,
}

impl ProgramAnalysis {
    /// The paper's verdict: is NUMA optimization worthwhile? (§4.2's 0.1
    /// cycles/instruction rule; without latency capability, fall back to a
    /// remote-fraction heuristic as the MRK case studies do.)
    pub fn warrants_optimization(&self) -> bool {
        match self.lpi_numa {
            Some(lpi) => lpi > LPI_THRESHOLD,
            None => self.remote_fraction > 0.5,
        }
    }
}

/// Merged (all-thread) view of one variable.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VarAnalysis {
    pub var: VarId,
    pub name: String,
    pub kind: VarKind,
    pub bytes: u64,
    /// Metrics accumulated across threads.
    pub metrics: MetricSet,
    /// This variable's share of program remote latency (or of remote
    /// samples when latency is unavailable).
    pub remote_share: f64,
    /// Variable-level `lpi`: remote latency per sampled access (`None`
    /// without latency capability).
    pub lpi: Option<f64>,
    /// Allocation call path, rendered.
    pub alloc_path: String,
    pub alloc_tid: usize,
}

/// The offline analyzer: answers analysis queries through the shared
/// [`Engine`] (see the module docs for the miss-behavior contract).
pub struct Analyzer {
    engine: Arc<Engine>,
}

impl Analyzer {
    /// Analyze an owned profile (CLI entry point). The profile is moved
    /// behind an `Arc`, never cloned.
    pub fn new(profile: NumaProfile) -> Self {
        Self::from_arc(Arc::new(profile))
    }

    /// Analyze a shared profile without copying it.
    pub fn from_arc(profile: Arc<NumaProfile>) -> Self {
        Analyzer {
            engine: Arc::new(Engine::new(profile)),
        }
    }

    /// Wrap an already-built engine (the store's cached-analyzer path:
    /// index construction is paid once per stored profile, not per
    /// query).
    pub fn from_engine(engine: Arc<Engine>) -> Self {
        Analyzer { engine }
    }

    /// The underlying shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    pub fn profile(&self) -> &NumaProfile {
        self.engine.profile()
    }

    /// Program-wide merged metrics.
    pub fn totals(&self) -> &MetricSet {
        self.engine.totals()
    }

    /// Program-wide derived metrics.
    pub fn program(&self) -> ProgramAnalysis {
        let p = self.profile();
        let totals = self.engine.totals();
        let lpi = match p.mechanism {
            // Eq. 2: sampled remote latency over sampled instructions.
            MechanismKind::Ibs => totals.lpi_numa(),
            // Eq. 3: average latency per sampled event × absolute events /
            // absolute instructions (both from hardware counters).
            MechanismKind::PebsLl => {
                let events = self.engine.total_numa_events();
                let instr = self.engine.total_instructions();
                if totals.samples_mem == 0 || instr == 0 {
                    None
                } else {
                    let avg_remote_per_sample =
                        totals.latency_remote as f64 / totals.samples_mem as f64;
                    Some(avg_remote_per_sample * events as f64 / instr as f64)
                }
            }
            _ => None,
        };
        let shares = self.kind_shares();
        ProgramAnalysis {
            mechanism: p.mechanism,
            lpi_numa: lpi,
            remote_fraction: totals.remote_fraction(),
            per_domain: totals.per_domain.clone(),
            domain_imbalance: totals.domain_imbalance(),
            total_samples: totals.samples_mem,
            total_latency: totals.latency_total,
            remote_latency: totals.latency_remote,
            remote_latency_fraction: if totals.latency_total == 0 {
                0.0
            } else {
                totals.latency_remote as f64 / totals.latency_total as f64
            },
            heap_share: shares.0,
            static_share: shares.1,
            stack_share: shares.2,
        }
    }

    /// (heap, static, stack) shares of remote cost — a parallel fold
    /// over the per-variable metric columns.
    fn kind_shares(&self) -> (f64, f64, f64) {
        let (heap, stat, stack) = self.engine.fold_vars(
            || (0u64, 0u64, 0u64),
            |v, m| {
                let w = self.remote_weight(m);
                match self.profile().var(v).map(|rec| rec.kind) {
                    Some(VarKind::Heap) => (w, 0, 0),
                    Some(VarKind::Static) => (0, w, 0),
                    Some(VarKind::Stack) => (0, 0, w),
                    // Samples attributed to a variable the profile has no
                    // record for (malformed input): leave them unclassified.
                    None => (0, 0, 0),
                }
            },
            |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
        );
        let total = self.remote_weight(self.engine.totals());
        if total == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                heap as f64 / total as f64,
                stat as f64 / total as f64,
                stack as f64 / total as f64,
            )
        }
    }

    /// Cost weight used for rankings: remote latency when available,
    /// remote sample count otherwise.
    fn remote_weight(&self, m: &MetricSet) -> u64 {
        if self.profile().capabilities.latency {
            m.latency_remote
        } else {
            m.m_remote
        }
    }

    /// Merged metrics of one variable (zeroed if never sampled or
    /// unknown — see the module docs).
    pub fn var_metrics(&self, var: VarId) -> MetricSet {
        self.engine
            .var_metrics(var)
            .cloned()
            .unwrap_or_else(|| MetricSet::new(self.profile().domains))
    }

    /// All sampled variables, ranked by remote cost (highest first) — the
    /// "hot variables" list the case studies walk down.
    pub fn hot_variables(&self) -> Vec<VarAnalysis> {
        let program_total = self.remote_weight(self.engine.totals()).max(1);
        let mut out: Vec<VarAnalysis> = self
            .engine
            .var_columns()
            .iter()
            .filter_map(|(v, m)| {
                // Skip metric entries whose variable record is missing
                // (malformed profile) rather than crash the ranking.
                let rec = self.profile().var(*v)?;
                Some(VarAnalysis {
                    var: *v,
                    name: rec.name.clone(),
                    kind: rec.kind,
                    bytes: rec.bytes,
                    metrics: m.clone(),
                    remote_share: self.remote_weight(m) as f64 / program_total as f64,
                    lpi: m.lpi_numa(),
                    alloc_path: rec
                        .alloc_path
                        .iter()
                        .map(|f| self.profile().func_name(f.func).to_string())
                        .collect::<Vec<_>>()
                        .join(" > "),
                    alloc_tid: rec.alloc_tid,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            self.remote_weight(&b.metrics)
                .cmp(&self.remote_weight(&a.metrics))
                .then(a.var.cmp(&b.var))
        });
        out
    }

    /// Per-thread normalized \[min,max\] ranges of `var` under `scope`,
    /// merged over each thread's *hot* bins (§5.2's rule of using hot bins
    /// to represent the pattern). A bin is hot for a thread if it holds at
    /// least `hot_bin_threshold` of the thread's *mean* per-bin weight:
    /// relative-to-mean hotness keeps uniformly spread sweeps intact while
    /// discarding one-off stray samples that would otherwise stretch the
    /// \[min,max\] range. One entry per thread that sampled the variable;
    /// empty for unknown `var` (see the module docs).
    pub fn thread_ranges(&self, var: VarId, scope: RangeScope) -> Vec<ThreadRange> {
        self.thread_ranges_with_threshold(var, scope, 0.05)
    }

    /// See [`Analyzer::thread_ranges`]; an unknown `VarId` yields an
    /// empty `Vec` (module-docs contract), matching every other listing
    /// accessor.
    pub fn thread_ranges_with_threshold(
        &self,
        var: VarId,
        scope: RangeScope,
        hot_bin_threshold: f64,
    ) -> Vec<ThreadRange> {
        self.engine.thread_ranges(var, scope, hot_bin_threshold)
    }

    /// Parallel regions in which `var` was sampled, with each region's
    /// share of the variable's cost (latency if available, else samples).
    /// Sorted by descending share — the drill-down of Figures 4→5. Empty
    /// for unknown `var`.
    pub fn var_regions(&self, var: VarId) -> Vec<(FuncId, f64)> {
        self.engine.var_regions(var)
    }

    /// First-touch records for a variable, with rendered call paths —
    /// "identify where data pages are bound to NUMA domains" (§2). Empty
    /// for unknown `var`.
    pub fn first_touch_sites(&self, var: VarId) -> Vec<(usize, DomainId, String)> {
        self.engine.first_touch_sites(var)
    }

    /// Merged range stat for an explicit key (tests / views).
    pub fn merged_range(&self, key: &RangeKey) -> Option<&RangeStat> {
        self.engine.merged_range(key)
    }

    /// The merged all-thread calling context tree — the code-centric
    /// pane of the viewer. Prebuilt by the engine: borrowing it is free.
    pub fn merged_cct(&self) -> &Cct {
        self.engine.merged_cct()
    }

    /// Interned lookup of a variable by source name (first match, like
    /// `NumaProfile::var_by_name`).
    pub fn var_named(&self, name: &str) -> Option<VarId> {
        self.engine.var_named(name)
    }

    /// Interned lookup of a parallel region / function by name.
    pub fn region_named(&self, name: &str) -> Option<FuncId> {
        self.engine.func_named(name)
    }

    /// `(tid, trace)` of every thread that recorded a trace.
    pub fn traced_threads(&self) -> Vec<(usize, &numa_profiler::Trace)> {
        self.engine.traced_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{Machine, MachinePreset, PlacementPolicy};
    use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig};
    use numa_sampling::MechanismConfig;
    use numa_sim::{ExecMode, Program};

    /// Master-init array, block-partitioned worker reads: the canonical
    /// first-touch bottleneck.
    /// Build the canonical first-touch bottleneck: master-initialized
    /// array (everything lands in domain 0), block-partitioned worker
    /// sweeps. `iterations` weights the compute phase like a real solver
    /// loop; `init` toggles the serial init (without it, placement is
    /// forced with an explicit bind, as when only the compute phase is
    /// profiled).
    fn profile_with(
        kind: MechanismKind,
        period: u64,
        iterations: usize,
        init: bool,
    ) -> NumaProfile {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(kind, period));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
        let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
        let size = 4u64 << 20;
        let mut base = 0;
        p.serial("main", |ctx| {
            let policy = if init {
                PlacementPolicy::FirstTouch
            } else {
                PlacementPolicy::Bind(numa_machine::DomainId(0))
            };
            base = ctx.alloc("z", size, policy);
            if init {
                ctx.store_range(base, size / 64, 64);
            }
        });
        for _ in 0..iterations {
            p.parallel("CalcForce._omp", |tid, ctx| {
                let chunk = size / 8;
                ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
            });
        }
        finish_profile(p, profiler)
    }

    fn bottleneck_profile(kind: MechanismKind, period: u64) -> NumaProfile {
        profile_with(kind, period, 2, true)
    }

    #[test]
    fn program_analysis_flags_the_bottleneck() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let pa = a.program();
        // 7 of 8 threads are remote to domain 0.
        assert!(
            pa.remote_fraction > 0.5,
            "remote fraction {}",
            pa.remote_fraction
        );
        assert!(
            pa.domain_imbalance > 4.0,
            "imbalance {}",
            pa.domain_imbalance
        );
        assert!(pa.lpi_numa.is_some());
        assert!(pa.warrants_optimization());
        assert!(pa.heap_share > 0.9);
    }

    #[test]
    fn hot_variables_ranked_and_attributed() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let hot = a.hot_variables();
        assert_eq!(hot.len(), 1);
        let z = &hot[0];
        assert_eq!(z.name, "z");
        assert!(z.remote_share > 0.9);
        assert!(z.metrics.m_remote > z.metrics.m_local);
        assert!(z.alloc_path.contains("main"));
    }

    #[test]
    fn thread_ranges_form_a_staircase() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 4));
        let z = a.var_named("z").unwrap();
        // Worker-region scope isolates the parallel read pattern.
        let region = a.region_named("CalcForce._omp").unwrap();
        let ranges = a.thread_ranges(z, RangeScope::Region(region));
        assert_eq!(ranges.len(), 8);
        for (i, r) in ranges.iter().enumerate() {
            // Thread i's range sits inside its 1/8th block.
            let lo = i as f64 / 8.0;
            let hi = (i + 1) as f64 / 8.0;
            assert!(
                r.min >= lo - 0.01 && r.max <= hi + 0.01,
                "thread {i}: {r:?}"
            );
        }
    }

    #[test]
    fn var_regions_rank_the_parallel_region_first() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 4));
        let z = a.var_named("z").unwrap();
        let regions = a.var_regions(z);
        assert!(!regions.is_empty());
        let (top, share) = regions[0];
        assert_eq!(a.profile().func_name(top), "CalcForce._omp");
        assert!(share > 0.0 && share <= 1.0);
    }

    #[test]
    fn first_touch_sites_name_the_init_code() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 64));
        let z = a.var_named("z").unwrap();
        let sites = a.first_touch_sites(z);
        assert_eq!(sites.len(), 1);
        let (tid, domain, path) = &sites[0];
        assert_eq!(*tid, 0);
        assert_eq!(*domain, DomainId(0));
        assert!(path.contains("main"));
    }

    #[test]
    fn lpi_none_without_latency_capability() {
        // No init phase: MRK sees only the compute phase's L3-miss events.
        let a = Analyzer::new(profile_with(MechanismKind::Mrk, 1, 2, false));
        let pa = a.program();
        assert_eq!(pa.lpi_numa, None);
        // Fallback verdict still fires on remote fraction.
        assert!(pa.warrants_optimization());
    }

    #[test]
    fn merged_totals_equal_sum_of_threads() {
        let profile = bottleneck_profile(MechanismKind::Ibs, 8);
        let by_hand: u64 = profile.threads.iter().map(|t| t.totals.samples_mem).sum();
        let a = Analyzer::new(profile);
        assert_eq!(a.totals().samples_mem, by_hand);
    }

    #[test]
    fn shared_engine_analyzers_see_one_profile() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let b = Analyzer::from_engine(Arc::clone(a.engine()));
        assert!(std::ptr::eq(a.profile(), b.profile()));
        assert_eq!(a.totals(), b.totals());
    }

    /// Satellite: the one miss-behavior contract, exercised for every
    /// `VarId`-taking accessor with an id the profile cannot have.
    #[test]
    fn unknown_var_id_yields_documented_empty_results() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let bogus = VarId(u32::MAX);
        assert_eq!(a.var_metrics(bogus), MetricSet::new(a.profile().domains));
        assert!(a.thread_ranges(bogus, RangeScope::Program).is_empty());
        assert!(a
            .thread_ranges_with_threshold(bogus, RangeScope::Program, 0.0)
            .is_empty());
        assert!(a
            .thread_ranges(bogus, RangeScope::Region(FuncId(0)))
            .is_empty());
        assert!(a.var_regions(bogus).is_empty());
        assert!(a.first_touch_sites(bogus).is_empty());
        assert_eq!(
            a.merged_range(&RangeKey {
                var: bogus,
                bin: 0,
                scope: RangeScope::Program
            }),
            None
        );
    }

    #[test]
    fn interned_lookups_match_linear_scans() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let p = a.profile();
        assert_eq!(a.var_named("z"), p.var_by_name("z").map(|r| r.id));
        assert_eq!(a.var_named("nope"), None);
        assert_eq!(
            a.region_named("CalcForce._omp"),
            p.func_names
                .iter()
                .position(|n| n == "CalcForce._omp")
                .map(|i| FuncId(i as u32))
        );
        assert_eq!(a.region_named("nope"), None);
    }
}
