//! Profile merging and derived metrics (the `hpcprof` role, §7.2).
//!
//! Merging thread profiles accumulates metric values but applies a
//! *[min, max] reduction* to address ranges — the one customization the
//! paper needed in HPCToolkit's profile merger.

use numa_machine::DomainId;
use numa_profiler::{
    MetricSet, NumaProfile, RangeKey, RangeScope, RangeStat, VarId, LPI_THRESHOLD,
};
use numa_sampling::MechanismKind;
use numa_sim::{FuncId, VarKind};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Whole-program derived metrics (§4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProgramAnalysis {
    pub mechanism: MechanismKind,
    /// Program-wide NUMA latency per instruction. Eq. 2 for mechanisms
    /// whose samples carry latency and that sample the full instruction
    /// stream (IBS); Eq. 3 for event-sampling mechanisms with a hardware
    /// event counter (PEBS-LL); `None` when latency is unavailable (MRK,
    /// PEBS, DEAR, Soft-IBS).
    pub lpi_numa: Option<f64>,
    /// `M_r / (M_l + M_r)` over all samples.
    pub remote_fraction: f64,
    /// Sampled accesses per domain, across all threads.
    pub per_domain: Vec<u64>,
    /// Max-domain share over fair share (1.0 = balanced).
    pub domain_imbalance: f64,
    pub total_samples: u64,
    pub total_latency: u64,
    pub remote_latency: u64,
    /// Fraction of total sampled latency caused by remote accesses.
    pub remote_latency_fraction: f64,
    /// Share of remote latency (or of remote samples, without latency)
    /// attributed to heap / static / stack variables.
    pub heap_share: f64,
    pub static_share: f64,
    pub stack_share: f64,
}

impl ProgramAnalysis {
    /// The paper's verdict: is NUMA optimization worthwhile? (§4.2's 0.1
    /// cycles/instruction rule; without latency capability, fall back to a
    /// remote-fraction heuristic as the MRK case studies do.)
    pub fn warrants_optimization(&self) -> bool {
        match self.lpi_numa {
            Some(lpi) => lpi > LPI_THRESHOLD,
            None => self.remote_fraction > 0.5,
        }
    }
}

/// Merged (all-thread) view of one variable.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VarAnalysis {
    pub var: VarId,
    pub name: String,
    pub kind: VarKind,
    pub bytes: u64,
    /// Metrics accumulated across threads.
    pub metrics: MetricSet,
    /// This variable's share of program remote latency (or of remote
    /// samples when latency is unavailable).
    pub remote_share: f64,
    /// Variable-level `lpi`: remote latency per sampled access (`None`
    /// without latency capability).
    pub lpi: Option<f64>,
    /// Allocation call path, rendered.
    pub alloc_path: String,
    pub alloc_tid: usize,
}

/// Per-thread normalized [min, max] accessed range of one variable under
/// one scope — a column of the paper's address-centric view (Figure 3's
/// upper-right pane).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadRange {
    pub tid: usize,
    /// Normalized to the variable extent: 0.0 = first byte, 1.0 = last.
    pub min: f64,
    pub max: f64,
    pub samples: u64,
    pub latency: u64,
}

/// The offline analyzer: wraps a profile and answers analysis queries.
pub struct Analyzer {
    profile: NumaProfile,
    totals: MetricSet,
    var_totals: HashMap<VarId, MetricSet>,
    /// Merged ranges (the [min,max]-reduced all-thread view).
    merged_ranges: HashMap<RangeKey, RangeStat>,
}

impl Analyzer {
    pub fn new(profile: NumaProfile) -> Self {
        // Thread merging is embarrassingly parallel: fold per-thread partial
        // aggregates, then reduce.
        let domains = profile.domains;
        let (totals, var_totals, merged_ranges) = profile
            .threads
            .par_iter()
            .map(|t| {
                let mut vt: HashMap<VarId, MetricSet> = HashMap::new();
                for (v, m) in &t.var_metrics {
                    vt.entry(*v)
                        .or_insert_with(|| MetricSet::new(domains))
                        .merge(m);
                }
                let mut mr: HashMap<RangeKey, RangeStat> = HashMap::new();
                for (k, s) in &t.ranges {
                    mr.entry(*k).and_modify(|acc| acc.merge(s)).or_insert(*s);
                }
                (t.totals.clone(), vt, mr)
            })
            .reduce(
                || (MetricSet::new(domains), HashMap::new(), HashMap::new()),
                |(mut t1, mut v1, mut r1), (t2, v2, r2)| {
                    t1.merge(&t2);
                    for (k, m) in v2 {
                        v1.entry(k)
                            .or_insert_with(|| MetricSet::new(domains))
                            .merge(&m);
                    }
                    for (k, s) in r2 {
                        r1.entry(k).and_modify(|acc| acc.merge(&s)).or_insert(s);
                    }
                    (t1, v1, r1)
                },
            );
        Analyzer {
            profile,
            totals,
            var_totals,
            merged_ranges,
        }
    }

    pub fn profile(&self) -> &NumaProfile {
        &self.profile
    }

    /// Program-wide merged metrics.
    pub fn totals(&self) -> &MetricSet {
        &self.totals
    }

    /// Program-wide derived metrics.
    pub fn program(&self) -> ProgramAnalysis {
        let p = &self.profile;
        let lpi = match p.mechanism {
            // Eq. 2: sampled remote latency over sampled instructions.
            MechanismKind::Ibs => self.totals.lpi_numa(),
            // Eq. 3: average latency per sampled event × absolute events /
            // absolute instructions (both from hardware counters).
            MechanismKind::PebsLl => {
                let events: u64 = p.threads.iter().map(|t| t.numa_events).sum();
                let instr = p.total_instructions();
                if self.totals.samples_mem == 0 || instr == 0 {
                    None
                } else {
                    let avg_remote_per_sample =
                        self.totals.latency_remote as f64 / self.totals.samples_mem as f64;
                    Some(avg_remote_per_sample * events as f64 / instr as f64)
                }
            }
            _ => None,
        };
        let shares = self.kind_shares();
        ProgramAnalysis {
            mechanism: p.mechanism,
            lpi_numa: lpi,
            remote_fraction: self.totals.remote_fraction(),
            per_domain: self.totals.per_domain.clone(),
            domain_imbalance: self.totals.domain_imbalance(),
            total_samples: self.totals.samples_mem,
            total_latency: self.totals.latency_total,
            remote_latency: self.totals.latency_remote,
            remote_latency_fraction: if self.totals.latency_total == 0 {
                0.0
            } else {
                self.totals.latency_remote as f64 / self.totals.latency_total as f64
            },
            heap_share: shares.0,
            static_share: shares.1,
            stack_share: shares.2,
        }
    }

    /// (heap, static, stack) shares of remote cost.
    fn kind_shares(&self) -> (f64, f64, f64) {
        let mut heap = 0u64;
        let mut stat = 0u64;
        let mut stack = 0u64;
        for (v, m) in &self.var_totals {
            let w = self.remote_weight(m);
            match self.profile.var(*v).map(|rec| rec.kind) {
                Some(VarKind::Heap) => heap += w,
                Some(VarKind::Static) => stat += w,
                Some(VarKind::Stack) => stack += w,
                // Samples attributed to a variable the profile has no
                // record for (malformed input): leave them unclassified.
                None => {}
            }
        }
        let total = self.remote_weight(&self.totals);
        if total == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                heap as f64 / total as f64,
                stat as f64 / total as f64,
                stack as f64 / total as f64,
            )
        }
    }

    /// Cost weight used for rankings: remote latency when available,
    /// remote sample count otherwise.
    fn remote_weight(&self, m: &MetricSet) -> u64 {
        if self.profile.capabilities.latency {
            m.latency_remote
        } else {
            m.m_remote
        }
    }

    /// Merged metrics of one variable (zeroed if never sampled).
    pub fn var_metrics(&self, var: VarId) -> MetricSet {
        self.var_totals
            .get(&var)
            .cloned()
            .unwrap_or_else(|| MetricSet::new(self.profile.domains))
    }

    /// All sampled variables, ranked by remote cost (highest first) — the
    /// "hot variables" list the case studies walk down.
    pub fn hot_variables(&self) -> Vec<VarAnalysis> {
        let program_total = self.remote_weight(&self.totals).max(1);
        let mut out: Vec<VarAnalysis> = self
            .var_totals
            .iter()
            .filter_map(|(v, m)| {
                // Skip metric entries whose variable record is missing
                // (malformed profile) rather than crash the ranking.
                let rec = self.profile.var(*v)?;
                Some(VarAnalysis {
                    var: *v,
                    name: rec.name.clone(),
                    kind: rec.kind,
                    bytes: rec.bytes,
                    metrics: m.clone(),
                    remote_share: self.remote_weight(m) as f64 / program_total as f64,
                    lpi: m.lpi_numa(),
                    alloc_path: rec
                        .alloc_path
                        .iter()
                        .map(|f| self.profile.func_name(f.func).to_string())
                        .collect::<Vec<_>>()
                        .join(" > "),
                    alloc_tid: rec.alloc_tid,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            self.remote_weight(&b.metrics)
                .cmp(&self.remote_weight(&a.metrics))
                .then(a.var.cmp(&b.var))
        });
        out
    }

    /// Per-thread normalized [min,max] ranges of `var` under `scope`,
    /// merged over each thread's *hot* bins (§5.2's rule of using hot bins
    /// to represent the pattern). A bin is hot for a thread if it holds at
    /// least `hot_bin_threshold` of the thread's *mean* per-bin weight:
    /// relative-to-mean hotness keeps uniformly spread sweeps intact while
    /// discarding one-off stray samples that would otherwise stretch the
    /// [min,max] range. One entry per thread that sampled the variable.
    pub fn thread_ranges(&self, var: VarId, scope: RangeScope) -> Vec<ThreadRange> {
        self.thread_ranges_with_threshold(var, scope, 0.05)
    }

    pub fn thread_ranges_with_threshold(
        &self,
        var: VarId,
        scope: RangeScope,
        hot_bin_threshold: f64,
    ) -> Vec<ThreadRange> {
        // No record for this variable (malformed profile or a stale id
        // from another run): report no ranges rather than panic.
        let Some(rec) = self.profile.var(var) else {
            return Vec::new();
        };
        let extent = rec.bytes.max(1) as f64;
        let mut out = Vec::new();
        for t in &self.profile.threads {
            // Hotness is judged per thread: a bin represents this thread's
            // pattern only if it holds a meaningful share of the thread's
            // own samples, so one-off stray samples (a rare neighbour-block
            // gather caught by sampling) cannot stretch the [min,max]
            // range — exactly what the paper's hot-bin refinement is for.
            let mut thread_total = 0u64;
            let mut bin_weight: HashMap<u16, u64> = HashMap::new();
            for (k, s) in &t.ranges {
                if k.var == var && k.scope == scope {
                    *bin_weight.entry(k.bin).or_insert(0) += s.count;
                    thread_total += s.count;
                }
            }
            if thread_total == 0 {
                continue;
            }
            let mean = thread_total as f64 / bin_weight.len() as f64;
            let cut = (hot_bin_threshold * mean).max(2.0);
            let hot = |bin: u16| bin_weight[&bin] as f64 >= cut;
            let mut merged: Option<RangeStat> = None;
            for (k, s) in &t.ranges {
                if k.var == var && k.scope == scope && hot(k.bin) {
                    match &mut merged {
                        Some(acc) => acc.merge(s),
                        None => merged = Some(*s),
                    }
                }
            }
            if let Some(s) = merged {
                out.push(ThreadRange {
                    tid: t.tid,
                    // Saturate: a corrupted range whose addresses fall
                    // below the variable's base must not wrap to huge
                    // offsets.
                    min: s.min_addr.saturating_sub(rec.addr) as f64 / extent,
                    max: s.max_addr.saturating_sub(rec.addr) as f64 / extent,
                    samples: s.count,
                    latency: s.latency,
                });
            }
        }
        out.sort_by_key(|r| r.tid);
        out
    }

    /// Parallel regions in which `var` was sampled, with each region's
    /// share of the variable's cost (latency if available, else samples).
    /// Sorted by descending share — the drill-down of Figures 4→5.
    pub fn var_regions(&self, var: VarId) -> Vec<(FuncId, f64)> {
        let mut per_region: HashMap<FuncId, u64> = HashMap::new();
        let mut program_total = 0u64;
        let use_latency = self.profile.capabilities.latency;
        for (k, s) in &self.merged_ranges {
            if k.var != var {
                continue;
            }
            // Weight by *NUMA* latency where available: local traffic
            // (e.g. the master's initialization) must not dilute region
            // shares (the paper's 74.2% is a share of NUMA access latency).
            let w = if use_latency {
                s.latency_remote
            } else {
                s.count
            };
            match k.scope {
                RangeScope::Program => program_total += w,
                RangeScope::Region(r) => *per_region.entry(r).or_insert(0) += w,
            }
        }
        if program_total == 0 {
            return Vec::new();
        }
        let mut out: Vec<(FuncId, f64)> = per_region
            .into_iter()
            .map(|(r, w)| (r, w as f64 / program_total as f64))
            .collect();
        // total_cmp: shares are finite here, but a NaN (degenerate
        // profile) must not panic the sort.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        out
    }

    /// First-touch records for a variable, with rendered call paths —
    /// "identify where data pages are bound to NUMA domains" (§2).
    pub fn first_touch_sites(&self, var: VarId) -> Vec<(usize, DomainId, String)> {
        self.profile
            .first_touches
            .iter()
            .filter(|ft| ft.var == var)
            .map(|ft| {
                let path = ft
                    .path
                    .iter()
                    .map(|f| self.profile.func_name(f.func).to_string())
                    .collect::<Vec<_>>()
                    .join(" > ");
                (ft.tid, ft.domain, path)
            })
            .collect()
    }

    /// Merged range stat for an explicit key (tests / views).
    pub fn merged_range(&self, key: &RangeKey) -> Option<&RangeStat> {
        self.merged_ranges.get(key)
    }

    /// Merge all threads' calling context trees into one, accumulating
    /// exclusive metrics on shared paths — the code-centric pane of the
    /// viewer.
    pub fn merged_cct(&self) -> numa_profiler::Cct {
        let mut merged = numa_profiler::Cct::new(self.profile.domains);
        for t in &self.profile.threads {
            for id in 0..t.cct.len() as numa_profiler::NodeId {
                let node = t.cct.node(id);
                if node.metrics == MetricSet::new(self.profile.domains) {
                    continue; // nothing attributed exactly here
                }
                // Rebuild the node's path of keys and resolve it in the
                // merged tree.
                let path = t.cct.path_to(id);
                let mut cur = numa_profiler::ROOT;
                for &pid in path.iter().skip(1) {
                    cur = merged.child(cur, t.cct.node(pid).key);
                }
                merged.node_mut(cur).metrics.merge(&node.metrics);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{Machine, MachinePreset, PlacementPolicy};
    use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig};
    use numa_sampling::MechanismConfig;
    use numa_sim::{ExecMode, Program};
    use std::sync::Arc;

    /// Master-init array, block-partitioned worker reads: the canonical
    /// first-touch bottleneck.
    /// Build the canonical first-touch bottleneck: master-initialized
    /// array (everything lands in domain 0), block-partitioned worker
    /// sweeps. `iterations` weights the compute phase like a real solver
    /// loop; `init` toggles the serial init (without it, placement is
    /// forced with an explicit bind, as when only the compute phase is
    /// profiled).
    fn profile_with(
        kind: MechanismKind,
        period: u64,
        iterations: usize,
        init: bool,
    ) -> NumaProfile {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(kind, period));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
        let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
        let size = 4u64 << 20;
        let mut base = 0;
        p.serial("main", |ctx| {
            let policy = if init {
                PlacementPolicy::FirstTouch
            } else {
                PlacementPolicy::Bind(numa_machine::DomainId(0))
            };
            base = ctx.alloc("z", size, policy);
            if init {
                ctx.store_range(base, size / 64, 64);
            }
        });
        for _ in 0..iterations {
            p.parallel("CalcForce._omp", |tid, ctx| {
                let chunk = size / 8;
                ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
            });
        }
        finish_profile(p, profiler)
    }

    fn bottleneck_profile(kind: MechanismKind, period: u64) -> NumaProfile {
        profile_with(kind, period, 2, true)
    }

    #[test]
    fn program_analysis_flags_the_bottleneck() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let pa = a.program();
        // 7 of 8 threads are remote to domain 0.
        assert!(
            pa.remote_fraction > 0.5,
            "remote fraction {}",
            pa.remote_fraction
        );
        assert!(
            pa.domain_imbalance > 4.0,
            "imbalance {}",
            pa.domain_imbalance
        );
        assert!(pa.lpi_numa.is_some());
        assert!(pa.warrants_optimization());
        assert!(pa.heap_share > 0.9);
    }

    #[test]
    fn hot_variables_ranked_and_attributed() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 16));
        let hot = a.hot_variables();
        assert_eq!(hot.len(), 1);
        let z = &hot[0];
        assert_eq!(z.name, "z");
        assert!(z.remote_share > 0.9);
        assert!(z.metrics.m_remote > z.metrics.m_local);
        assert!(z.alloc_path.contains("main"));
    }

    #[test]
    fn thread_ranges_form_a_staircase() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 4));
        let z = a.profile().var_by_name("z").unwrap().id;
        // Worker-region scope isolates the parallel read pattern.
        let region = a
            .profile()
            .func_names
            .iter()
            .position(|n| n == "CalcForce._omp")
            .map(|i| FuncId(i as u32))
            .unwrap();
        let ranges = a.thread_ranges(z, RangeScope::Region(region));
        assert_eq!(ranges.len(), 8);
        for (i, r) in ranges.iter().enumerate() {
            // Thread i's range sits inside its 1/8th block.
            let lo = i as f64 / 8.0;
            let hi = (i + 1) as f64 / 8.0;
            assert!(
                r.min >= lo - 0.01 && r.max <= hi + 0.01,
                "thread {i}: {r:?}"
            );
        }
    }

    #[test]
    fn var_regions_rank_the_parallel_region_first() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 4));
        let z = a.profile().var_by_name("z").unwrap().id;
        let regions = a.var_regions(z);
        assert!(!regions.is_empty());
        let (top, share) = regions[0];
        assert_eq!(a.profile().func_name(top), "CalcForce._omp");
        assert!(share > 0.0 && share <= 1.0);
    }

    #[test]
    fn first_touch_sites_name_the_init_code() {
        let a = Analyzer::new(bottleneck_profile(MechanismKind::Ibs, 64));
        let z = a.profile().var_by_name("z").unwrap().id;
        let sites = a.first_touch_sites(z);
        assert_eq!(sites.len(), 1);
        let (tid, domain, path) = &sites[0];
        assert_eq!(*tid, 0);
        assert_eq!(*domain, DomainId(0));
        assert!(path.contains("main"));
    }

    #[test]
    fn lpi_none_without_latency_capability() {
        // No init phase: MRK sees only the compute phase's L3-miss events.
        let a = Analyzer::new(profile_with(MechanismKind::Mrk, 1, 2, false));
        let pa = a.program();
        assert_eq!(pa.lpi_numa, None);
        // Fallback verdict still fires on remote fraction.
        assert!(pa.warrants_optimization());
    }

    #[test]
    fn merged_totals_equal_sum_of_threads() {
        let profile = bottleneck_profile(MechanismKind::Ibs, 8);
        let by_hand: u64 = profile.threads.iter().map(|t| t.totals.samples_mem).sum();
        let a = Analyzer::new(profile);
        assert_eq!(a.totals().samples_mem, by_hand);
    }
}
