//! Profile differencing: quantify what an optimization changed.
//!
//! The paper's workflow is profile → edit the first-touch code →
//! re-profile; this module automates the "did the fix land?" comparison
//! between a baseline profile and an optimized one. Variables are matched
//! by source name (addresses differ between runs), and the program-level
//! derived metrics are compared side by side.

use crate::analyzer::{Analyzer, ProgramAnalysis};
use numa_sim::VarKind;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Before/after pair for one metric.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Delta {
    pub before: f64,
    pub after: f64,
}

impl Delta {
    fn new(before: f64, after: f64) -> Self {
        Delta { before, after }
    }

    /// Relative change (negative = reduction).
    pub fn relative(&self) -> f64 {
        if self.before == 0.0 {
            if self.after == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.after - self.before) / self.before
        }
    }
}

/// Per-variable comparison (matched by name).
#[derive(Clone, Debug, Serialize)]
pub struct VarDelta {
    pub name: String,
    pub kind: VarKind,
    /// Remote-homed sampled accesses (`M_r`).
    pub m_remote: Delta,
    /// Sampled remote latency.
    pub latency_remote: Delta,
    /// Present in only one of the profiles.
    pub only_in: Option<&'static str>,
}

/// The full comparison.
#[derive(Clone, Debug, Serialize)]
pub struct DiffReport {
    pub program_before: ProgramAnalysis,
    pub program_after: ProgramAnalysis,
    pub remote_fraction: Delta,
    pub remote_latency: Delta,
    pub lpi: Option<Delta>,
    pub vars: Vec<VarDelta>,
}

/// Compare two analyzed profiles (same workload, different placements or
/// code versions).
pub fn diff(before: &Analyzer, after: &Analyzer) -> DiffReport {
    let pb = before.program();
    let pa = after.program();

    // Index variables by name. Variables can legitimately repeat (e.g.
    // re-allocation with the same name); accumulate.
    // (kind, m_remote per side, latency_remote per side, present per side)
    type SideEntry = (VarKind, [u64; 2], [u64; 2], [bool; 2]);
    let mut names: BTreeMap<String, SideEntry> = BTreeMap::new();
    for (side, analyzer) in [(0usize, before), (1usize, after)] {
        for v in analyzer.hot_variables() {
            let e = names
                .entry(v.name.clone())
                .or_insert((v.kind, [0, 0], [0, 0], [false, false]));
            e.1[side] += v.metrics.m_remote;
            e.2[side] += v.metrics.latency_remote;
            e.3[side] = true;
        }
    }
    let mut vars: Vec<VarDelta> = names
        .into_iter()
        .map(|(name, (kind, mr, lat, present))| VarDelta {
            name,
            kind,
            m_remote: Delta::new(mr[0] as f64, mr[1] as f64),
            latency_remote: Delta::new(lat[0] as f64, lat[1] as f64),
            only_in: match present {
                [true, false] => Some("before"),
                [false, true] => Some("after"),
                _ => None,
            },
        })
        .collect();
    // Biggest absolute improvement first.
    vars.sort_by(|a, b| {
        let wa = a.latency_remote.before - a.latency_remote.after;
        let wb = b.latency_remote.before - b.latency_remote.after;
        wb.total_cmp(&wa)
    });

    DiffReport {
        remote_fraction: Delta::new(pb.remote_fraction, pa.remote_fraction),
        remote_latency: Delta::new(pb.remote_latency as f64, pa.remote_latency as f64),
        lpi: match (pb.lpi_numa, pa.lpi_numa) {
            (Some(b), Some(a)) => Some(Delta::new(b, a)),
            _ => None,
        },
        program_before: pb,
        program_after: pa,
        vars,
    }
}

impl DiffReport {
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("NUMA profile diff (before → after)\n");
        s.push_str(&"=".repeat(72));
        s.push('\n');
        if let Some(lpi) = &self.lpi {
            let _ = writeln!(
                s,
                "lpi_NUMA:           {:.3} → {:.3}  ({:+.1}%)",
                lpi.before,
                lpi.after,
                lpi.relative() * 100.0
            );
        }
        let _ = writeln!(
            s,
            "remote fraction:    {:.1}% → {:.1}%",
            self.remote_fraction.before * 100.0,
            self.remote_fraction.after * 100.0
        );
        let _ = writeln!(
            s,
            "remote latency:     {} → {}  ({:+.1}%)",
            self.remote_latency.before as u64,
            self.remote_latency.after as u64,
            self.remote_latency.relative() * 100.0
        );
        s.push('\n');
        let _ = writeln!(
            s,
            "{:<28} {:>14} {:>14} {:>10}",
            "variable", "rem.lat before", "rem.lat after", "change"
        );
        s.push_str(&"-".repeat(70));
        s.push('\n');
        for v in &self.vars {
            let change = match v.only_in {
                Some(side) => format!("only {side}"),
                None => format!("{:+.1}%", v.latency_remote.relative() * 100.0),
            };
            let _ = writeln!(
                s,
                "{:<28} {:>14} {:>14} {:>10}",
                v.name, v.latency_remote.before as u64, v.latency_remote.after as u64, change
            );
        }
        s
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diff serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{DomainId, Machine, MachinePreset, PlacementPolicy};
    use numa_profiler::{finish_profile, NumaProfiler, ProfilerConfig};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::{ExecMode, Program};
    use std::sync::Arc;

    fn run(policy: PlacementPolicy) -> Analyzer {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let cfg = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), cfg, 8));
        let mut p = Program::new(machine.clone(), 8, ExecMode::Sequential, profiler.clone());
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("data", 8 << 20, policy);
        });
        p.parallel("sweep", |tid, ctx| {
            let chunk = (8u64 << 20) / 8;
            for off in (0..chunk).step_by(64) {
                ctx.load(base + tid as u64 * chunk + off, 8);
            }
        });
        Analyzer::new(finish_profile(p, profiler))
    }

    #[test]
    fn diff_shows_the_fix_landing() {
        let machine_for_policy = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let before = run(PlacementPolicy::Bind(DomainId(0)));
        let after = run(machine_for_policy.blockwise_for_threads(8));
        let d = diff(&before, &after);
        assert!(d.remote_fraction.before > 0.8);
        assert!(d.remote_fraction.after < 0.05);
        assert!(d.lpi.unwrap().relative() < -0.9, "lpi collapsed");
        let data = d.vars.iter().find(|v| v.name == "data").unwrap();
        assert!(data.latency_remote.relative() < -0.9);
        assert_eq!(data.only_in, None);
        let text = d.render();
        assert!(text.contains("data"));
        assert!(text.contains("lpi_NUMA"));
    }

    #[test]
    fn diff_flags_variables_present_on_one_side() {
        let a = run(PlacementPolicy::Bind(DomainId(0)));
        let b = run(PlacementPolicy::Bind(DomainId(0)));
        let mut d = diff(&a, &b);
        // Forge a one-sided variable to exercise rendering.
        d.vars.push(VarDelta {
            name: "ghost".into(),
            kind: numa_sim::VarKind::Heap,
            m_remote: Delta::new(10.0, 0.0),
            latency_remote: Delta::new(100.0, 0.0),
            only_in: Some("before"),
        });
        assert!(d.render().contains("only before"));
    }

    #[test]
    fn delta_relative_handles_zero_baselines() {
        assert_eq!(Delta::new(0.0, 0.0).relative(), 0.0);
        assert!(Delta::new(0.0, 5.0).relative().is_infinite());
        assert!((Delta::new(10.0, 5.0).relative() + 0.5).abs() < 1e-12);
    }
}
