//! Access-pattern classification and optimization guidance.
//!
//! The paper's analyst reads the address-centric view and decides which
//! distribution fixes a variable (block-wise for the LULESH staircase,
//! regrouping + parallel first touch for Blackscholes' overlapping
//! staircase, interleaving for variables every thread sweeps). This module
//! automates that read: it classifies the per-thread \[min,max\] pattern and
//! maps each class to the paper's corresponding optimization.

use crate::analyzer::ThreadRange;
use serde::{Deserialize, Serialize};

/// Shape of a variable's per-thread access ranges.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Disjoint ascending blocks, one per thread (LULESH `z`, Figure 3):
    /// thread `i` touches roughly the `i`-th slice.
    Blocked,
    /// Ascending per-thread windows with heavy overlap (Blackscholes
    /// `buffer`, Figure 8; UMT `STime`): the layout interleaves logically
    /// private data.
    StaggeredOverlap,
    /// Every thread sweeps (nearly) the whole variable: no per-thread
    /// affinity exists.
    FullRange,
    /// Only one thread touches the variable.
    SingleThread,
    /// No recognizable structure at this scope (AMG's whole-program view of
    /// `RAP_diag_data`, Figure 4): drill into per-region views.
    Irregular,
}

/// The optimization the tool recommends (§2's strategies).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Recommendation {
    /// Distribute pages block-wise across domains at the first-touch site
    /// (co-location: maximizes local accesses, reduces contention).
    BlockWise,
    /// Regroup the layout (e.g. sections → array-of-structures) so each
    /// thread's data becomes contiguous, then distribute block-wise via a
    /// parallelized initialization (first touch by the owning thread).
    RegroupThenBlockWise,
    /// Interleave pages across domains to spread bandwidth (when threads
    /// share the whole variable, co-location is impossible; at least avoid
    /// centralized contention).
    Interleave,
    /// Bind the variable to the owning thread's domain.
    BindToOwner,
    /// Inspect dominant parallel regions and re-classify there.
    DrillDownPerRegion,
    /// No action needed.
    None,
}

/// Classification thresholds (exposed for the ablation benches).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Median normalized coverage above which the pattern is `FullRange`.
    pub full_range_coverage: f64,
    /// Fraction of adjacent thread pairs that must be ascending for a
    /// staircase.
    pub staircase_monotonicity: f64,
    /// Minimum mean spacing between consecutive threads' range *centers*,
    /// relative to the mean range width, for a staircase to count as
    /// `Blocked`. Disjoint blocks have spacing ≈ width (ratio ~1); heavily
    /// overlapped staggered windows have spacing ≪ width. Centers are
    /// robust where raw extent overlap is not: a blocked partition whose
    /// stencil reaches into the neighbour block still has block-spaced
    /// centers.
    pub blocked_min_center_spacing: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            full_range_coverage: 0.9,
            staircase_monotonicity: 0.8,
            blocked_min_center_spacing: 0.4,
        }
    }
}

/// Classify per-thread ranges (normalized to the variable extent, sorted by
/// tid).
pub fn classify(ranges: &[ThreadRange]) -> AccessPattern {
    classify_with(ranges, &ClassifierConfig::default())
}

pub fn classify_with(ranges: &[ThreadRange], cfg: &ClassifierConfig) -> AccessPattern {
    let mut active: Vec<&ThreadRange> = ranges.iter().filter(|r| r.samples > 0).collect();
    match active.len() {
        0 => return AccessPattern::Irregular,
        1 => return AccessPattern::SingleThread,
        _ => {}
    }

    let mut coverages: Vec<f64> = active.iter().map(|r| r.max - r.min).collect();
    coverages.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_coverage = coverages[coverages.len() / 2];
    if median_coverage >= cfg.full_range_coverage {
        return AccessPattern::FullRange;
    }

    // Trim "broad" outlier threads — typically the master thread, whose
    // serial initialization sweep covers the whole variable (the paper's
    // Figure 3 shows exactly this: "other than thread 0, each thread
    // touches a subset of z"). A thread counts as an outlier if its
    // coverage is ≥4× the median; trimming only applies when such threads
    // are rare (≤10%) — if many threads range widely, that *is* the
    // pattern and must reach the staircase/irregular tests untouched.
    let outlier_cut = 4.0 * median_coverage;
    let outliers = active
        .iter()
        .filter(|r| r.max - r.min >= outlier_cut)
        .count();
    if outliers > 0 && outliers * 10 <= active.len() {
        active.retain(|r| r.max - r.min < outlier_cut);
    }
    if active.len() < 2 {
        return AccessPattern::SingleThread;
    }

    // Staircase test: are window starts (and ends) ascending with tid?
    let pairs = active.len() - 1;
    let ascending = active
        .windows(2)
        .filter(|w| w[0].min <= w[1].min + 1e-9 && w[0].max <= w[1].max + 1e-9)
        .count();
    let monotone = ascending as f64 / pairs as f64;
    if monotone >= cfg.staircase_monotonicity {
        let mean_width: f64 =
            active.iter().map(|r| r.max - r.min).sum::<f64>() / active.len() as f64;
        if mean_width <= 1e-12 {
            return AccessPattern::Blocked;
        }
        let mean_spacing: f64 = active
            .windows(2)
            .map(|w| {
                let c0 = (w[0].min + w[0].max) / 2.0;
                let c1 = (w[1].min + w[1].max) / 2.0;
                (c1 - c0).max(0.0)
            })
            .sum::<f64>()
            / pairs as f64;
        return if mean_spacing / mean_width >= cfg.blocked_min_center_spacing {
            AccessPattern::Blocked
        } else {
            AccessPattern::StaggeredOverlap
        };
    }

    AccessPattern::Irregular
}

/// Map a pattern to the paper's optimization strategy.
pub fn recommend(pattern: AccessPattern) -> Recommendation {
    match pattern {
        AccessPattern::Blocked => Recommendation::BlockWise,
        AccessPattern::StaggeredOverlap => Recommendation::RegroupThenBlockWise,
        AccessPattern::FullRange => Recommendation::Interleave,
        AccessPattern::SingleThread => Recommendation::BindToOwner,
        AccessPattern::Irregular => Recommendation::DrillDownPerRegion,
    }
}

impl AccessPattern {
    pub fn name(self) -> &'static str {
        match self {
            AccessPattern::Blocked => "blocked staircase",
            AccessPattern::StaggeredOverlap => "staggered overlapping",
            AccessPattern::FullRange => "full-range",
            AccessPattern::SingleThread => "single-thread",
            AccessPattern::Irregular => "irregular",
        }
    }
}

impl Recommendation {
    pub fn describe(self) -> &'static str {
        match self {
            Recommendation::BlockWise => {
                "distribute pages block-wise across NUMA domains at the first-touch site"
            }
            Recommendation::RegroupThenBlockWise => {
                "regroup the data layout so per-thread data is contiguous, then parallelize \
                 the initialization so each thread first-touches its own block"
            }
            Recommendation::Interleave => {
                "interleave pages across all NUMA domains to spread memory bandwidth"
            }
            Recommendation::BindToOwner => "bind the variable to its owning thread's domain",
            Recommendation::DrillDownPerRegion => {
                "no whole-program pattern; inspect the dominant parallel regions"
            }
            Recommendation::None => "no NUMA action needed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(tid: usize, min: f64, max: f64) -> ThreadRange {
        ThreadRange {
            tid,
            min,
            max,
            samples: 100,
            latency: 1000,
        }
    }

    #[test]
    fn blocked_staircase_detected() {
        // 8 disjoint blocks, like LULESH's z.
        let ranges: Vec<_> = (0..8)
            .map(|i| tr(i, i as f64 / 8.0, (i as f64 + 0.9) / 8.0))
            .collect();
        assert_eq!(classify(&ranges), AccessPattern::Blocked);
        assert_eq!(recommend(AccessPattern::Blocked), Recommendation::BlockWise);
    }

    #[test]
    fn staggered_overlap_detected() {
        // Ascending windows, ~70% overlap — Blackscholes' buffer shape
        // ((0x100,0x700), (0x200,0x800), (0x300,0x900) in Figure 9a).
        let ranges: Vec<_> = (0..8)
            .map(|i| tr(i, i as f64 * 0.05, i as f64 * 0.05 + 0.6))
            .collect();
        assert_eq!(classify(&ranges), AccessPattern::StaggeredOverlap);
        assert_eq!(
            recommend(AccessPattern::StaggeredOverlap),
            Recommendation::RegroupThenBlockWise
        );
    }

    #[test]
    fn full_range_detected() {
        let ranges: Vec<_> = (0..8).map(|i| tr(i, 0.01, 0.99)).collect();
        assert_eq!(classify(&ranges), AccessPattern::FullRange);
        // A ~0.8-coverage staggered span (Blackscholes' five sections) is
        // NOT full-range.
        let staggered: Vec<_> = (0..8)
            .map(|i| tr(i, i as f64 * 0.004, 0.8 + i as f64 * 0.004))
            .collect();
        assert_eq!(classify(&staggered), AccessPattern::StaggeredOverlap);
        assert_eq!(
            recommend(AccessPattern::FullRange),
            Recommendation::Interleave
        );
    }

    #[test]
    fn single_thread_detected() {
        let ranges = vec![tr(3, 0.2, 0.4)];
        assert_eq!(classify(&ranges), AccessPattern::SingleThread);
    }

    #[test]
    fn irregular_when_no_order() {
        // Shuffled windows with no tid correlation.
        let mins = [0.7, 0.1, 0.9, 0.3, 0.5, 0.0, 0.8, 0.2];
        let ranges: Vec<_> = mins
            .iter()
            .enumerate()
            .map(|(i, &m)| tr(i, m, m + 0.05))
            .collect();
        assert_eq!(classify(&ranges), AccessPattern::Irregular);
        assert_eq!(
            recommend(AccessPattern::Irregular),
            Recommendation::DrillDownPerRegion
        );
    }

    #[test]
    fn empty_input_is_irregular() {
        assert_eq!(classify(&[]), AccessPattern::Irregular);
    }

    #[test]
    fn zero_sample_threads_ignored() {
        let mut ranges = vec![tr(0, 0.0, 0.4)];
        ranges.push(ThreadRange {
            tid: 1,
            min: 0.9,
            max: 0.9,
            samples: 0,
            latency: 0,
        });
        assert_eq!(classify(&ranges), AccessPattern::SingleThread);
    }

    #[test]
    fn descending_blocks_are_irregular_not_staircase() {
        let ranges: Vec<_> = (0..8)
            .map(|i| tr(i, (7 - i) as f64 / 8.0, (7 - i) as f64 / 8.0 + 0.1))
            .collect();
        // Monotonicity is 0 in ascending terms — classifier is order-aware
        // but a perfectly descending staircase is still exploitable…
        // we keep it Irregular and let per-region drill-down handle it.
        assert_eq!(classify(&ranges), AccessPattern::Irregular);
    }

    #[test]
    fn classifier_thresholds_are_adjustable() {
        let ranges: Vec<_> = (0..8).map(|i| tr(i, 0.0, 0.75)).collect();
        let strict = ClassifierConfig {
            full_range_coverage: 0.7,
            ..Default::default()
        };
        assert_eq!(classify_with(&ranges, &strict), AccessPattern::FullRange);
        let lax = ClassifierConfig {
            full_range_coverage: 0.9,
            ..Default::default()
        };
        // Identical windows: ascending-with-ties ⇒ staircase with full
        // overlap ⇒ staggered.
        assert_eq!(
            classify_with(&ranges, &lax),
            AccessPattern::StaggeredOverlap
        );
    }
}
