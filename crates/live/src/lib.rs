//! Streaming sample-ingestion sessions for the `hpcd-sim` daemon.
//!
//! One-shot ingestion ships a finished profile as a single blob. Live
//! capture — the norm for NUMA tooling — produces data *while the
//! program runs*, so the daemon needs a way to absorb long, write-heavy
//! streams without holding half-finished runs in its store. This crate
//! provides that layer:
//!
//! * A client **opens** a session ([`SessionManager::open`]) and gets a
//!   session id plus a lease.
//! * It **appends** sequence-numbered chunks
//!   ([`SessionManager::append`]) — a
//!   [`ChunkPayload`] header or
//!   thread batch per chunk. Buffers are bounded per chunk, per
//!   session, and across all sessions; exceeding a bound is a typed
//!   [`SessionError`], never a stall or a disconnect. On durable stores
//!   every accepted chunk is staged in the WAL (group-committed) before
//!   the append is acknowledged.
//! * It **seals** ([`SessionManager::seal`]): the chunks are assembled
//!   into a canonical profile and committed through the ordinary store
//!   ingest path, so a streamed profile is byte-identical — content
//!   hash, set hash, aggregate text — to the same profile ingested
//!   one-shot.
//!
//! Every `open`/`append` renews the session's lease. A client that dies
//! mid-stream stops renewing; the janitor thread reaps the expired
//! session, reclaims its buffers, and discards its staged chunks —
//! partial data is never half-ingested. If the *daemon* dies
//! mid-stream, WAL replay recovers exactly the sealed sessions and
//! drops unsealed ones (see `numa_store::wal`).

use numa_obs::{Counter, Gauge, Registry};
use numa_store::stream::{assemble, ChunkPayload};
use numa_store::{ProfileId, ProfileStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Sizing and lifetime knobs for [`SessionManager::new`].
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// How long a session may sit idle before the janitor reaps it.
    /// Every open and every accepted append renews the lease.
    pub lease: Duration,
    /// Largest accepted chunk (serialized bytes).
    pub max_chunk_bytes: usize,
    /// Largest buffered session (sum of its chunk bytes).
    pub max_session_bytes: usize,
    /// Total buffered bytes across all open sessions; appends beyond
    /// this are rejected with [`SessionError::Backpressure`].
    pub max_open_bytes: usize,
    /// Most sessions open at once.
    pub max_sessions: usize,
    /// How often the janitor thread checks for expired leases.
    pub janitor_period: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            lease: Duration::from_secs(30),
            max_chunk_bytes: 4 << 20,
            max_session_bytes: 64 << 20,
            max_open_bytes: 256 << 20,
            max_sessions: 64,
            janitor_period: Duration::from_millis(250),
        }
    }
}

/// Typed streaming failures. Backpressure variants
/// ([`SessionError::TooManySessions`], [`SessionError::Backpressure`],
/// [`SessionError::SessionFull`]) tell a well-behaved client to retry
/// later or fall back to one-shot ingestion; the rest are client bugs
/// or expired leases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// No such open session (never opened, already sealed/aborted, or
    /// lease-reaped).
    UnknownSession { session: u64 },
    /// Chunks must arrive strictly in sequence, exactly once.
    BadSequence {
        session: u64,
        got: u64,
        expected: u64,
    },
    /// One chunk exceeded [`LiveConfig::max_chunk_bytes`].
    ChunkTooLarge {
        session: u64,
        len: usize,
        max: usize,
    },
    /// The session's buffer would exceed
    /// [`LiveConfig::max_session_bytes`].
    SessionFull {
        session: u64,
        bytes: usize,
        max: usize,
    },
    /// Too many sessions are already open.
    TooManySessions { open: usize, max: usize },
    /// The daemon-wide open-bytes budget is exhausted.
    Backpressure { open_bytes: usize, max: usize },
    /// The chunk was not a valid [`ChunkPayload`].
    ChunkParse {
        session: u64,
        seq: u64,
        message: String,
    },
    /// The sealed chunk set does not assemble into a profile (missing
    /// or duplicate header, duplicate thread ids, no threads).
    Incomplete { session: u64, reason: String },
    /// The durable store could not log the chunk or seal: the WAL
    /// append failed and was rolled back, and the operation was **not**
    /// applied. For an append, the session stays open at the same
    /// expected sequence number so the client can retry the chunk; for
    /// a seal, the session is discarded and must be re-streamed.
    NotDurable { session: u64, message: String },
}

impl SessionError {
    /// Whether this rejection is capacity-induced (retry later) rather
    /// than a client error.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            SessionError::TooManySessions { .. }
                | SessionError::Backpressure { .. }
                | SessionError::SessionFull { .. }
        )
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession { session } => {
                write!(
                    f,
                    "no open session {session:#x} (sealed, aborted, or lease expired)"
                )
            }
            SessionError::BadSequence {
                session,
                got,
                expected,
            } => write!(
                f,
                "session {session:#x}: chunk seq {got} out of order (expected {expected})"
            ),
            SessionError::ChunkTooLarge { session, len, max } => write!(
                f,
                "session {session:#x}: chunk of {len} bytes exceeds the {max}-byte limit"
            ),
            SessionError::SessionFull {
                session,
                bytes,
                max,
            } => write!(
                f,
                "session {session:#x}: buffer would reach {bytes} bytes (limit {max})"
            ),
            SessionError::TooManySessions { open, max } => {
                write!(f, "{open} sessions already open (limit {max})")
            }
            SessionError::Backpressure { open_bytes, max } => write!(
                f,
                "daemon-wide session buffers would reach {open_bytes} bytes (limit {max})"
            ),
            SessionError::ChunkParse {
                session,
                seq,
                message,
            } => write!(
                f,
                "session {session:#x}: chunk {seq} does not parse: {message}"
            ),
            SessionError::Incomplete { session, reason } => {
                write!(f, "session {session:#x} does not assemble: {reason}")
            }
            SessionError::NotDurable { session, message } => {
                write!(
                    f,
                    "session {session:#x}: operation not durable (rolled back): {message}"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What [`SessionManager::open`] hands back: the session id plus the
/// limits the client must respect.
#[derive(Clone, Copy, Debug)]
pub struct SessionTicket {
    pub session: u64,
    pub lease: Duration,
    pub max_chunk_bytes: usize,
    pub max_session_bytes: usize,
}

/// Outcome of a successful [`SessionManager::seal`].
#[derive(Clone, Copy, Debug)]
pub struct Sealed {
    pub id: ProfileId,
    /// `false`: the assembled profile deduplicated against an existing
    /// one (identical content already stored).
    pub added: bool,
    /// Chunks the session accumulated.
    pub chunks: u64,
}

/// Live-ingestion counters for observability (`server-stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Sessions open right now.
    pub open_sessions: usize,
    /// Bytes buffered across open sessions right now.
    pub open_bytes: usize,
    pub opened: u64,
    pub sealed: u64,
    pub aborted: u64,
    /// Expired leases the janitor reclaimed.
    pub reaped: u64,
    pub chunks_appended: u64,
    /// Appends/opens rejected for capacity (see
    /// [`SessionError::is_backpressure`]).
    pub backpressure_rejections: u64,
}

struct LiveSession {
    label: String,
    chunks: Vec<ChunkPayload>,
    bytes: usize,
    next_seq: u64,
    deadline: Instant,
}

#[derive(Default)]
struct Inner {
    sessions: HashMap<u64, LiveSession>,
    open_bytes: usize,
}

/// The streaming-session registry: one per daemon, shared by every
/// worker thread. Construction spawns the janitor thread; call
/// [`SessionManager::stop`] to join it (sessions themselves live until
/// sealed, aborted, or lease-reaped).
pub struct SessionManager {
    store: Arc<ProfileStore>,
    config: LiveConfig,
    inner: Mutex<Inner>,
    /// Session ids are time-seeded (`unix seconds << 20`, plus a
    /// counter) so ids never repeat across daemon restarts — stale
    /// chunk records in a recovered WAL can never be mistaken for a
    /// new session's.
    next_id: AtomicU64,
    opened: Counter,
    sealed: Counter,
    aborted: Counter,
    reaped: Counter,
    chunks_appended: Counter,
    backpressure: Counter,
    /// Mirrors of `Inner::{sessions.len(), open_bytes}`, updated inside
    /// the same lock critical sections that mutate them — a scrape sees
    /// gauges that exactly match the admission bookkeeping.
    open_sessions_gauge: Gauge,
    open_bytes_gauge: Gauge,
    stop_tx: Mutex<Option<mpsc::Sender<()>>>,
    janitor: Mutex<Option<JoinHandle<()>>>,
}

impl SessionManager {
    /// Build a manager over `store` and spawn its janitor thread. The
    /// janitor holds only a weak reference, so dropping every `Arc`
    /// also ends the thread (at its next wake-up).
    pub fn new(store: Arc<ProfileStore>, config: LiveConfig) -> Arc<SessionManager> {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
            << 20;
        let (stop_tx, stop_rx) = mpsc::channel();
        let period = config.janitor_period;
        let mgr = Arc::new(SessionManager {
            store,
            config,
            inner: Mutex::new(Inner::default()),
            next_id: AtomicU64::new(seed),
            opened: Counter::new(),
            sealed: Counter::new(),
            aborted: Counter::new(),
            reaped: Counter::new(),
            chunks_appended: Counter::new(),
            backpressure: Counter::new(),
            open_sessions_gauge: Gauge::new(),
            open_bytes_gauge: Gauge::new(),
            stop_tx: Mutex::new(Some(stop_tx)),
            janitor: Mutex::new(None),
        });
        let weak = Arc::downgrade(&mgr);
        let handle = std::thread::Builder::new()
            .name("numa-live-janitor".to_string())
            .spawn(move || janitor_loop(weak, stop_rx, period))
            .expect("spawn janitor thread");
        *mgr.janitor.lock() = Some(handle);
        mgr
    }

    /// Open a session. The returned ticket carries the lease and the
    /// buffer limits the client must respect.
    pub fn open(&self, label: &str) -> Result<SessionTicket, SessionError> {
        let session = self.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + self.config.lease;
        {
            let mut inner = self.inner.lock();
            if inner.sessions.len() >= self.config.max_sessions {
                let open = inner.sessions.len();
                drop(inner);
                self.backpressure.inc();
                return Err(SessionError::TooManySessions {
                    open,
                    max: self.config.max_sessions,
                });
            }
            inner.sessions.insert(
                session,
                LiveSession {
                    label: label.to_string(),
                    chunks: Vec::new(),
                    bytes: 0,
                    next_seq: 0,
                    deadline,
                },
            );
            self.open_sessions_gauge.inc();
        }
        self.opened.inc();
        Ok(SessionTicket {
            session,
            lease: self.config.lease,
            max_chunk_bytes: self.config.max_chunk_bytes,
            max_session_bytes: self.config.max_session_bytes,
        })
    }

    /// Append chunk `seq` (strictly sequential from 0) to a session.
    /// Renews the lease. On durable stores the chunk is staged in the
    /// WAL before this returns. Returns the daemon-wide buffered bytes
    /// after the append.
    pub fn append(&self, session: u64, seq: u64, chunk_json: &str) -> Result<usize, SessionError> {
        self.append_common(
            session,
            seq,
            chunk_json.len(),
            || ChunkPayload::from_json(chunk_json).map_err(|e| e.to_string()),
            |store| store.stage_chunk(session, seq, chunk_json),
        )
    }

    /// [`SessionManager::append`] for a binary-codec chunk (see
    /// [`ChunkPayload::to_binary`]). Identical semantics — prechecks,
    /// lease renewal, durable staging, rollback — over the binary wire
    /// format; a session may freely mix JSON and binary chunks.
    pub fn append_binary(
        &self,
        session: u64,
        seq: u64,
        bytes: &[u8],
    ) -> Result<usize, SessionError> {
        self.append_common(
            session,
            seq,
            bytes.len(),
            || ChunkPayload::from_binary(bytes).map_err(|e| e.to_string()),
            |store| store.stage_chunk_binary(session, seq, bytes),
        )
    }

    fn append_common(
        &self,
        session: u64,
        seq: u64,
        len: usize,
        parse: impl FnOnce() -> Result<ChunkPayload, String>,
        stage: impl FnOnce(&ProfileStore) -> Result<(), numa_store::StoreError>,
    ) -> Result<usize, SessionError> {
        // Typed rejections first, under a brief lock, so oversized or
        // out-of-order chunks never pay for a parse.
        let precheck = {
            let inner = self.inner.lock();
            match inner.sessions.get(&session) {
                None => Err(SessionError::UnknownSession { session }),
                Some(s) if seq != s.next_seq => Err(SessionError::BadSequence {
                    session,
                    got: seq,
                    expected: s.next_seq,
                }),
                Some(_) if len > self.config.max_chunk_bytes => Err(SessionError::ChunkTooLarge {
                    session,
                    len,
                    max: self.config.max_chunk_bytes,
                }),
                Some(s) if s.bytes + len > self.config.max_session_bytes => {
                    Err(SessionError::SessionFull {
                        session,
                        bytes: s.bytes + len,
                        max: self.config.max_session_bytes,
                    })
                }
                Some(_) if inner.open_bytes + len > self.config.max_open_bytes => {
                    Err(SessionError::Backpressure {
                        open_bytes: inner.open_bytes + len,
                        max: self.config.max_open_bytes,
                    })
                }
                Some(_) => Ok(()),
            }
        };
        if let Err(e) = precheck {
            if e.is_backpressure() {
                self.backpressure.inc();
            }
            return Err(e);
        }
        // Parse outside the lock: a chunk can be megabytes.
        let payload = parse().map_err(|message| SessionError::ChunkParse {
            session,
            seq,
            message,
        })?;
        let open_bytes = {
            let mut inner = self.inner.lock();
            // Re-validate: the session can be reaped (or a duplicate
            // append can win the race) while this thread was parsing.
            let Some(s) = inner.sessions.get_mut(&session) else {
                return Err(SessionError::UnknownSession { session });
            };
            if seq != s.next_seq {
                return Err(SessionError::BadSequence {
                    session,
                    got: seq,
                    expected: s.next_seq,
                });
            }
            s.chunks.push(payload);
            s.bytes += len;
            s.next_seq += 1;
            s.deadline = Instant::now() + self.config.lease;
            inner.open_bytes += len;
            self.open_bytes_gauge.add(len as i64);
            inner.open_bytes
        };
        // Durable staging blocks on the group commit, so an acked chunk
        // survives a daemon SIGKILL. A failed append already un-staged
        // itself from the store's retained map; roll the in-memory push
        // back in step so the session still expects this sequence
        // number and the client can retry the same chunk.
        if let Err(e) = stage(&self.store) {
            let mut inner = self.inner.lock();
            if let Some(s) = inner.sessions.get_mut(&session) {
                if s.next_seq == seq + 1 {
                    s.chunks.pop();
                    s.bytes -= len;
                    s.next_seq = seq;
                    inner.open_bytes -= len;
                    self.open_bytes_gauge.sub(len as i64);
                }
            }
            return Err(SessionError::NotDurable {
                session,
                message: e.to_string(),
            });
        }
        // The lease can expire mid-write: if the janitor reaped the
        // session meanwhile, discard what was just staged so the
        // store's retained map cannot leak.
        if !self.inner.lock().sessions.contains_key(&session) {
            self.store.discard_session(session);
            return Err(SessionError::UnknownSession { session });
        }
        self.chunks_appended.inc();
        Ok(open_bytes)
    }

    /// Seal a session: assemble its chunks into a canonical profile and
    /// commit it through the store's ordinary ingest path. Succeeds or
    /// fails atomically — an unassemblable chunk set discards the
    /// session entirely (typed [`SessionError::Incomplete`]).
    pub fn seal(&self, session: u64) -> Result<Sealed, SessionError> {
        let s = {
            let mut inner = self.inner.lock();
            let s = inner
                .sessions
                .remove(&session)
                .ok_or(SessionError::UnknownSession { session })?;
            inner.open_bytes -= s.bytes;
            self.open_sessions_gauge.dec();
            self.open_bytes_gauge.sub(s.bytes as i64);
            s
        };
        let chunks = s.next_seq;
        match assemble(s.chunks) {
            Ok(profile) => match self.store.commit_sealed(session, &s.label, profile) {
                Ok((id, added)) => {
                    self.sealed.inc();
                    Ok(Sealed { id, added, chunks })
                }
                // The store already rolled the commit back and
                // discarded the session's staged chunks; the client
                // must re-stream.
                Err(e) => {
                    self.aborted.inc();
                    Err(SessionError::NotDurable {
                        session,
                        message: e.to_string(),
                    })
                }
            },
            Err(e) => {
                self.store.discard_session(session);
                self.aborted.inc();
                Err(SessionError::Incomplete {
                    session,
                    reason: e.to_string(),
                })
            }
        }
    }

    /// Abort a session: drop its buffers and staged chunks. Nothing is
    /// ingested.
    pub fn abort(&self, session: u64) -> Result<(), SessionError> {
        {
            let mut inner = self.inner.lock();
            let s = inner
                .sessions
                .remove(&session)
                .ok_or(SessionError::UnknownSession { session })?;
            inner.open_bytes -= s.bytes;
            self.open_sessions_gauge.dec();
            self.open_bytes_gauge.sub(s.bytes as i64);
        }
        self.store.discard_session(session);
        self.aborted.inc();
        Ok(())
    }

    /// Reap every session whose lease has expired (normally driven by
    /// the janitor thread). Returns how many were reclaimed.
    pub fn reap_expired(&self) -> usize {
        let now = Instant::now();
        let dead: Vec<u64> = {
            let mut inner = self.inner.lock();
            let ids: Vec<u64> = inner
                .sessions
                .iter()
                .filter(|(_, s)| s.deadline <= now)
                .map(|(id, _)| *id)
                .collect();
            for id in &ids {
                if let Some(s) = inner.sessions.remove(id) {
                    inner.open_bytes -= s.bytes;
                    self.open_sessions_gauge.dec();
                    self.open_bytes_gauge.sub(s.bytes as i64);
                }
            }
            ids
        };
        for id in &dead {
            self.store.discard_session(*id);
        }
        self.reaped.add(dead.len() as u64);
        dead.len()
    }

    /// Counter snapshot for observability.
    pub fn stats(&self) -> LiveStats {
        let (open_sessions, open_bytes) = {
            let inner = self.inner.lock();
            (inner.sessions.len(), inner.open_bytes)
        };
        LiveStats {
            open_sessions,
            open_bytes,
            opened: self.opened.get(),
            sealed: self.sealed.get(),
            aborted: self.aborted.get(),
            reaped: self.reaped.get(),
            chunks_appended: self.chunks_appended.get(),
            backpressure_rejections: self.backpressure.get(),
        }
    }

    /// Adopt every live-ingestion counter and gauge into `registry`
    /// under the `numa_live_` prefix. The gauges are the same handles
    /// the session paths update under the manager's lock, so a scrape
    /// always sees values consistent with admission decisions.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.counter(
            "numa_live_sessions_opened_total",
            "Streaming sessions opened.",
            &[],
            self.opened.clone(),
        );
        registry.counter(
            "numa_live_sessions_sealed_total",
            "Streaming sessions sealed into the store.",
            &[],
            self.sealed.clone(),
        );
        registry.counter(
            "numa_live_sessions_aborted_total",
            "Streaming sessions aborted (client abort, failed seal).",
            &[],
            self.aborted.clone(),
        );
        registry.counter(
            "numa_live_sessions_reaped_total",
            "Expired leases reclaimed by the janitor.",
            &[],
            self.reaped.clone(),
        );
        registry.counter(
            "numa_live_chunks_appended_total",
            "Chunks accepted across all sessions.",
            &[],
            self.chunks_appended.clone(),
        );
        registry.counter(
            "numa_live_backpressure_rejections_total",
            "Opens/appends rejected for capacity.",
            &[],
            self.backpressure.clone(),
        );
        registry.gauge(
            "numa_live_open_sessions",
            "Sessions open right now.",
            &[],
            self.open_sessions_gauge.clone(),
        );
        registry.gauge(
            "numa_live_open_bytes",
            "Bytes buffered across open sessions right now.",
            &[],
            self.open_bytes_gauge.clone(),
        );
    }

    /// The configuration this manager was built with.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// Stop and join the janitor thread. Idempotent. Open sessions are
    /// left as they are — on a daemon shutdown their staged chunks stay
    /// sealless in the WAL and replay drops them.
    pub fn stop(&self) {
        drop(self.stop_tx.lock().take());
        if let Some(handle) = self.janitor.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The vendored `parking_lot` has no `Condvar`, so the janitor's
/// periodic wake-up plus stop signal ride on an `mpsc` receiver:
/// timeout = tick, message or disconnect = stop.
fn janitor_loop(mgr: Weak<SessionManager>, stop: mpsc::Receiver<()>, period: Duration) {
    loop {
        match stop.recv_timeout(period) {
            Err(RecvTimeoutError::Timeout) => {
                let Some(mgr) = mgr.upgrade() else { return };
                mgr.reap_expired();
            }
            // Explicit stop or every manager handle dropped.
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(config: LiveConfig) -> Arc<SessionManager> {
        SessionManager::new(Arc::new(ProfileStore::new()), config)
    }

    #[test]
    fn unknown_session_is_typed() {
        let mgr = manager(LiveConfig::default());
        assert_eq!(
            mgr.append(42, 0, "{}").unwrap_err(),
            SessionError::UnknownSession { session: 42 }
        );
        assert_eq!(
            mgr.seal(42).unwrap_err(),
            SessionError::UnknownSession { session: 42 }
        );
        assert_eq!(
            mgr.abort(42).unwrap_err(),
            SessionError::UnknownSession { session: 42 }
        );
        mgr.stop();
    }

    #[test]
    fn session_ids_are_time_seeded_and_unique() {
        let mgr = manager(LiveConfig::default());
        let a = mgr.open("a").unwrap().session;
        let b = mgr.open("b").unwrap().session;
        assert_ne!(a, b);
        assert!(a >> 20 > 0, "id {a:#x} carries a time seed");
        mgr.stop();
    }

    #[test]
    fn open_rejects_beyond_max_sessions() {
        let mgr = manager(LiveConfig {
            max_sessions: 2,
            ..LiveConfig::default()
        });
        mgr.open("a").unwrap();
        mgr.open("b").unwrap();
        let err = mgr.open("c").unwrap_err();
        assert_eq!(err, SessionError::TooManySessions { open: 2, max: 2 });
        assert!(err.is_backpressure());
        assert_eq!(mgr.stats().backpressure_rejections, 1);
        mgr.stop();
    }

    #[test]
    fn stop_is_idempotent() {
        let mgr = manager(LiveConfig::default());
        mgr.stop();
        mgr.stop();
    }
}
