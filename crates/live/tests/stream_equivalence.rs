//! Property: for ANY chunking granularity and ANY arrival order of the
//! chunk contents, a sealed streaming session is byte-identical to
//! one-shot ingestion — same content hash, same store set hash, same
//! aggregate report text.

use numa_live::{LiveConfig, SessionManager};
use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::stream::split_profile;
use numa_store::{ProfileId, ProfileStore};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

/// Canonical JSON (and its one-shot oracle hashes) per corpus profile,
/// computed once per test process.
struct Oracle {
    json: String,
    id: ProfileId,
    set_hash: u64,
    aggregate: String,
}

fn oracles() -> &'static [Oracle; 2] {
    static ORACLES: OnceLock<[Oracle; 2]> = OnceLock::new();
    ORACLES.get_or_init(|| {
        [profile(1), profile(2)].map(|p| {
            let json = p.to_json();
            let store = ProfileStore::new();
            let (id, _) = store.ingest_bytes("run", &json).unwrap();
            Oracle {
                json,
                id,
                set_hash: store.set_hash(),
                aggregate: store.aggregate().unwrap().text(),
            }
        })
    })
}

proptest! {
    #[test]
    fn sealed_stream_matches_oneshot(
        which in 0usize..2,
        per in 1usize..9,
        shuffle_seed in any::<u64>(),
    ) {
        let oracle = &oracles()[which];
        let parsed = NumaProfile::from_json(&oracle.json).unwrap();

        // Random granularity, then a random permutation of the chunk
        // *contents* — sequence numbers stay 0..n (the wire contract),
        // but assembly must not care which part arrives when.
        let mut chunks = split_profile(&parsed, per);
        let mut state = shuffle_seed | 1;
        for i in (1..chunks.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            chunks.swap(i, j);
        }

        let store = Arc::new(ProfileStore::new());
        let mgr = SessionManager::new(Arc::clone(&store), LiveConfig::default());
        let ticket = mgr.open("run").unwrap();
        for (seq, chunk) in chunks.iter().enumerate() {
            mgr.append(ticket.session, seq as u64, &chunk.to_json()).unwrap();
        }
        let sealed = mgr.seal(ticket.session).unwrap();
        mgr.stop();

        prop_assert!(sealed.added);
        prop_assert_eq!(sealed.chunks, chunks.len() as u64);
        prop_assert_eq!(sealed.id, oracle.id);
        prop_assert_eq!(store.set_hash(), oracle.set_hash);
        prop_assert_eq!(store.aggregate().unwrap().text(), oracle.aggregate.clone());
    }
}
