//! Session lifecycle against an in-memory store: streamed ingestion
//! must land byte-identically with one-shot ingestion, every rejection
//! must be typed, and the janitor must reap expired leases.

use numa_live::{LiveConfig, SessionError, SessionManager};
use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::{ExecMode, Program};
use numa_store::stream::split_profile;
use numa_store::ProfileStore;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A small profile; `rounds` varies the content hash. Sampling is
/// interval-randomized, so tests that need the same profile twice must
/// serialize once and reuse the JSON (see [`corpus`]).
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 18;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

fn corpus() -> &'static [String; 2] {
    static CORPUS: OnceLock<[String; 2]> = OnceLock::new();
    CORPUS.get_or_init(|| [profile(1).to_json(), profile(2).to_json()])
}

/// Streams `json` through `mgr` in chunks of `per` threads and returns
/// the seal result.
fn stream(mgr: &SessionManager, label: &str, json: &str, per: usize) -> numa_live::Sealed {
    let parsed = NumaProfile::from_json(json).expect("corpus profile parses");
    let ticket = mgr.open(label).expect("open session");
    for (seq, chunk) in split_profile(&parsed, per).iter().enumerate() {
        mgr.append(ticket.session, seq as u64, &chunk.to_json())
            .expect("append chunk");
    }
    mgr.seal(ticket.session).expect("seal session")
}

#[test]
fn streamed_session_matches_oneshot_ingest() {
    let oracle = ProfileStore::new();
    let (oracle_id, _) = oracle.ingest_bytes("run", &corpus()[0]).unwrap();

    let store = Arc::new(ProfileStore::new());
    let mgr = SessionManager::new(Arc::clone(&store), LiveConfig::default());
    let sealed = stream(&mgr, "run", &corpus()[0], 2);

    assert!(sealed.added);
    assert_eq!(sealed.id, oracle_id, "content hash differs from one-shot");
    assert_eq!(store.set_hash(), oracle.set_hash(), "set hash differs");
    assert_eq!(
        store.aggregate().unwrap().text(),
        oracle.aggregate().unwrap().text(),
        "aggregate text differs"
    );

    let stats = mgr.stats();
    assert_eq!(stats.opened, 1);
    assert_eq!(stats.sealed, 1);
    assert_eq!(stats.open_sessions, 0);
    assert_eq!(stats.open_bytes, 0);
    assert!(stats.chunks_appended >= 2);
    mgr.stop();
}

#[test]
fn resealing_the_same_content_deduplicates() {
    let store = Arc::new(ProfileStore::new());
    let mgr = SessionManager::new(Arc::clone(&store), LiveConfig::default());
    let first = stream(&mgr, "a", &corpus()[0], 1);
    let second = stream(&mgr, "b", &corpus()[0], 3);
    assert!(first.added);
    assert!(!second.added, "same content must deduplicate");
    assert_eq!(first.id, second.id);
    assert_eq!(store.len(), 1);
    mgr.stop();
}

#[test]
fn violations_are_typed() {
    let store = Arc::new(ProfileStore::new());
    let mgr = SessionManager::new(
        Arc::clone(&store),
        LiveConfig {
            max_chunk_bytes: 64,
            max_session_bytes: 100,
            max_open_bytes: 120,
            ..LiveConfig::default()
        },
    );

    // Unknown session id.
    let err = mgr.append(0xdead, 0, "{}").unwrap_err();
    assert_eq!(err, SessionError::UnknownSession { session: 0xdead });
    assert!(!err.is_backpressure());

    let t = mgr.open("run").unwrap();
    assert_eq!(t.max_chunk_bytes, 64);
    assert_eq!(t.max_session_bytes, 100);

    // Out-of-order sequence number.
    let err = mgr.append(t.session, 1, r#"{"Threads":[]}"#).unwrap_err();
    assert_eq!(
        err,
        SessionError::BadSequence {
            session: t.session,
            got: 1,
            expected: 0
        }
    );

    // Oversized chunk.
    let big = format!(r#"{{"Threads":[{}]}}"#, " ".repeat(80));
    let err = mgr.append(t.session, 0, &big).unwrap_err();
    assert_eq!(
        err,
        SessionError::ChunkTooLarge {
            session: t.session,
            len: big.len(),
            max: 64
        }
    );

    // Malformed chunk payload.
    let err = mgr.append(t.session, 0, "not json").unwrap_err();
    assert!(matches!(err, SessionError::ChunkParse { seq: 0, .. }));

    // Per-session buffer limit: each empty-thread chunk is 14 bytes.
    let chunk = r#"{"Threads":[]}"#;
    for seq in 0..7 {
        mgr.append(t.session, seq, chunk).unwrap();
    }
    let err = mgr.append(t.session, 7, chunk).unwrap_err();
    assert_eq!(
        err,
        SessionError::SessionFull {
            session: t.session,
            bytes: 8 * chunk.len(),
            max: 100
        }
    );
    assert!(err.is_backpressure());

    // Daemon-wide open-bytes budget: 98 bytes are already buffered, so
    // a second session's second chunk crosses the 120-byte budget.
    let t2 = mgr.open("other").unwrap();
    mgr.append(t2.session, 0, chunk).unwrap();
    let err = mgr.append(t2.session, 1, chunk).unwrap_err();
    assert_eq!(
        err,
        SessionError::Backpressure {
            open_bytes: 9 * chunk.len(),
            max: 120
        }
    );
    assert!(err.is_backpressure());
    assert_eq!(mgr.stats().backpressure_rejections, 2);

    // A seal over a header-less chunk set is typed and discards the
    // session.
    let err = mgr.seal(t.session).unwrap_err();
    assert!(matches!(err, SessionError::Incomplete { .. }));
    let err = mgr.append(t.session, 7, chunk).unwrap_err();
    assert_eq!(err, SessionError::UnknownSession { session: t.session });
    assert_eq!(store.len(), 0, "failed seal must not half-ingest");
    mgr.stop();
}

#[test]
fn abort_discards_the_session() {
    let store = Arc::new(ProfileStore::new());
    let mgr = SessionManager::new(Arc::clone(&store), LiveConfig::default());
    let t = mgr.open("run").unwrap();
    mgr.append(t.session, 0, r#"{"Threads":[]}"#).unwrap();
    mgr.abort(t.session).unwrap();
    assert_eq!(
        mgr.abort(t.session).unwrap_err(),
        SessionError::UnknownSession { session: t.session }
    );
    let stats = mgr.stats();
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.open_sessions, 0);
    assert_eq!(stats.open_bytes, 0);
    assert_eq!(store.len(), 0);
    mgr.stop();
}

#[test]
fn expired_leases_are_reaped_by_the_janitor() {
    let store = Arc::new(ProfileStore::new());
    let mgr = SessionManager::new(
        Arc::clone(&store),
        LiveConfig {
            lease: Duration::from_millis(100),
            janitor_period: Duration::from_millis(20),
            ..LiveConfig::default()
        },
    );
    let t = mgr.open("run").unwrap();
    mgr.append(t.session, 0, r#"{"Threads":[]}"#).unwrap();

    // Wait (generously) for the lease to lapse and the janitor to run.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while mgr.stats().reaped == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = mgr.stats();
    assert_eq!(stats.reaped, 1, "janitor never reaped the idle session");
    assert_eq!(stats.open_sessions, 0);
    assert_eq!(stats.open_bytes, 0);
    assert_eq!(
        mgr.append(t.session, 1, r#"{"Threads":[]}"#).unwrap_err(),
        SessionError::UnknownSession { session: t.session }
    );
    assert_eq!(store.len(), 0, "reaped session must not half-ingest");
    mgr.stop();
}

#[test]
fn appends_renew_the_lease() {
    let store = Arc::new(ProfileStore::new());
    let mgr = SessionManager::new(
        Arc::clone(&store),
        LiveConfig {
            lease: Duration::from_millis(400),
            janitor_period: Duration::from_millis(20),
            ..LiveConfig::default()
        },
    );
    let parsed = NumaProfile::from_json(&corpus()[1]).unwrap();
    let chunks = split_profile(&parsed, 1);
    let t = mgr.open("slow").unwrap();
    // Each gap is well under the lease, but the whole stream takes
    // longer than one lease: the session must survive because appends
    // renew the deadline.
    for (seq, chunk) in chunks.iter().enumerate() {
        std::thread::sleep(Duration::from_millis(120));
        mgr.append(t.session, seq as u64, &chunk.to_json())
            .expect("renewed lease must keep the session alive");
    }
    let sealed = mgr.seal(t.session).unwrap();
    assert!(sealed.added);
    assert_eq!(mgr.stats().reaped, 0);
    mgr.stop();
}
