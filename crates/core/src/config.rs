//! Profiler configuration.

use crate::firsttouch::FirstTouchGranularity;
use numa_sampling::MechanismConfig;
use serde::{Deserialize, Serialize};

/// Environment variable overriding the address-centric bin count, as the
/// paper's tool allows ("one can change this number via an environment
/// variable", §5.2).
pub const BINS_ENV_VAR: &str = "HPCTOOLKIT_NUMA_BINS";

/// Configuration of the online profiler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Which sampling mechanism to drive, with its period/overhead model.
    pub mechanism: MechanismConfig,
    /// Address-centric bins per large variable (§5.2 default: five).
    pub bins: u16,
    /// A variable is "large" (and binned) if it spans more than this many
    /// pages (§5.2 default: five).
    pub bin_threshold_pages: u64,
    /// Enable first-touch pinpointing via page protection (§6).
    pub first_touch: bool,
    /// Unprotect granularity on a first-touch fault.
    pub first_touch_granularity: FirstTouchGranularity,
    /// Monitor static variables (data-centric attribution reads them from
    /// the symbol table; first-touch protection for them is the paper's
    /// future work #5, implemented here).
    pub monitor_static: bool,
    /// Monitor stack variables (the paper's future work #1, implemented
    /// here; the paper's case studies converted `nodelist` to static by
    /// hand instead).
    pub monitor_stack: bool,
    /// Cycles charged per page when installing protection at allocation.
    pub protect_cost_per_page: u64,
    /// Record a per-thread time series of NUMA counters, one point per
    /// this many cycles (the paper's future-work trace-based measurement).
    /// `None` disables tracing.
    pub trace_interval: Option<u64>,
}

impl ProfilerConfig {
    pub fn new(mechanism: MechanismConfig) -> Self {
        ProfilerConfig {
            mechanism,
            bins: 5,
            bin_threshold_pages: 5,
            first_touch: true,
            first_touch_granularity: FirstTouchGranularity::Variable,
            monitor_static: true,
            monitor_stack: true,
            protect_cost_per_page: 2,
            trace_interval: None,
        }
    }

    /// Apply the `HPCTOOLKIT_NUMA_BINS` environment override, if set and
    /// parseable.
    pub fn with_env_bins(mut self) -> Self {
        if let Ok(v) = std::env::var(BINS_ENV_VAR) {
            if let Ok(n) = v.trim().parse::<u16>() {
                if n >= 1 {
                    self.bins = n;
                }
            }
        }
        self
    }

    pub fn with_bins(mut self, bins: u16) -> Self {
        assert!(bins >= 1);
        self.bins = bins;
        self
    }

    pub fn without_first_touch(mut self) -> Self {
        self.first_touch = false;
        self
    }

    pub fn with_first_touch_granularity(mut self, g: FirstTouchGranularity) -> Self {
        self.first_touch_granularity = g;
        self
    }

    /// Enable trace-based measurement with one point per `cycles`.
    pub fn with_trace(mut self, cycles: u64) -> Self {
        assert!(cycles > 0);
        self.trace_interval = Some(cycles);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sampling::MechanismKind;

    fn base() -> ProfilerConfig {
        ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 100))
    }

    #[test]
    fn defaults_match_paper() {
        let c = base();
        assert_eq!(c.bins, 5);
        assert_eq!(c.bin_threshold_pages, 5);
        assert!(c.first_touch);
        assert_eq!(c.first_touch_granularity, FirstTouchGranularity::Variable);
    }

    #[test]
    fn env_override_changes_bins() {
        // Serialize access to the env var across test threads.
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        let _g = LOCK.lock();
        std::env::set_var(BINS_ENV_VAR, "12");
        let c = base().with_env_bins();
        assert_eq!(c.bins, 12);
        std::env::set_var(BINS_ENV_VAR, "not a number");
        let c = base().with_env_bins();
        assert_eq!(c.bins, 5);
        std::env::remove_var(BINS_ENV_VAR);
        let c = base().with_env_bins();
        assert_eq!(c.bins, 5);
    }
}
