//! NUMA metrics (paper §4).
//!
//! A [`MetricSet`] accumulates everything §4 derives per program scope
//! (CCT node, variable, bin, thread, or whole program):
//!
//! * `m_local` / `m_remote` — sampled accesses whose backing page is in the
//!   accessing thread's domain vs. another domain (§4.1; displayed as
//!   `NUMA_MATCH` / `NUMA_MISMATCH` in the paper's Figure 3).
//! * `per_domain[d]` — sampled accesses touching each NUMA domain (§4.1's
//!   balance metric; `NUMA_NODE0` etc. in Figure 3).
//! * `latency_total` / `latency_remote` — accumulated sampled latency, and
//!   the part from remote data sources (`l^s_NUMA` in Eq. 2) — present only
//!   for mechanisms with latency capability (IBS, PEBS-LL).
//! * `samples_instr` — sampled instructions `I^s` (memory or not), the
//!   denominator of Eq. 2.
//! * data-source histogram per [`AccessLevel`].

use numa_machine::{AccessLevel, DomainId};
use numa_sampling::Sample;
use serde::{Deserialize, Serialize};

/// Number of [`AccessLevel`] variants (histogram width).
pub const LEVELS: usize = 6;

fn level_index(l: AccessLevel) -> usize {
    match l {
        AccessLevel::L1 => 0,
        AccessLevel::L2 => 1,
        AccessLevel::L3Local => 2,
        AccessLevel::L3Remote => 3,
        AccessLevel::MemLocal => 4,
        AccessLevel::MemRemote => 5,
    }
}

/// Accumulated NUMA metrics for one scope.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSet {
    /// Sampled memory accesses touching the local NUMA domain (`M_l`).
    pub m_local: u64,
    /// Sampled memory accesses touching a remote NUMA domain (`M_r`).
    pub m_remote: u64,
    /// Sampled memory accesses touching each domain.
    pub per_domain: Vec<u64>,
    /// Total sampled access latency (0 if the mechanism lacks latency).
    pub latency_total: u64,
    /// Sampled latency served from remote sources (`l^s_NUMA`).
    pub latency_remote: u64,
    /// Samples whose mechanism reported a latency field at all. This is
    /// what distinguishes "no latency captured" from "zero remote
    /// latency": `latency_total` alone conflates the two when every
    /// captured latency is local or zero-cycle. Defaults to 0 when
    /// deserializing profiles written before the field existed.
    #[serde(default)]
    pub latency_samples: u64,
    /// Memory samples.
    pub samples_mem: u64,
    /// Sampled instructions `I^s` (memory samples + non-memory instruction
    /// samples from IBS/PEBS).
    pub samples_instr: u64,
    pub loads: u64,
    pub stores: u64,
    /// Samples by data source (only for mechanisms reporting data source).
    pub level_hist: [u64; LEVELS],
    /// Samples that performed a page's first touch.
    pub first_touch_samples: u64,
}

impl MetricSet {
    pub fn new(domains: usize) -> Self {
        MetricSet {
            per_domain: vec![0; domains],
            ..Default::default()
        }
    }

    /// Record one memory sample. `home` is the `move_pages` answer for the
    /// sampled address (the profiler's query, not a PMU field).
    pub fn add_sample(&mut self, s: &Sample, home: Option<DomainId>, first_touch: bool) {
        self.samples_mem += 1;
        self.samples_instr += 1;
        match s.is_store {
            Some(true) => self.stores += 1,
            Some(false) => self.loads += 1,
            None => {}
        }
        if let Some(h) = home {
            if h.index() < self.per_domain.len() {
                self.per_domain[h.index()] += 1;
            }
            if h == s.thread_domain {
                self.m_local += 1;
            } else {
                self.m_remote += 1;
            }
        }
        if let Some(lat) = s.latency {
            self.latency_samples += 1;
            self.latency_total += lat as u64;
            if s.level.is_some_and(|l| l.is_remote()) {
                self.latency_remote += lat as u64;
            }
        }
        if let Some(level) = s.level {
            self.level_hist[level_index(level)] += 1;
        }
        if first_touch {
            self.first_touch_samples += 1;
        }
    }

    /// Record `n` non-memory instruction samples (IBS/PEBS fire on any
    /// instruction; these contribute only to `I^s`).
    pub fn add_instruction_samples(&mut self, n: u64) {
        self.samples_instr += n;
    }

    /// Merge another scope's metrics into this one (thread merging and
    /// subtree aggregation both use plain accumulation; only address ranges
    /// need \[min,max\] reduction, which lives in the range structures).
    pub fn merge(&mut self, other: &MetricSet) {
        self.m_local += other.m_local;
        self.m_remote += other.m_remote;
        if self.per_domain.len() < other.per_domain.len() {
            self.per_domain.resize(other.per_domain.len(), 0);
        }
        for (a, b) in self.per_domain.iter_mut().zip(&other.per_domain) {
            *a += b;
        }
        self.latency_total += other.latency_total;
        self.latency_remote += other.latency_remote;
        self.latency_samples += other.latency_samples;
        self.samples_mem += other.samples_mem;
        self.samples_instr += other.samples_instr;
        self.loads += other.loads;
        self.stores += other.stores;
        for (a, b) in self.level_hist.iter_mut().zip(&other.level_hist) {
            *a += b;
        }
        self.first_touch_samples += other.first_touch_samples;
    }

    /// `M_r / (M_l + M_r)`: the fraction of sampled accesses touching
    /// remote domains. "Unless M_r ≪ M_l … the code region may suffer from
    /// NUMA problems" (§4.1).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.m_local + self.m_remote;
        if total == 0 {
            0.0
        } else {
            self.m_remote as f64 / total as f64
        }
    }

    /// NUMA latency per sampled instruction: Eq. 2's
    /// `lpi ≈ l^s_NUMA / I^s`.
    ///
    /// Contract: `None` exactly when the estimate is undefined — no
    /// instruction samples exist, or no sample ever carried a latency
    /// field (the mechanism lacks latency capability). A mechanism that
    /// *did* capture latency but observed only local (or zero-cycle)
    /// traffic yields `Some(0.0)`: that is a measured "no NUMA cost", not
    /// a missing measurement.
    pub fn lpi_numa(&self) -> Option<f64> {
        if self.samples_instr == 0 || self.latency_samples == 0 {
            return None;
        }
        Some(self.latency_remote as f64 / self.samples_instr as f64)
    }

    /// Imbalance of per-domain requests: max domain share over fair share
    /// (1.0 = perfectly balanced, `domains` = everything on one domain).
    pub fn domain_imbalance(&self) -> f64 {
        let total: u64 = self.per_domain.iter().sum();
        if total == 0 || self.per_domain.is_empty() {
            return 1.0;
        }
        let max = *self.per_domain.iter().max().unwrap();
        (max as f64 / total as f64) * self.per_domain.len() as f64
    }

    /// Total sampled memory accesses with a resolved home domain.
    pub fn resolved_samples(&self) -> u64 {
        self.m_local + self.m_remote
    }
}

/// The paper's 0.1 cycles-per-instruction rule of thumb: NUMA losses above
/// this are significant enough to warrant optimization (§4.2).
pub const LPI_THRESHOLD: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::CpuId;

    fn sample(thread_domain: u8, latency: Option<u32>, level: Option<AccessLevel>) -> Sample {
        Sample {
            tid: 0,
            cpu: CpuId(0),
            thread_domain: DomainId(thread_domain),
            addr: Some(0x1000),
            size: Some(8),
            is_store: Some(false),
            latency,
            level,
            line: 0,
            precise_ip: true,
        }
    }

    #[test]
    fn local_and_remote_counting() {
        let mut m = MetricSet::new(4);
        m.add_sample(&sample(0, None, None), Some(DomainId(0)), false);
        m.add_sample(&sample(0, None, None), Some(DomainId(2)), false);
        m.add_sample(&sample(0, None, None), Some(DomainId(2)), false);
        assert_eq!(m.m_local, 1);
        assert_eq!(m.m_remote, 2);
        assert_eq!(m.per_domain, vec![1, 0, 2, 0]);
        assert!((m.remote_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_split_by_data_source() {
        let mut m = MetricSet::new(2);
        m.add_sample(
            &sample(0, Some(100), Some(AccessLevel::MemLocal)),
            Some(DomainId(0)),
            false,
        );
        m.add_sample(
            &sample(0, Some(300), Some(AccessLevel::MemRemote)),
            Some(DomainId(1)),
            false,
        );
        assert_eq!(m.latency_total, 400);
        assert_eq!(m.latency_remote, 300);
    }

    #[test]
    fn cached_remote_data_bias_is_visible() {
        // §4.1's bias: an L1 hit on remotely-homed data raises M_r but adds
        // no remote latency — lpi stays low, exposing the bias.
        let mut m = MetricSet::new(2);
        for _ in 0..100 {
            m.add_sample(
                &sample(0, Some(4), Some(AccessLevel::L1)),
                Some(DomainId(1)),
                false,
            );
        }
        assert_eq!(m.m_remote, 100);
        assert_eq!(m.latency_remote, 0);
        // High M_r yet zero NUMA latency per instruction: the metric that
        // "eliminates this bias" (§4.1).
        assert_eq!(m.lpi_numa(), Some(0.0));
    }

    #[test]
    fn lpi_matches_eq2() {
        let mut m = MetricSet::new(2);
        m.add_sample(
            &sample(0, Some(300), Some(AccessLevel::MemRemote)),
            Some(DomainId(1)),
            false,
        );
        m.add_instruction_samples(999);
        // l^s = 300, I^s = 1000.
        assert!((m.lpi_numa().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn lpi_unavailable_without_latency() {
        let mut m = MetricSet::new(2);
        m.add_sample(&sample(0, None, None), Some(DomainId(1)), false);
        m.add_instruction_samples(10);
        assert_eq!(m.latency_samples, 0);
        assert_eq!(m.lpi_numa(), None);
    }

    #[test]
    fn lpi_zero_cycle_latencies_are_a_measurement_not_a_gap() {
        // Eq. 2 edge case: the mechanism captured latency on every sample,
        // but each captured latency was 0 cycles (all satisfied locally).
        // `latency_total == 0` here must NOT read as "no latency
        // capability": the contract is Some(0.0), distinguished from the
        // None of `lpi_unavailable_without_latency`.
        let mut m = MetricSet::new(2);
        for _ in 0..8 {
            m.add_sample(
                &sample(0, Some(0), Some(AccessLevel::L1)),
                Some(DomainId(0)),
                false,
            );
        }
        assert_eq!(m.latency_total, 0);
        assert_eq!(m.latency_samples, 8);
        assert_eq!(m.lpi_numa(), Some(0.0));
    }

    #[test]
    fn lpi_contract_survives_merge() {
        // Merging a latency-bearing set into a latency-less one keeps the
        // "was latency captured" bit.
        let mut no_lat = MetricSet::new(2);
        no_lat.add_sample(&sample(0, None, None), Some(DomainId(1)), false);
        assert_eq!(no_lat.lpi_numa(), None);
        let mut with_lat = MetricSet::new(2);
        with_lat.add_sample(
            &sample(0, Some(0), Some(AccessLevel::L1)),
            Some(DomainId(0)),
            false,
        );
        no_lat.merge(&with_lat);
        assert_eq!(no_lat.latency_samples, 1);
        assert_eq!(no_lat.lpi_numa(), Some(0.0));
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = MetricSet::new(2);
        let mut b = MetricSet::new(2);
        a.add_sample(
            &sample(0, Some(100), Some(AccessLevel::MemLocal)),
            Some(DomainId(0)),
            true,
        );
        b.add_sample(
            &sample(1, Some(200), Some(AccessLevel::MemRemote)),
            Some(DomainId(0)),
            false,
        );
        b.add_instruction_samples(5);
        a.merge(&b);
        assert_eq!(a.samples_mem, 2);
        assert_eq!(a.samples_instr, 7);
        assert_eq!(a.latency_total, 300);
        assert_eq!(a.latency_remote, 200);
        assert_eq!(a.per_domain, vec![2, 0]);
        assert_eq!(a.first_touch_samples, 1);
    }

    #[test]
    fn imbalance_detects_single_domain_hotspot() {
        let mut m = MetricSet::new(8);
        for _ in 0..80 {
            m.add_sample(&sample(1, None, None), Some(DomainId(0)), false);
        }
        assert!((m.domain_imbalance() - 8.0).abs() < 1e-12);
        let mut balanced = MetricSet::new(8);
        for d in 0..8u8 {
            balanced.add_sample(&sample(d, None, None), Some(DomainId(d)), false);
        }
        assert!((balanced.domain_imbalance() - 1.0).abs() < 1e-12);
    }
}
